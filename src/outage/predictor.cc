#include "outage/predictor.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace bpsim
{

std::vector<std::vector<double>>
OutagePredictor::transitionMatrix(const std::vector<Time> &edges) const
{
    BPSIM_ASSERT(!edges.empty(), "need at least one duration edge");
    for (std::size_t i = 1; i < edges.size(); ++i) {
        BPSIM_ASSERT(edges[i] > edges[i - 1],
                     "duration edges must be increasing");
    }
    const std::size_t n = edges.size();
    std::vector<std::vector<double>> m(n, std::vector<double>(n, 0.0));
    for (std::size_t i = 0; i < n; ++i) {
        const double s_i = dist.survival(edges[i]);
        if (s_i <= 0.0) {
            // Outages never last this long in the data: absorb.
            m[i][n - 1] = 1.0;
            continue;
        }
        for (std::size_t j = i; j < n; ++j) {
            const double s_lo = dist.survival(edges[j]);
            const double s_hi =
                (j + 1 < n) ? dist.survival(edges[j + 1]) : 0.0;
            m[i][j] = (s_lo - s_hi) / s_i;
        }
    }
    return m;
}

AdaptiveEscalationPolicy::AdaptiveEscalationPolicy(OutagePredictor predictor,
                                                   double risk_tolerance)
    : pred(std::move(predictor)), risk(risk_tolerance)
{
    BPSIM_ASSERT(risk_tolerance >= 0.0 && risk_tolerance <= 1.0,
                 "risk tolerance %g out of [0, 1]", risk_tolerance);
}

int
AdaptiveEscalationPolicy::choose(Time elapsed,
                                 const std::vector<Time> &sustainable_for,
                                 const std::vector<double> &perf_at_level,
                                 Time save_reserve) const
{
    BPSIM_ASSERT(sustainable_for.size() == perf_at_level.size(),
                 "level vectors disagree: %zu vs %zu",
                 sustainable_for.size(), perf_at_level.size());
    int best = -1;
    double best_perf = -1.0;
    for (std::size_t i = 0; i < sustainable_for.size(); ++i) {
        const Time runway = sustainable_for[i] - save_reserve;
        if (runway <= 0)
            continue;
        const double p_outlast = pred.probOutlasts(elapsed, runway);
        if (p_outlast <= risk && perf_at_level[i] > best_perf) {
            best_perf = perf_at_level[i];
            best = static_cast<int>(i);
        }
    }
    return best;
}

} // namespace bpsim
