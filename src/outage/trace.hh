/**
 * @file
 * Synthetic multi-outage traces: a year (or any horizon) of utility
 * failures drawn from the Figure 1 distributions, for availability and
 * capacity-planning studies across repeated outages.
 */

#ifndef BPSIM_OUTAGE_TRACE_HH
#define BPSIM_OUTAGE_TRACE_HH

#include <vector>

#include "outage/distribution.hh"
#include "sim/random.hh"
#include "sim/types.hh"

namespace bpsim
{

/** One utility outage. */
struct OutageEvent
{
    /** Absolute start time within the trace horizon. */
    Time start;
    /** Outage length. */
    Time duration;

    Time end() const { return start + duration; }
};

/** Generator of non-overlapping outage schedules. */
class OutageTraceGenerator
{
  public:
    OutageTraceGenerator(OutageFrequencyDistribution freq,
                         OutageDurationDistribution dur)
        : freq(std::move(freq)), dur(std::move(dur))
    {}

    /** Generator using the paper's Figure 1 statistics. */
    static OutageTraceGenerator figure1();

    /**
     * Generate outages over [0, horizon): the count is drawn from the
     * frequency distribution (scaled by horizon / 1 year), durations
     * from the duration distribution, starts uniform, with at least
     * @p min_gap of utility power between consecutive outages (so
     * batteries get some recharge).
     */
    std::vector<OutageEvent> generate(Rng &rng, Time horizon,
                                      Time min_gap = kHour) const;

  private:
    OutageFrequencyDistribution freq;
    OutageDurationDistribution dur;
};

} // namespace bpsim

#endif // BPSIM_OUTAGE_TRACE_HH
