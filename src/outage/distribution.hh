/**
 * @file
 * Empirical power-outage statistics for US businesses (the paper's
 * Figure 1, from the EPRI "Cost of Power Disturbances" study and the
 * 2010 national datacenter-outage survey).
 *
 * Two marginal distributions are encoded: outages per year, and outage
 * duration. Duration is represented as a piecewise-uniform density over
 * the survey's buckets, from which samples, survival probabilities
 * P(D > t) and conditional expectations are derived — the latter feed
 * the online duration predictor of Section 7.
 */

#ifndef BPSIM_OUTAGE_DISTRIBUTION_HH
#define BPSIM_OUTAGE_DISTRIBUTION_HH

#include <vector>

#include "sim/random.hh"
#include "sim/types.hh"

namespace bpsim
{

/** One bucket of a piecewise-uniform distribution. */
struct DistBucket
{
    /** Inclusive lower edge. */
    double lo;
    /** Exclusive upper edge. */
    double hi;
    /** Probability mass of the bucket. */
    double prob;
};

/** Piecewise-uniform outage-duration distribution (Figure 1(b)). */
class OutageDurationDistribution
{
  public:
    /** Construct from explicit buckets (probabilities must sum to 1). */
    explicit OutageDurationDistribution(std::vector<DistBucket> buckets);

    /** The paper's Figure 1(b) data. */
    static OutageDurationDistribution figure1();

    /** The buckets. */
    const std::vector<DistBucket> &buckets() const { return bkts; }

    /** Draw one outage duration. */
    Time sample(Rng &rng) const;

    /** Survival function P(duration > t). */
    double survival(Time t) const;

    /** Cumulative probability P(duration <= t). */
    double cdf(Time t) const { return 1.0 - survival(t); }

    /**
     * P(duration > until | duration > elapsed): the chance an outage
     * that has already lasted @p elapsed will still be going at
     * @p until.
     */
    double conditionalSurvival(Time elapsed, Time until) const;

    /** E[remaining duration | duration > elapsed]. */
    Time expectedRemaining(Time elapsed) const;

    /** Mean outage duration. */
    Time mean() const;

    /** Fraction of outages no longer than @p t (headline claims). */
    double fractionWithin(Time t) const { return cdf(t); }

  private:
    std::vector<DistBucket> bkts;
};

/** Outages-per-year distribution (Figure 1(a)). */
class OutageFrequencyDistribution
{
  public:
    explicit OutageFrequencyDistribution(std::vector<DistBucket> buckets);

    /** The paper's Figure 1(a) data. */
    static OutageFrequencyDistribution figure1();

    /** The buckets (counts per year). */
    const std::vector<DistBucket> &buckets() const { return bkts; }

    /** Draw a number of outages for one year. */
    int sample(Rng &rng) const;

    /** Mean outages per year. */
    double mean() const;

  private:
    std::vector<DistBucket> bkts;
};

} // namespace bpsim

#endif // BPSIM_OUTAGE_DISTRIBUTION_HH
