#include "outage/distribution.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace bpsim
{

namespace
{

void
checkBuckets(const std::vector<DistBucket> &bkts)
{
    BPSIM_ASSERT(!bkts.empty(), "empty bucket list");
    double total = 0.0;
    double prev_hi = -1e300;
    for (const auto &b : bkts) {
        BPSIM_ASSERT(b.hi > b.lo, "bucket [%g, %g) is empty", b.lo, b.hi);
        BPSIM_ASSERT(b.prob >= 0.0, "negative probability %g", b.prob);
        BPSIM_ASSERT(b.lo >= prev_hi, "buckets overlap at %g", b.lo);
        prev_hi = b.hi;
        total += b.prob;
    }
    BPSIM_ASSERT(std::abs(total - 1.0) < 1e-9,
                 "bucket probabilities sum to %g, not 1", total);
}

} // namespace

OutageDurationDistribution::OutageDurationDistribution(
    std::vector<DistBucket> buckets)
    : bkts(std::move(buckets))
{
    checkBuckets(bkts);
}

OutageDurationDistribution
OutageDurationDistribution::figure1()
{
    // Figure 1(b): minutes. The open-ended ">240" bucket is closed at
    // 8 hours, consistent with the paper treating multi-hour outages
    // as the extreme tail handled by geo-failover.
    return OutageDurationDistribution({
        {0.0, 1.0, 0.31},
        {1.0, 5.0, 0.27},
        {5.0, 30.0, 0.14},
        {30.0, 120.0, 0.17},
        {120.0, 240.0, 0.06},
        {240.0, 480.0, 0.05},
    });
}

Time
OutageDurationDistribution::sample(Rng &rng) const
{
    std::vector<double> weights;
    weights.reserve(bkts.size());
    for (const auto &b : bkts)
        weights.push_back(b.prob);
    const auto &b = bkts[rng.discrete(weights)];
    return fromMinutes(rng.uniform(b.lo, b.hi));
}

double
OutageDurationDistribution::survival(Time t) const
{
    const double m = toMinutes(t);
    double surv = 0.0;
    for (const auto &b : bkts) {
        if (m <= b.lo) {
            surv += b.prob;
        } else if (m < b.hi) {
            surv += b.prob * (b.hi - m) / (b.hi - b.lo);
        }
    }
    return surv;
}

double
OutageDurationDistribution::conditionalSurvival(Time elapsed,
                                                Time until) const
{
    BPSIM_ASSERT(until >= elapsed, "conditional window inverted");
    const double s_e = survival(elapsed);
    if (s_e <= 0.0)
        return 0.0;
    return survival(until) / s_e;
}

Time
OutageDurationDistribution::expectedRemaining(Time elapsed) const
{
    const double s_e = survival(elapsed);
    if (s_e <= 0.0)
        return 0;
    // E[D - e | D > e] = (1/S(e)) * Int_e^inf S(t) dt; the survival
    // function is piecewise linear, so integrate bucket by bucket.
    const double e_min = toMinutes(elapsed);
    double integral = 0.0; // in minutes
    for (const auto &b : bkts) {
        const double lo = std::max(b.lo, e_min);
        if (lo >= b.hi)
            continue;
        // S(t) restricted to this bucket's contribution is linear in t;
        // sum over buckets reconstructs the full S. Integrate the full
        // S over [lo, hi) by trapezoid (S is piecewise linear).
        const double s_lo = survival(fromMinutes(lo));
        const double s_hi = survival(fromMinutes(b.hi));
        integral += 0.5 * (s_lo + s_hi) * (b.hi - lo);
    }
    return fromMinutes(integral / s_e);
}

Time
OutageDurationDistribution::mean() const
{
    double m = 0.0;
    for (const auto &b : bkts)
        m += b.prob * 0.5 * (b.lo + b.hi);
    return fromMinutes(m);
}

OutageFrequencyDistribution::OutageFrequencyDistribution(
    std::vector<DistBucket> buckets)
    : bkts(std::move(buckets))
{
    checkBuckets(bkts);
}

OutageFrequencyDistribution
OutageFrequencyDistribution::figure1()
{
    // Figure 1(a): outages per year. Buckets are [lo, hi) on integer
    // counts; "7+" is closed at 12.
    return OutageFrequencyDistribution({
        {0.0, 1.0, 0.17},
        {1.0, 3.0, 0.40},
        {3.0, 7.0, 0.30},
        {7.0, 13.0, 0.13},
    });
}

int
OutageFrequencyDistribution::sample(Rng &rng) const
{
    std::vector<double> weights;
    weights.reserve(bkts.size());
    for (const auto &b : bkts)
        weights.push_back(b.prob);
    const auto &b = bkts[rng.discrete(weights)];
    const auto lo = static_cast<std::uint64_t>(b.lo);
    const auto hi = static_cast<std::uint64_t>(b.hi);
    return static_cast<int>(lo + rng.nextBounded(hi - lo));
}

double
OutageFrequencyDistribution::mean() const
{
    // Mean of the discrete-uniform value within each bucket: buckets
    // are [lo, hi) on integers, so the within-bucket mean is
    // (lo + hi - 1) / 2.
    double m = 0.0;
    for (const auto &b : bkts)
        m += b.prob * 0.5 * (b.lo + b.hi - 1.0);
    return m;
}

} // namespace bpsim
