#include "outage/trace.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace bpsim
{

OutageTraceGenerator
OutageTraceGenerator::figure1()
{
    return OutageTraceGenerator(OutageFrequencyDistribution::figure1(),
                                OutageDurationDistribution::figure1());
}

std::vector<OutageEvent>
OutageTraceGenerator::generate(Rng &rng, Time horizon, Time min_gap) const
{
    BPSIM_ASSERT(horizon > 0, "non-positive trace horizon");
    constexpr Time year = 365LL * 24 * kHour;
    const double scale = static_cast<double>(horizon) /
                         static_cast<double>(year);
    int count = static_cast<int>(
        std::llround(static_cast<double>(freq.sample(rng)) * scale));
    count = std::max(count, 0);

    std::vector<OutageEvent> events;
    events.reserve(count);
    for (int i = 0; i < count; ++i)
        events.push_back({0, dur.sample(rng)});

    // Place the outages: draw candidate starts, sort, then push
    // overlapping ones later until the schedule is feasible.
    for (auto &ev : events) {
        ev.start = static_cast<Time>(
            rng.nextDouble() * static_cast<double>(horizon));
    }
    std::sort(events.begin(), events.end(),
              [](const OutageEvent &a, const OutageEvent &b) {
                  return a.start < b.start;
              });
    Time cursor = 0;
    for (auto &ev : events) {
        if (ev.start < cursor)
            ev.start = cursor;
        cursor = ev.end() + min_gap;
    }
    // Drop anything pushed past the horizon.
    events.erase(std::remove_if(events.begin(), events.end(),
                                [horizon](const OutageEvent &ev) {
                                    return ev.end() > horizon;
                                }),
                 events.end());
    return events;
}

} // namespace bpsim
