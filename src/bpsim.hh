/**
 * @file
 * Umbrella header: pulls in the whole bpsim public API.
 *
 * Downstream users who prefer granular includes should use the
 * per-module headers directly; this exists for quick experiments and
 * examples:
 *
 *     #include "bpsim.hh"
 *     using namespace bpsim;
 */

#ifndef BPSIM_BPSIM_HH
#define BPSIM_BPSIM_HH

// Campaign engine (parallel Monte Carlo with deterministic replay,
// plus distributed sharding with mergeable aggregates).
#include "campaign/annual_campaign.hh"
#include "campaign/exact_sum.hh"
#include "campaign/json.hh"
#include "campaign/online_stats.hh"
#include "campaign/runner.hh"
#include "campaign/shard.hh"
#include "campaign/tdigest.hh"
#include "campaign/thread_pool.hh"

// Simulation kernel.
#include "sim/csv.hh"
#include "sim/event.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"
#include "sim/timeline.hh"
#include "sim/types.hh"

// Power substrate.
#include "power/ats.hh"
#include "power/battery.hh"
#include "power/diesel_generator.hh"
#include "power/meter.hh"
#include "power/power_hierarchy.hh"
#include "power/ups.hh"
#include "power/utility.hh"

// Servers and workloads.
#include "server/dirty_pages.hh"
#include "server/server.hh"
#include "server/server_model.hh"
#include "workload/application.hh"
#include "workload/cluster.hh"
#include "workload/load_profile.hh"
#include "workload/profile.hh"

// Outage statistics and prediction.
#include "outage/distribution.hh"
#include "outage/predictor.hh"
#include "outage/trace.hh"

// Techniques.
#include "technique/adaptive.hh"
#include "technique/catalog.hh"
#include "technique/geo_failover.hh"
#include "technique/hibernate.hh"
#include "technique/hybrid.hh"
#include "technique/migration.hh"
#include "technique/sleep.hh"
#include "technique/technique.hh"
#include "technique/throttling.hh"

// Analysis.
#include "core/analyzer.hh"
#include "core/annual.hh"
#include "core/backup_config.hh"
#include "core/cost_model.hh"
#include "core/datacenter.hh"
#include "core/selector.hh"
#include "core/tco.hh"

#endif // BPSIM_BPSIM_HH
