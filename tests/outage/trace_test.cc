/**
 * @file
 * Tests for the synthetic outage trace generator.
 */

#include <gtest/gtest.h>

#include "outage/trace.hh"

namespace bpsim
{
namespace
{

constexpr Time kYear = 365LL * 24 * kHour;

TEST(Trace, EventsAreSortedNonOverlappingWithGaps)
{
    auto gen = OutageTraceGenerator::figure1();
    Rng rng(1);
    for (int trial = 0; trial < 50; ++trial) {
        const auto events = gen.generate(rng, kYear, kHour);
        Time prev_end = -kHour;
        for (const auto &ev : events) {
            EXPECT_GE(ev.start, prev_end + kHour);
            EXPECT_GT(ev.duration, 0);
            EXPECT_LE(ev.end(), kYear);
            prev_end = ev.end();
        }
    }
}

TEST(Trace, CountsFollowTheFrequencyDistribution)
{
    auto gen = OutageTraceGenerator::figure1();
    Rng rng(7);
    double total = 0.0;
    const int trials = 2000;
    for (int i = 0; i < trials; ++i)
        total += static_cast<double>(gen.generate(rng, kYear).size());
    // Mean ~3.185/year; placement can only drop events (rarely).
    EXPECT_NEAR(total / trials, 3.1, 0.3);
}

TEST(Trace, HorizonScalesTheCount)
{
    auto gen = OutageTraceGenerator::figure1();
    Rng rng(11);
    double half_year = 0.0;
    const int trials = 2000;
    for (int i = 0; i < trials; ++i)
        half_year +=
            static_cast<double>(gen.generate(rng, kYear / 2).size());
    EXPECT_NEAR(half_year / trials, 3.185 / 2.0, 0.3);
}

TEST(Trace, DeterministicGivenSeed)
{
    auto gen = OutageTraceGenerator::figure1();
    Rng a(42), b(42);
    const auto ea = gen.generate(a, kYear);
    const auto eb = gen.generate(b, kYear);
    ASSERT_EQ(ea.size(), eb.size());
    for (std::size_t i = 0; i < ea.size(); ++i) {
        EXPECT_EQ(ea[i].start, eb[i].start);
        EXPECT_EQ(ea[i].duration, eb[i].duration);
    }
}

TEST(Trace, MostOutagesAreShort)
{
    auto gen = OutageTraceGenerator::figure1();
    Rng rng(13);
    int total = 0, short_ones = 0;
    for (int i = 0; i < 3000; ++i) {
        for (const auto &ev : gen.generate(rng, kYear)) {
            ++total;
            if (ev.duration <= fromMinutes(5.0))
                ++short_ones;
        }
    }
    ASSERT_GT(total, 1000);
    EXPECT_NEAR(short_ones / double(total), 0.58, 0.03);
}

TEST(Trace, RejectsNonPositiveHorizon)
{
    auto gen = OutageTraceGenerator::figure1();
    Rng rng(1);
    EXPECT_DEATH(gen.generate(rng, 0), "horizon");
}

} // namespace
} // namespace bpsim
