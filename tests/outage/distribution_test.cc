/**
 * @file
 * Tests for the Figure 1 outage distributions.
 */

#include <gtest/gtest.h>

#include "outage/distribution.hh"

namespace bpsim
{
namespace
{

TEST(DurationDist, Figure1BucketMasses)
{
    const auto d = OutageDurationDistribution::figure1();
    ASSERT_EQ(d.buckets().size(), 6u);
    EXPECT_DOUBLE_EQ(d.buckets()[0].prob, 0.31); // < 1 min
    EXPECT_DOUBLE_EQ(d.buckets()[1].prob, 0.27); // 1-5
    EXPECT_DOUBLE_EQ(d.buckets()[2].prob, 0.14); // 5-30
    EXPECT_DOUBLE_EQ(d.buckets()[3].prob, 0.17); // 30-120
    EXPECT_DOUBLE_EQ(d.buckets()[4].prob, 0.06); // 120-240
    EXPECT_DOUBLE_EQ(d.buckets()[5].prob, 0.05); // > 240
}

TEST(DurationDist, MajorityShorterThanFiveMinutes)
{
    // The paper's headline: over 58 % of outages are <= 5 minutes.
    const auto d = OutageDurationDistribution::figure1();
    EXPECT_NEAR(d.fractionWithin(fromMinutes(5.0)), 0.58, 1e-9);
}

TEST(DurationDist, SurvivalAtBucketEdges)
{
    const auto d = OutageDurationDistribution::figure1();
    EXPECT_DOUBLE_EQ(d.survival(0), 1.0);
    EXPECT_NEAR(d.survival(fromMinutes(1.0)), 0.69, 1e-9);
    EXPECT_NEAR(d.survival(fromMinutes(30.0)), 0.28, 1e-9);
    EXPECT_NEAR(d.survival(fromMinutes(120.0)), 0.11, 1e-9);
    EXPECT_NEAR(d.survival(fromMinutes(240.0)), 0.05, 1e-9);
    EXPECT_DOUBLE_EQ(d.survival(fromMinutes(480.0)), 0.0);
}

TEST(DurationDist, SurvivalInterpolatesWithinBuckets)
{
    const auto d = OutageDurationDistribution::figure1();
    // Halfway through the 1-5 min bucket: 0.69 - 0.27/2.
    EXPECT_NEAR(d.survival(fromMinutes(3.0)), 0.555, 1e-9);
}

TEST(DurationDist, SurvivalMonotoneNonIncreasing)
{
    const auto d = OutageDurationDistribution::figure1();
    double prev = 1.1;
    for (double m = 0.0; m <= 500.0; m += 7.3) {
        const double s = d.survival(fromMinutes(m));
        EXPECT_LE(s, prev + 1e-12);
        prev = s;
    }
}

TEST(DurationDist, ConditionalSurvivalIsBayes)
{
    const auto d = OutageDurationDistribution::figure1();
    const Time e = fromMinutes(10.0), u = fromMinutes(60.0);
    EXPECT_NEAR(d.conditionalSurvival(e, u),
                d.survival(u) / d.survival(e), 1e-12);
    // Conditioning on nothing is the plain survival.
    EXPECT_NEAR(d.conditionalSurvival(0, u), d.survival(u), 1e-12);
}

TEST(DurationDist, ConditionalSurvivalOfDeadTailIsZero)
{
    const auto d = OutageDurationDistribution::figure1();
    EXPECT_DOUBLE_EQ(
        d.conditionalSurvival(fromMinutes(500.0), fromMinutes(600.0)),
        0.0);
}

TEST(DurationDist, ExpectedRemainingGrowsWithElapsed)
{
    // Survived outages get (stochastically) longer: the hazard of the
    // mixture decreases, so E[remaining] grows with elapsed time.
    const auto d = OutageDurationDistribution::figure1();
    const Time early = d.expectedRemaining(0);
    const Time mid = d.expectedRemaining(fromMinutes(10.0));
    const Time late = d.expectedRemaining(fromMinutes(120.0));
    EXPECT_LT(early, mid);
    EXPECT_LT(mid, late);
}

TEST(DurationDist, MeanMatchesBucketMidpoints)
{
    const auto d = OutageDurationDistribution::figure1();
    const double expect_min = 0.31 * 0.5 + 0.27 * 3.0 + 0.14 * 17.5 +
                              0.17 * 75.0 + 0.06 * 180.0 + 0.05 * 360.0;
    EXPECT_NEAR(toMinutes(d.mean()), expect_min, 1e-9);
}

TEST(DurationDist, ExpectedRemainingAtZeroIsTheMean)
{
    const auto d = OutageDurationDistribution::figure1();
    EXPECT_NEAR(toMinutes(d.expectedRemaining(0)), toMinutes(d.mean()),
                1e-6);
}

TEST(DurationDist, SamplesFollowTheBuckets)
{
    const auto d = OutageDurationDistribution::figure1();
    Rng rng(2024);
    int within_5min = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const Time t = d.sample(rng);
        ASSERT_GT(t, 0);
        ASSERT_LE(t, fromMinutes(480.0));
        if (t <= fromMinutes(5.0))
            ++within_5min;
    }
    EXPECT_NEAR(within_5min / double(n), 0.58, 0.01);
}

TEST(DurationDist, RejectsBadBuckets)
{
    EXPECT_DEATH(OutageDurationDistribution({{0.0, 1.0, 0.5}}),
                 "sum to");
    EXPECT_DEATH(OutageDurationDistribution(
                     {{0.0, 2.0, 0.5}, {1.0, 3.0, 0.5}}),
                 "overlap");
}

TEST(FrequencyDist, Figure1BucketMasses)
{
    const auto f = OutageFrequencyDistribution::figure1();
    ASSERT_EQ(f.buckets().size(), 4u);
    EXPECT_DOUBLE_EQ(f.buckets()[0].prob, 0.17); // none
    EXPECT_DOUBLE_EQ(f.buckets()[1].prob, 0.40); // 1-2
    EXPECT_DOUBLE_EQ(f.buckets()[2].prob, 0.30); // 3-6
    EXPECT_DOUBLE_EQ(f.buckets()[3].prob, 0.13); // 7+
}

TEST(FrequencyDist, SixOrFewerIsTheOverwhelmingMajority)
{
    // 87 % of businesses see 6 or fewer outages per year.
    const auto f = OutageFrequencyDistribution::figure1();
    double mass = 0.0;
    for (const auto &b : f.buckets()) {
        if (b.hi <= 7.0)
            mass += b.prob;
    }
    EXPECT_NEAR(mass, 0.87, 1e-9);
}

TEST(FrequencyDist, SamplesAreValidCounts)
{
    const auto f = OutageFrequencyDistribution::figure1();
    Rng rng(5);
    int zeros = 0;
    for (int i = 0; i < 50000; ++i) {
        const int n = f.sample(rng);
        ASSERT_GE(n, 0);
        ASSERT_LE(n, 12);
        if (n == 0)
            ++zeros;
    }
    EXPECT_NEAR(zeros / 50000.0, 0.17, 0.01);
}

TEST(FrequencyDist, MeanIsPlausible)
{
    const auto f = OutageFrequencyDistribution::figure1();
    // 0.17*0 + 0.40*1.5 + 0.30*4.5 + 0.13*9.5 = 3.185.
    EXPECT_NEAR(f.mean(), 3.185, 1e-9);
}

} // namespace
} // namespace bpsim
