/**
 * @file
 * Tests for the outage-duration predictor and the escalation policy.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "outage/predictor.hh"

namespace bpsim
{
namespace
{

OutagePredictor
paperPredictor()
{
    return OutagePredictor(OutageDurationDistribution::figure1());
}

TEST(Predictor, ProbOutlastsMatchesConditionalSurvival)
{
    const auto p = paperPredictor();
    const auto &d = p.distribution();
    EXPECT_NEAR(p.probOutlasts(fromMinutes(2.0), fromMinutes(8.0)),
                d.conditionalSurvival(fromMinutes(2.0), fromMinutes(10.0)),
                1e-12);
}

TEST(Predictor, ShortOutagesLikelyToEndSoon)
{
    const auto p = paperPredictor();
    // A just-started outage has a 58 % chance of ending within 5 min.
    EXPECT_NEAR(1.0 - p.probOutlasts(0, fromMinutes(5.0)), 0.58, 1e-9);
}

TEST(Predictor, SurvivedOutagesAreStickier)
{
    const auto p = paperPredictor();
    // P(lasts 30 more min) grows with elapsed time.
    const double fresh = p.probOutlasts(0, fromMinutes(30.0));
    const double old = p.probOutlasts(fromMinutes(60.0),
                                      fromMinutes(30.0));
    EXPECT_GT(old, fresh);
}

TEST(Predictor, TransitionMatrixRowsAreDistributions)
{
    const auto p = paperPredictor();
    const std::vector<Time> edges{0,
                                  fromMinutes(1.0),
                                  fromMinutes(5.0),
                                  fromMinutes(30.0),
                                  fromMinutes(120.0),
                                  fromMinutes(240.0)};
    const auto m = p.transitionMatrix(edges);
    ASSERT_EQ(m.size(), edges.size());
    for (std::size_t i = 0; i < m.size(); ++i) {
        const double row =
            std::accumulate(m[i].begin(), m[i].end(), 0.0);
        EXPECT_NEAR(row, 1.0, 1e-9) << "row " << i;
        // No mass on states already passed.
        for (std::size_t j = 0; j < i; ++j)
            EXPECT_DOUBLE_EQ(m[i][j], 0.0);
    }
}

TEST(Predictor, TransitionMatrixFirstRowIsTheMarginal)
{
    const auto p = paperPredictor();
    const std::vector<Time> edges{0, fromMinutes(1.0), fromMinutes(5.0),
                                  fromMinutes(30.0), fromMinutes(120.0),
                                  fromMinutes(240.0)};
    const auto m = p.transitionMatrix(edges);
    // Row 0 reproduces Figure 1(b)'s bucket masses.
    EXPECT_NEAR(m[0][0], 0.31, 1e-9);
    EXPECT_NEAR(m[0][1], 0.27, 1e-9);
    EXPECT_NEAR(m[0][2], 0.14, 1e-9);
    EXPECT_NEAR(m[0][3], 0.17, 1e-9);
    EXPECT_NEAR(m[0][4], 0.06, 1e-9);
    EXPECT_NEAR(m[0][5], 0.05, 1e-9);
}

TEST(Predictor, TransitionMatrixRejectsBadEdges)
{
    const auto p = paperPredictor();
    EXPECT_DEATH(p.transitionMatrix({}), "at least one");
    EXPECT_DEATH(p.transitionMatrix({fromMinutes(5.0), fromMinutes(1.0)}),
                 "increasing");
}

TEST(EscalationPolicy, PicksHighestPerfSafeLevel)
{
    AdaptiveEscalationPolicy pol(paperPredictor(), 0.3);
    // Level 0: full speed, tiny runway; level 1: throttled, medium;
    // level 2: sleep-bound, huge runway.
    const std::vector<Time> runway{fromMinutes(2.0), fromMinutes(12.0),
                                   fromHours(10.0)};
    const std::vector<double> perf{1.0, 0.6, 0.0};
    const int pick = pol.choose(0, runway, perf, fromSeconds(10.0));
    // 2-minute runway leaves ~45 % of outages uncovered (> 0.3 risk);
    // 12 minutes leaves ~35 %... also unsafe; sleep always safe.
    EXPECT_EQ(pick, 2);
}

TEST(EscalationPolicy, RelaxedRiskPrefersServing)
{
    AdaptiveEscalationPolicy pol(paperPredictor(), 0.5);
    const std::vector<Time> runway{fromMinutes(2.0), fromMinutes(12.0),
                                   fromHours(10.0)};
    const std::vector<double> perf{1.0, 0.6, 0.0};
    // At 50 % tolerated risk, the 12-minute throttled level (only
    // ~37 % of outages outlast 12 min) is acceptable; full speed with
    // a 2-minute runway (45 % outlast) is not.
    EXPECT_EQ(pol.choose(0, runway, perf, 0), 1);
}

TEST(EscalationPolicy, ZeroRiskAlwaysSaves)
{
    AdaptiveEscalationPolicy pol(paperPredictor(), 0.0);
    const std::vector<Time> runway{fromMinutes(30.0)};
    const std::vector<double> perf{1.0};
    EXPECT_EQ(pol.choose(0, runway, perf, 0), -1);
}

TEST(EscalationPolicy, SaveReserveShrinksTheRunway)
{
    AdaptiveEscalationPolicy pol(paperPredictor(), 0.45);
    const std::vector<Time> runway{fromMinutes(5.0)};
    const std::vector<double> perf{1.0};
    // With no reserve the 5-minute runway is acceptable (42 % risk);
    // reserving 4.5 minutes for the save pushes risk too high.
    EXPECT_EQ(pol.choose(0, runway, perf, 0), 0);
    EXPECT_EQ(pol.choose(0, runway, perf, fromMinutes(4.5)), -1);
}

TEST(EscalationPolicy, MismatchedVectorsPanic)
{
    AdaptiveEscalationPolicy pol(paperPredictor(), 0.5);
    EXPECT_DEATH(pol.choose(0, {kMinute}, {1.0, 0.5}, 0), "disagree");
}

} // namespace
} // namespace bpsim
