/**
 * @file
 * Metrics-history tests: tier-rollup exactness (a coarse bucket is
 * the exact min/max/sum/count aggregate of the raw samples its window
 * saw), retention eviction, tier auto-selection, deterministic LTTB
 * downsampling, byte-pinned /v1/series responses under the stepping
 * fake clock, the on/off body-equality matrix across the existing
 * miss/hit/coalesced/resumed paths, the /v1/status history block and
 * history_lag_ms access-log field, the alert transition log, the
 * header contract (charset + Cache-Control: no-store), the
 * self-contained dashboard, and a TSan-targeted sampler-vs-request
 * hammer.
 */

#include "obs/history.hh"

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/obs.hh"
#include "service/dashboard.hh"
#include "service/service.hh"

using namespace bpsim;
using namespace bpsim::service;

namespace
{

/** The reqobs_test scenario (miss/hit/resume/coalesce references). */
const char *const kBody =
    "{\"config\":\"NoUPS\",\"trials\":6,\"seed\":11,"
    "\"technique\":{\"kind\":\"throttle_sleep\",\"pstate\":5,"
    "\"serve_for_min\":10.0,\"low_power\":true}}";
const char *const kBodyBig =
    "{\"config\":\"NoUPS\",\"trials\":12,\"seed\":11,"
    "\"technique\":{\"kind\":\"throttle_sleep\",\"pstate\":5,"
    "\"serve_for_min\":10.0,\"low_power\":true}}";
const char *const kBodyCoal =
    "{\"config\":\"NoUPS\",\"trials\":8,\"seed\":13,"
    "\"technique\":{\"kind\":\"throttle_sleep\",\"pstate\":5,"
    "\"serve_for_min\":10.0,\"low_power\":true}}";

HttpRequest
post(const std::string &target, const std::string &body)
{
    HttpRequest req;
    req.method = "POST";
    req.target = target;
    req.body = body;
    return req;
}

HttpRequest
get(const std::string &target)
{
    HttpRequest req;
    req.method = "GET";
    req.target = target;
    return req;
}

const std::string *
header(const HttpResponse &resp, const std::string &name)
{
    for (const auto &[k, v] : resp.headers)
        if (k == name)
            return &v;
    return nullptr;
}

/** A deterministic clock: call k returns exactly k milliseconds. */
std::function<std::uint64_t()>
steppingClock(std::uint64_t stepMs = 1)
{
    auto t = std::make_shared<std::atomic<std::uint64_t>>(0);
    return [t, stepMs] {
        return (t->fetch_add(1) + 1) * stepMs * 1000000ull;
    };
}

/** The reference body computed directly by the campaign layer. */
std::string
reference(const char *body)
{
    std::string err;
    const auto parsed = parseJson(body, &err);
    EXPECT_TRUE(parsed.has_value()) << err;
    const auto req = parseWhatIfRequest(*parsed, &err);
    EXPECT_TRUE(req.has_value()) << err;
    return runWhatIf(*req);
}

constexpr std::uint64_t kSec = 1000000000ull;

} // namespace

TEST(HistoryStoreTest, TierRollupsAreExactAggregatesOfRawSamples)
{
    obs::HistoryConfig cfg;
    cfg.cadenceNs = kSec;
    cfg.retentionNs = 10 * kSec;
    obs::HistoryStore store(cfg);

    // Dyadic values: the rollup's sequential sum has no rounding, so
    // exactness is an equality, not a tolerance.
    std::vector<double> raw;
    for (int i = 0; i < 10; ++i) {
        const double v = 0.25 * i - 0.5;
        store.record("sig", static_cast<std::uint64_t>(i) * kSec, v);
        raw.push_back(v);
    }

    // Raw tier: one bucket per sample.
    const auto t0 = store.query("sig", {0, ~0ull, 0, 0});
    ASSERT_EQ(t0.points.size(), 10u);
    for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(t0.points[i].startNs,
                  static_cast<std::uint64_t>(i) * kSec);
        EXPECT_EQ(t0.points[i].count, 1u);
        EXPECT_EQ(t0.points[i].min, raw[i]);
        EXPECT_EQ(t0.points[i].max, raw[i]);
        EXPECT_EQ(t0.points[i].sum, raw[i]);
    }

    // 10 s and 60 s tiers: all ten samples fold into one bucket whose
    // aggregates must reconcile exactly with the raw ring.
    double mn = raw[0], mx = raw[0], sum = 0.0;
    for (const double v : raw) {
        mn = std::min(mn, v);
        mx = std::max(mx, v);
        sum += v;
    }
    for (const int tier : {1, 2}) {
        const auto t = store.query("sig", {0, ~0ull, 0, tier});
        ASSERT_EQ(t.points.size(), 1u) << "tier " << tier;
        EXPECT_EQ(t.points[0].startNs, 0u);
        EXPECT_EQ(t.points[0].count, 10u);
        EXPECT_EQ(t.points[0].min, mn);
        EXPECT_EQ(t.points[0].max, mx);
        EXPECT_EQ(t.points[0].sum, sum);
    }
}

TEST(HistoryStoreTest, RetentionEvictsOldestRawBuckets)
{
    obs::HistoryConfig cfg;
    cfg.cadenceNs = kSec;
    cfg.retentionNs = 4 * kSec; // raw ring holds 4 buckets
    obs::HistoryStore store(cfg);

    for (int i = 0; i < 8; ++i)
        store.record("sig", static_cast<std::uint64_t>(i) * kSec, 1.0);

    const auto t0 = store.query("sig", {0, ~0ull, 0, 0});
    ASSERT_EQ(t0.points.size(), 4u);
    // Oldest four were overwritten round-robin; the survivors are the
    // newest four, oldest first.
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(t0.points[i].startNs,
                  static_cast<std::uint64_t>(i + 4) * kSec);

    const obs::HistoryStats stats = store.stats();
    EXPECT_EQ(stats.evictedBuckets, 4u); // only the raw tier wrapped
    EXPECT_EQ(stats.samples, 8u);
    EXPECT_GT(stats.bytes, 0u);
}

TEST(HistoryStoreTest, TierAutoSelectionDegradesToRollups)
{
    obs::HistoryConfig cfg;
    cfg.cadenceNs = kSec;
    cfg.retentionNs = 4 * kSec;
    obs::HistoryStore store(cfg);

    for (int i = 0; i < 40; ++i)
        store.record("sig", static_cast<std::uint64_t>(i) * kSec,
                     static_cast<double>(i));

    // Recent window: the raw ring still covers it -> finest tier.
    EXPECT_EQ(store.query("sig", {38 * kSec}).tier, 0);
    // Older than the raw ring's 4 s span but inside the 40 s rollup
    // span -> the 10 s tier answers.
    EXPECT_EQ(store.query("sig", {5 * kSec}).tier, 1);
    // The whole span -> the coarsest tier.
    EXPECT_EQ(store.query("sig", {}).tier, 2);
    // Window filtering keeps any bucket that *overlaps* the window.
    const auto t0 = store.query("sig", {38 * kSec});
    ASSERT_EQ(t0.points.size(), 2u);
    EXPECT_EQ(t0.points[0].startNs, 38u * kSec);

    // Unknown series: tier -1, no points.
    EXPECT_EQ(store.query("nope", {}).tier, -1);
    EXPECT_TRUE(store.query("nope", {}).points.empty());
}

TEST(HistoryStoreTest, LttbDownsamplingIsDeterministicAndBounded)
{
    obs::HistoryConfig cfg;
    cfg.cadenceNs = kSec;
    cfg.retentionNs = 100 * kSec;
    obs::HistoryStore store(cfg);

    for (int i = 0; i < 100; ++i)
        store.record("sig", static_cast<std::uint64_t>(i) * kSec,
                     (i % 7) * 0.5);

    obs::HistoryStore::Query q;
    q.tier = 0;
    q.maxPoints = 10;
    const auto a = store.query("sig", q);
    EXPECT_TRUE(a.downsampled);
    ASSERT_EQ(a.points.size(), 10u);
    // LTTB keeps the endpoints and whole buckets (min/max/sum/count
    // survive; only in-between buckets are dropped).
    EXPECT_EQ(a.points.front().startNs, 0u);
    EXPECT_EQ(a.points.back().startNs, 99u * kSec);
    EXPECT_EQ(a.points.front().count, 1u);

    const auto b = store.query("sig", q);
    ASSERT_EQ(b.points.size(), a.points.size());
    for (std::size_t i = 0; i < a.points.size(); ++i) {
        EXPECT_EQ(a.points[i].startNs, b.points[i].startNs);
        EXPECT_EQ(a.points[i].sum, b.points[i].sum);
    }

    // maxPoints >= size: untouched.
    q.maxPoints = 200;
    EXPECT_FALSE(store.query("sig", q).downsampled);
}

TEST(HistoryStoreTest, SeriesCapDropsNewNamesAndCounts)
{
    obs::HistoryConfig cfg;
    cfg.maxSeries = 2;
    obs::HistoryStore store(cfg);

    store.record("a", kSec, 1.0);
    store.record("b", kSec, 2.0);
    store.record("c", kSec, 3.0); // beyond the cap: dropped, counted

    const auto names = store.names();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "a");
    EXPECT_EQ(names[1], "b");
    const obs::HistoryStats stats = store.stats();
    EXPECT_EQ(stats.droppedSeries, 1u);
    EXPECT_EQ(stats.samples, 2u);
}

TEST(HistoryServiceTest, SeriesResponseBytesArePinnedUnderFakeClock)
{
    if (!RequestObserver::kCompiledIn)
        GTEST_SKIP() << "obs compiled out";

    obs::Registry reg;
    ServiceOptions opts;
    opts.evaluateAlerts = false;
    opts.reqobs.clock = steppingClock();
    opts.history.samplerThread = false;
    opts.history.cadenceNs = 1000000;    // 1 ms: one bucket per tick
    opts.history.retentionNs = 10000000; // 10 buckets per tier
    opts.history.registry = &reg;
    CampaignService service(opts); // clock call 1 (boot)

    // Tick 1 (clock 2, t = 2 ms): establishes the counter baseline —
    // no rate yet. Tick 2 (clock 3, t = 3 ms): 5 events over 1 ms.
    // Tick 3 (clock 4, t = 4 ms): 15 events over 1 ms. All ticks land
    // before any handle() call (requests advance the shared clock).
    reg.counter("test.events").add(5);
    service.sampleHistoryOnce();
    reg.counter("test.events").add(5);
    service.sampleHistoryOnce();
    reg.counter("test.events").add(15);
    service.sampleHistoryOnce();

    const HttpResponse resp =
        service.handle(get("/v1/series?name=test.events:rate&tier=0"));
    EXPECT_EQ(resp.status, 200);
    EXPECT_EQ(resp.body,
              "{\"enabled\":true,\"cadence_ns\":1000000,"
              "\"retention_ns\":10000000,\"tiers\":["
              "{\"tier\":0,\"width_ns\":1000000,\"capacity\":10},"
              "{\"tier\":1,\"width_ns\":10000000,\"capacity\":10},"
              "{\"tier\":2,\"width_ns\":60000000,\"capacity\":10}],"
              "\"series\":[{\"name\":\"test.events:rate\","
              "\"found\":true,\"tier\":0,\"width_ns\":1000000,"
              "\"capacity\":10,\"downsampled\":false,"
              "\"points\":[[3000000,1,5000,5000,5000],"
              "[4000000,1,15000,15000,15000]]}]}\n");

    // The 10 ms rollup bucket aggregates both rate samples exactly.
    const HttpResponse roll =
        service.handle(get("/v1/series?name=test.events:rate&tier=1"));
    EXPECT_NE(roll.body.find("\"points\":[[0,2,5000,15000,20000]]"),
              std::string::npos)
        << roll.body;

    // Unknown names report found:false with no points.
    const HttpResponse unknown =
        service.handle(get("/v1/series?name=no.such"));
    EXPECT_NE(unknown.body.find(
                  "{\"name\":\"no.such\",\"found\":false}"),
              std::string::npos)
        << unknown.body;

    // Malformed window parameters are a 400, not a silent default.
    EXPECT_EQ(service.handle(get("/v1/series?after=x")).status, 400);
    EXPECT_EQ(service.handle(get("/v1/series?tier=9")).status, 400);
}

TEST(HistoryServiceTest, SeriesWithoutNameListsStoredSeries)
{
    if (!RequestObserver::kCompiledIn)
        GTEST_SKIP() << "obs compiled out";

    obs::Registry reg;
    ServiceOptions opts;
    opts.evaluateAlerts = false;
    opts.history.samplerThread = false;
    opts.history.registry = &reg;
    CampaignService service(opts);
    service.sampleHistoryOnce();

    const HttpResponse resp = service.handle(get("/v1/series"));
    EXPECT_EQ(resp.status, 200);
    std::string err;
    const auto doc = parseJson(resp.body, &err);
    ASSERT_TRUE(doc.has_value()) << err << "\n" << resp.body;
    EXPECT_TRUE(doc->at("enabled").asBool());
    const JsonValue &names = doc->at("names");
    ASSERT_GT(names.size(), 0u);
    bool cache_depth = false, alert_state = false;
    for (std::size_t i = 0; i < names.size(); ++i) {
        const std::string &n = names.item(i).asString();
        cache_depth |= n == "service.cache.results.entries";
        alert_state |= n == "alert.ups_charge_low.state";
    }
    EXPECT_TRUE(cache_depth);
    EXPECT_TRUE(alert_state);
    EXPECT_EQ(doc->at("tiers").size(), 3u);
}

TEST(HistoryServiceTest, DisabledHistoryIs404AndStatusOmitsBlock)
{
    ServiceOptions opts;
    opts.evaluateAlerts = false;
    opts.history.enabled = false;
    CampaignService service(opts);

    EXPECT_EQ(service.handle(get("/v1/series")).status, 404);
    EXPECT_EQ(service.handle(get("/v1/alerts/history")).status, 404);
    // The dashboard page itself still serves (it explains the 404 its
    // poll will get).
    EXPECT_EQ(service.handle(get("/dashboard")).status, 200);

    const HttpResponse status = service.handle(get("/v1/status"));
    EXPECT_EQ(status.body.find("\"history\""), std::string::npos);
}

TEST(HistoryServiceTest, StatusHistoryBlockReportsBoundedFootprint)
{
    if (!RequestObserver::kCompiledIn)
        GTEST_SKIP() << "obs compiled out";

    obs::Registry reg;
    ServiceOptions opts;
    opts.evaluateAlerts = false;
    opts.history.samplerThread = false;
    opts.history.registry = &reg;
    CampaignService service(opts);
    service.sampleHistoryOnce();
    service.sampleHistoryOnce();

    const HttpResponse status = service.handle(get("/v1/status"));
    std::string err;
    const auto doc = parseJson(status.body, &err);
    ASSERT_TRUE(doc.has_value()) << err << "\n" << status.body;
    const JsonValue &h = doc->at("history");
    EXPECT_TRUE(h.at("enabled").asBool());
    EXPECT_GT(h.at("series").asUint(), 0u);
    EXPECT_GT(h.at("samples").asUint(), 0u);
    EXPECT_GT(h.at("bytes").asUint(), 0u);
    EXPECT_EQ(h.at("dropped_series").asUint(), 0u);
    EXPECT_EQ(h.at("lag_ms").asUint(), 0u);
    ASSERT_EQ(h.at("tiers").size(), 3u);
    EXPECT_GT(h.at("tiers").item(0).at("buckets").asUint(), 0u);
    EXPECT_EQ(h.at("alert_events").asUint(), 0u);
}

TEST(HistoryServiceTest, LagBehindCadenceIsLoggedOnRequests)
{
    if (!RequestObserver::kCompiledIn)
        GTEST_SKIP() << "obs compiled out";

    std::ostringstream log;
    ServiceOptions opts;
    opts.evaluateAlerts = false;
    opts.reqobs.accessLogStream = &log;
    opts.reqobs.clock = steppingClock(10); // 10 ms per clock call
    opts.history.samplerThread = false;
    opts.history.cadenceNs = 1000000; // 1 ms cadence
    opts.history.registry = nullptr;
    obs::Registry reg;
    opts.history.registry = &reg;
    CampaignService service(opts); // clock 1

    service.sampleHistoryOnce(); // clock 2: baseline, no lag yet
    EXPECT_EQ(service.historyLagMs(), 0u);
    // Clock 3: 10 ms elapsed against a 1 ms cadence -> 9 ms behind.
    service.sampleHistoryOnce();
    EXPECT_EQ(service.historyLagMs(), 9u);

    EXPECT_EQ(service.handle(get("/healthz")).status, 200);
    EXPECT_NE(log.str().find("\"history_lag_ms\":9"),
              std::string::npos)
        << log.str();
}

TEST(HistoryServiceTest,
     ExistingBodiesByteIdenticalWithHistoryOnOffAcrossPaths)
{
    // The acceptance contract: the sampler and its store never touch
    // a response body. Run the four serving paths with history on
    // (sampling aggressively between requests) and off; every body
    // must equal the campaign layer's direct answer.
    const std::string ref6 = reference(kBody);
    const std::string ref12 = reference(kBodyBig);
    const std::string refCoal = reference(kBodyCoal);

    struct Paths
    {
        std::string miss, hit, resumed, alerts;
        std::vector<std::string> coalesced;
    };
    const auto runPaths = [&](bool enabled) {
        ServiceOptions opts;
        opts.evaluateAlerts = false;
        opts.history.enabled = enabled;
        opts.history.samplerThread = false;
        CampaignService *svc = nullptr;
        std::atomic<bool> armed{false};
        opts.testBeforeCampaign = [&svc, &armed] {
            if (!armed.exchange(false))
                return;
            while (svc->coalesceWaiters() < 1)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
        };
        CampaignService service(opts);
        svc = &service;

        const auto tick = [&service] { service.sampleHistoryOnce(); };
        Paths out;
        tick();
        out.miss = service.handle(post("/v1/whatif", kBody)).body;
        tick();
        out.hit = service.handle(post("/v1/whatif", kBody)).body;
        tick();
        out.resumed =
            service.handle(post("/v1/whatif", kBodyBig)).body;
        tick();
        out.alerts = service.handle(get("/v1/alerts")).body;

        armed.store(true);
        out.coalesced.resize(2);
        std::thread a([&service, &out] {
            out.coalesced[0] =
                service.handle(post("/v1/whatif", kBodyCoal)).body;
        });
        std::thread b([&service, &out] {
            out.coalesced[1] =
                service.handle(post("/v1/whatif", kBodyCoal)).body;
        });
        a.join();
        b.join();
        tick();
        return out;
    };

    const Paths on = runPaths(true);
    const Paths off = runPaths(false);

    EXPECT_EQ(on.miss, ref6);
    EXPECT_EQ(off.miss, ref6);
    EXPECT_EQ(on.hit, ref6);
    EXPECT_EQ(off.hit, ref6);
    EXPECT_EQ(on.resumed, ref12);
    EXPECT_EQ(off.resumed, ref12);
    EXPECT_EQ(on.coalesced[0], refCoal);
    EXPECT_EQ(on.coalesced[1], refCoal);
    EXPECT_EQ(off.coalesced[0], refCoal);
    EXPECT_EQ(off.coalesced[1], refCoal);
    EXPECT_EQ(on.alerts, off.alerts);
}

TEST(HistoryServiceTest, AlertTransitionsAreRetainedWithTimestamps)
{
    if (!RequestObserver::kCompiledIn)
        GTEST_SKIP() << "obs compiled out";

    // Default options: alerts evaluate after every uncached what-if,
    // and the NoUPS scenario reliably trips ups_charge_low on every
    // sampled trial (the battery-less config's SoC pins at zero).
    ServiceOptions opts;
    opts.history.samplerThread = false;
    CampaignService service(opts);

    EXPECT_EQ(service.handle(post("/v1/whatif", kBody)).status, 200);
    const std::size_t fired = service.alerts().eventLog().size();
    ASSERT_GT(fired, 0u);

    const HttpResponse resp =
        service.handle(get("/v1/alerts/history"));
    EXPECT_EQ(resp.status, 200);
    std::string err;
    const auto doc = parseJson(resp.body, &err);
    ASSERT_TRUE(doc.has_value()) << err << "\n" << resp.body;
    const JsonValue &events = doc->at("events");
    ASSERT_EQ(events.size(), fired);
    EXPECT_EQ(doc->at("dropped").asUint(), 0u);
    for (std::size_t i = 0; i < events.size(); ++i) {
        const JsonValue &e = events.item(i);
        EXPECT_GT(e.at("ts_ns").asUint(), 0u);
        EXPECT_FALSE(e.at("rule").asString().empty());
        EXPECT_NE(e.at("from").asString(), e.at("to").asString());
    }

    // The status block counts the retained entries.
    const HttpResponse status = service.handle(get("/v1/status"));
    const auto sdoc = parseJson(status.body, &err);
    ASSERT_TRUE(sdoc.has_value()) << err;
    EXPECT_EQ(sdoc->at("history").at("alert_events").asUint(), fired);
}

TEST(HistoryServiceTest, AlertHistoryCapacityDropsOldestAndCounts)
{
    if (!RequestObserver::kCompiledIn)
        GTEST_SKIP() << "obs compiled out";

    ServiceOptions opts;
    opts.history.samplerThread = false;
    opts.history.alertEventCapacity = 1;
    CampaignService service(opts);

    EXPECT_EQ(service.handle(post("/v1/whatif", kBody)).status, 200);
    const std::size_t fired = service.alerts().eventLog().size();
    ASSERT_GT(fired, 1u);

    const HttpResponse resp =
        service.handle(get("/v1/alerts/history"));
    std::string err;
    const auto doc = parseJson(resp.body, &err);
    ASSERT_TRUE(doc.has_value()) << err;
    EXPECT_EQ(doc->at("events").size(), 1u);
    EXPECT_EQ(doc->at("dropped").asUint(),
              static_cast<std::uint64_t>(fired - 1));
}

TEST(HistoryServiceTest, HeaderContractCharsetAndNoStore)
{
    ServiceOptions opts;
    opts.evaluateAlerts = false;
    opts.history.samplerThread = false;
    CampaignService service(opts);

    // Every endpoint (success or error) declares no-store: scrapers
    // and the dashboard poller must never cache a stale snapshot.
    const struct
    {
        const char *method;
        const char *target;
        const char *contentType;
    } cases[] = {
        {"GET", "/healthz", "application/json; charset=utf-8"},
        {"GET", "/v1/status", "application/json; charset=utf-8"},
        {"GET", "/v1/alerts", "application/json; charset=utf-8"},
        {"GET", "/metrics",
         "application/openmetrics-text; version=1.0.0; charset=utf-8"},
        {"GET", "/dashboard", "text/html; charset=utf-8"},
        {"GET", "/nope", "application/json; charset=utf-8"},
    };
    for (const auto &c : cases) {
        HttpRequest req;
        req.method = c.method;
        req.target = c.target;
        const HttpResponse resp = service.handle(req);
        EXPECT_EQ(resp.contentType, c.contentType) << c.target;
        const std::string *cc = header(resp, "Cache-Control");
        ASSERT_NE(cc, nullptr) << c.target;
        EXPECT_EQ(*cc, "no-store") << c.target;
    }
    // The rendered wire form carries both headers.
    const std::string wire =
        renderHttpResponse(service.handle(get("/healthz")));
    EXPECT_NE(wire.find("Content-Type: application/json; "
                        "charset=utf-8\r\n"),
              std::string::npos);
    EXPECT_NE(wire.find("Cache-Control: no-store\r\n"),
              std::string::npos);
}

TEST(HistoryServiceTest, DashboardIsSelfContained)
{
    ServiceOptions opts;
    opts.evaluateAlerts = false;
    opts.history.samplerThread = false;
    CampaignService service(opts);

    const HttpResponse resp = service.handle(get("/dashboard"));
    EXPECT_EQ(resp.status, 200);
    EXPECT_EQ(resp.contentType, "text/html; charset=utf-8");
    const std::string &html = resp.body;
    EXPECT_EQ(html.rfind("<!DOCTYPE html>", 0), 0u);
    EXPECT_NE(html.find("</html>"), std::string::npos);
    // It polls the history endpoint...
    EXPECT_NE(html.find("/v1/series"), std::string::npos);
    // ...and references nothing outside the server: no external
    // links, scripts, styles or images (the air-gap contract the
    // smoke test also greps for).
    EXPECT_EQ(html.find("http://"), std::string::npos);
    EXPECT_EQ(html.find("https://"), std::string::npos);
    EXPECT_EQ(html.find("src="), std::string::npos);
    EXPECT_EQ(html.find("href="), std::string::npos);
    EXPECT_EQ(html.find("@import"), std::string::npos);
    // Byte-deterministic: the page carries no server state.
    EXPECT_EQ(service.handle(get("/dashboard")).body, html);
    EXPECT_EQ(renderDashboardHtml(), html);
}

TEST(HistoryServiceTest, SamplerVsRequestHammerIsRaceFree)
{
    if (!RequestObserver::kCompiledIn)
        GTEST_SKIP() << "obs compiled out";

    // TSan target: the background sampler ticking every millisecond
    // while requests hammer every surface it shares state with
    // (registry, caches, flight table, alert engine, history store).
    ServiceOptions opts;
    opts.evaluateAlerts = false;
    opts.history.cadenceNs = 1000000; // 1 ms
    CampaignService service(opts);
    std::string err;
    ASSERT_TRUE(service.start(&err)) << err; // spawns the sampler

    const char *const targets[] = {
        "/v1/series?name=service.requests:rate&tier=0",
        "/v1/series",
        "/v1/status",
        "/metrics",
        "/v1/alerts/history",
        "/dashboard",
        "/healthz",
    };
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&service, &targets, t] {
            for (int i = 0; i < 40; ++i) {
                const HttpResponse resp = service.handle(
                    get(targets[(t + i) % std::size(targets)]));
                EXPECT_EQ(resp.status, 200);
            }
        });
    }
    threads.emplace_back([&service] {
        const char *const body =
            "{\"config\":\"NoUPS\",\"trials\":2,\"seed\":7}";
        for (int i = 0; i < 3; ++i)
            EXPECT_EQ(service.handle(post("/v1/whatif", body)).status,
                      200);
    });
    for (std::thread &t : threads)
        t.join();
    service.stop();
    EXPECT_GT(service.history().stats().samples, 0u);
}
