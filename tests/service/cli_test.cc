/**
 * @file
 * CLI contract tests for the campaign executables: --help exits 0
 * and prints usage, an unknown flag exits nonzero with usage on
 * stderr, and a missing input file names the path in the error.
 * Binary locations arrive via compile definitions resolved from
 * $<TARGET_FILE:...> so the tests track the build layout.
 */

#include <cstdio>

#include <sys/wait.h>

#include <string>

#include <gtest/gtest.h>

namespace
{

struct RunResult
{
    int exitCode = -1;
    std::string output; // stdout + stderr interleaved
};

/** Run @p command with stderr folded into stdout. */
RunResult
run(const std::string &command)
{
    RunResult r;
    FILE *pipe = ::popen((command + " 2>&1").c_str(), "r");
    if (pipe == nullptr)
        return r;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, pipe)) > 0)
        r.output.append(buf, n);
    const int status = ::pclose(pipe);
    r.exitCode = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    return r;
}

} // namespace

TEST(CliContract, SweepHelpExitsZeroWithUsage)
{
    const RunResult r = run(std::string(BPSIM_CAMPAIGN_SWEEP_BIN) +
                            " --help");
    EXPECT_EQ(r.exitCode, 0) << r.output;
    EXPECT_NE(r.output.find("usage: campaign_sweep"),
              std::string::npos);
    EXPECT_NE(r.output.find("--deterministic"), std::string::npos);
}

TEST(CliContract, SweepUnknownFlagExitsNonzeroWithUsage)
{
    const RunResult r = run(std::string(BPSIM_CAMPAIGN_SWEEP_BIN) +
                            " --frobnicate");
    EXPECT_EQ(r.exitCode, 2) << r.output;
    EXPECT_NE(r.output.find("unknown argument \"--frobnicate\""),
              std::string::npos);
    EXPECT_NE(r.output.find("usage: campaign_sweep"),
              std::string::npos);
}

TEST(CliContract, SweepBatchFlagDocumentedAndAccepted)
{
    // --help after a valid --batch value proves the flag parsed
    // without running the (multi-second) sweep itself.
    const RunResult r = run(std::string(BPSIM_CAMPAIGN_SWEEP_BIN) +
                            " --batch 8 --help");
    EXPECT_EQ(r.exitCode, 0) << r.output;
    EXPECT_NE(r.output.find("usage: campaign_sweep"),
              std::string::npos);
    EXPECT_NE(r.output.find("--batch N"), std::string::npos);
    EXPECT_NE(r.output.find("bit-identical"), std::string::npos);
}

TEST(CliContract, SweepBatchZeroRejectedWithUsage)
{
    const RunResult r = run(std::string(BPSIM_CAMPAIGN_SWEEP_BIN) +
                            " --batch 0");
    EXPECT_EQ(r.exitCode, 2) << r.output;
    EXPECT_NE(r.output.find("--batch needs a positive integer"),
              std::string::npos);
    EXPECT_NE(r.output.find("usage: campaign_sweep"),
              std::string::npos);
}

TEST(CliContract, SweepBatchNonNumericRejectedWithUsage)
{
    for (const char *bad : {"banana", "8x", "-3", ""}) {
        const RunResult r = run(std::string(BPSIM_CAMPAIGN_SWEEP_BIN) +
                                " --batch \"" + bad + "\"");
        EXPECT_EQ(r.exitCode, 2) << "--batch " << bad << ": " << r.output;
        EXPECT_NE(r.output.find("usage: campaign_sweep"),
                  std::string::npos)
            << "--batch " << bad;
    }
}

TEST(CliContract, SweepBatchMissingValueRejected)
{
    const RunResult r = run(std::string(BPSIM_CAMPAIGN_SWEEP_BIN) +
                            " --batch");
    EXPECT_EQ(r.exitCode, 2) << r.output;
    EXPECT_NE(r.output.find("usage: campaign_sweep"),
              std::string::npos);
}

TEST(CliContract, MergeHelpExitsZeroWithUsage)
{
    const RunResult r = run(std::string(BPSIM_CAMPAIGN_MERGE_BIN) +
                            " --help");
    EXPECT_EQ(r.exitCode, 0) << r.output;
    EXPECT_NE(r.output.find("usage:"), std::string::npos);
    EXPECT_NE(r.output.find("campaign_merge merge"), std::string::npos);
}

TEST(CliContract, MergeUnknownFlagExitsNonzero)
{
    const RunResult r = run(std::string(BPSIM_CAMPAIGN_MERGE_BIN) +
                            " merge --frobnicate x.json");
    EXPECT_EQ(r.exitCode, 2) << r.output;
    EXPECT_NE(r.output.find("usage:"), std::string::npos);
}

TEST(CliContract, MergeMissingInputNamesThePath)
{
    const RunResult r =
        run(std::string(BPSIM_CAMPAIGN_MERGE_BIN) +
            " merge /nonexistent/shard42.json");
    EXPECT_NE(r.exitCode, 0);
    EXPECT_NE(r.output.find("/nonexistent/shard42.json"),
              std::string::npos)
        << r.output;
}

TEST(CliContract, ServerHelpExitsZeroWithUsage)
{
    const RunResult r = run(std::string(BPSIM_CAMPAIGN_SERVER_BIN) +
                            " --help");
    EXPECT_EQ(r.exitCode, 0) << r.output;
    EXPECT_NE(r.output.find("usage: campaign_server"),
              std::string::npos);
    EXPECT_NE(r.output.find("/v1/whatif"), std::string::npos);
}

TEST(CliContract, ServerUnknownFlagExitsNonzero)
{
    const RunResult r = run(std::string(BPSIM_CAMPAIGN_SERVER_BIN) +
                            " --frobnicate");
    EXPECT_EQ(r.exitCode, 2) << r.output;
    EXPECT_NE(r.output.find("unknown argument"), std::string::npos);
}

TEST(CliContract, ServerHelpDocumentsPersistenceFlags)
{
    const RunResult r = run(std::string(BPSIM_CAMPAIGN_SERVER_BIN) +
                            " --help");
    EXPECT_EQ(r.exitCode, 0) << r.output;
    EXPECT_NE(r.output.find("--cache-dir DIR"), std::string::npos);
    EXPECT_NE(r.output.find("--coalesce on|off"), std::string::npos);
    EXPECT_NE(r.output.find("--ckpt-max-bytes N"), std::string::npos);
}

TEST(CliContract, ServerPersistenceFlagsParseBeforeHelp)
{
    // --help after valid values proves the flags parsed without
    // actually starting a listener.
    for (const char *flags :
         {" --coalesce on", " --coalesce off",
          " --cache-dir /tmp/bpsim-cli-test-unused",
          " --ckpt-max-bytes 1024"}) {
        const RunResult r = run(std::string(BPSIM_CAMPAIGN_SERVER_BIN) +
                                flags + " --help");
        EXPECT_EQ(r.exitCode, 0) << flags << ": " << r.output;
        EXPECT_NE(r.output.find("usage: campaign_server"),
                  std::string::npos)
            << flags;
    }
}

TEST(CliContract, ServerCoalesceRejectsAnythingButOnOrOff)
{
    for (const char *bad : {"sometimes", "ON", "1", "true", ""}) {
        const RunResult r = run(std::string(BPSIM_CAMPAIGN_SERVER_BIN) +
                                " --coalesce \"" + bad + "\"");
        EXPECT_EQ(r.exitCode, 2) << "--coalesce " << bad << ": "
                                 << r.output;
        EXPECT_NE(r.output.find("usage: campaign_server"),
                  std::string::npos)
            << "--coalesce " << bad;
    }
}

TEST(CliContract, ServerCacheDirMissingValueRejected)
{
    const RunResult r = run(std::string(BPSIM_CAMPAIGN_SERVER_BIN) +
                            " --cache-dir");
    EXPECT_EQ(r.exitCode, 2) << r.output;
    EXPECT_NE(r.output.find("usage: campaign_server"),
              std::string::npos);
}

TEST(CliContract, ServerHelpDocumentsObservabilityFlags)
{
    const RunResult r = run(std::string(BPSIM_CAMPAIGN_SERVER_BIN) +
                            " --help");
    EXPECT_EQ(r.exitCode, 0) << r.output;
    EXPECT_NE(r.output.find("--access-log FILE"), std::string::npos);
    EXPECT_NE(r.output.find("--slow-ms N"), std::string::npos);
    EXPECT_NE(r.output.find("--request-trace FILE"), std::string::npos);
    EXPECT_NE(r.output.find("--request-obs on|off"), std::string::npos);
    EXPECT_NE(r.output.find("/v1/status"), std::string::npos);
}

TEST(CliContract, ServerObservabilityFlagsParseBeforeHelp)
{
    for (const char *flags :
         {" --access-log /tmp/bpsim-cli-test-unused.log",
          " --slow-ms 0", " --slow-ms 250", " --request-obs on",
          " --request-obs off",
          " --request-trace /tmp/bpsim-cli-test-unused.json"}) {
        const RunResult r = run(std::string(BPSIM_CAMPAIGN_SERVER_BIN) +
                                flags + " --help");
        EXPECT_EQ(r.exitCode, 0) << flags << ": " << r.output;
        EXPECT_NE(r.output.find("usage: campaign_server"),
                  std::string::npos)
            << flags;
    }
}

TEST(CliContract, ServerSlowMsRejectsBadValues)
{
    for (const char *bad : {"banana", "-5", "2x", ""}) {
        const RunResult r = run(std::string(BPSIM_CAMPAIGN_SERVER_BIN) +
                                " --slow-ms \"" + bad + "\"");
        EXPECT_EQ(r.exitCode, 2)
            << "--slow-ms " << bad << ": " << r.output;
        EXPECT_NE(r.output.find("--slow-ms needs a non-negative "
                                "integer"),
                  std::string::npos)
            << "--slow-ms " << bad;
        EXPECT_NE(r.output.find("usage: campaign_server"),
                  std::string::npos)
            << "--slow-ms " << bad;
    }
}

TEST(CliContract, ServerSlowMsMissingValueRejected)
{
    const RunResult r = run(std::string(BPSIM_CAMPAIGN_SERVER_BIN) +
                            " --slow-ms");
    EXPECT_EQ(r.exitCode, 2) << r.output;
    EXPECT_NE(r.output.find("usage: campaign_server"),
              std::string::npos);
}

TEST(CliContract, ServerAccessLogMissingValueRejected)
{
    const RunResult r = run(std::string(BPSIM_CAMPAIGN_SERVER_BIN) +
                            " --access-log");
    EXPECT_EQ(r.exitCode, 2) << r.output;
    EXPECT_NE(r.output.find("usage: campaign_server"),
              std::string::npos);
}

TEST(CliContract, ServerRequestObsRejectsAnythingButOnOrOff)
{
    for (const char *bad : {"maybe", "ON", "1", ""}) {
        const RunResult r = run(std::string(BPSIM_CAMPAIGN_SERVER_BIN) +
                                " --request-obs \"" + bad + "\"");
        EXPECT_EQ(r.exitCode, 2)
            << "--request-obs " << bad << ": " << r.output;
        EXPECT_NE(r.output.find("usage: campaign_server"),
                  std::string::npos)
            << "--request-obs " << bad;
    }
}

TEST(CliContract, ServerHelpDocumentsHistoryFlags)
{
    const RunResult r = run(std::string(BPSIM_CAMPAIGN_SERVER_BIN) +
                            " --help");
    EXPECT_EQ(r.exitCode, 0) << r.output;
    EXPECT_NE(r.output.find("--history on|off"), std::string::npos);
    EXPECT_NE(r.output.find("--history-cadence S"), std::string::npos);
    EXPECT_NE(r.output.find("--history-retention S"),
              std::string::npos);
    EXPECT_NE(r.output.find("/v1/series"), std::string::npos);
    EXPECT_NE(r.output.find("/v1/alerts/history"), std::string::npos);
    EXPECT_NE(r.output.find("/dashboard"), std::string::npos);
}

TEST(CliContract, ServerHistoryFlagsParseBeforeHelp)
{
    for (const char *flags :
         {" --history on", " --history off", " --history-cadence 0.5",
          " --history-retention 120",
          " --history off --history-cadence 2 --history-retention "
          "60"}) {
        const RunResult r = run(std::string(BPSIM_CAMPAIGN_SERVER_BIN) +
                                flags + " --help");
        EXPECT_EQ(r.exitCode, 0) << flags << ": " << r.output;
        EXPECT_NE(r.output.find("usage: campaign_server"),
                  std::string::npos)
            << flags;
    }
}

TEST(CliContract, ServerHistoryRejectsAnythingButOnOrOff)
{
    for (const char *bad : {"yes", "ON", "1", ""}) {
        const RunResult r = run(std::string(BPSIM_CAMPAIGN_SERVER_BIN) +
                                " --history \"" + bad + "\"");
        EXPECT_EQ(r.exitCode, 2)
            << "--history " << bad << ": " << r.output;
        EXPECT_NE(r.output.find("usage: campaign_server"),
                  std::string::npos)
            << "--history " << bad;
    }
}

TEST(CliContract, ServerHistoryCadenceAndRetentionRejectBadValues)
{
    for (const char *flag : {"--history-cadence",
                             "--history-retention"}) {
        for (const char *bad : {"0", "-1", "nan-ish", "2x", ""}) {
            const RunResult r =
                run(std::string(BPSIM_CAMPAIGN_SERVER_BIN) + " " +
                    flag + " \"" + bad + "\"");
            EXPECT_EQ(r.exitCode, 2)
                << flag << " " << bad << ": " << r.output;
            EXPECT_NE(r.output.find("positive number of seconds"),
                      std::string::npos)
                << flag << " " << bad;
            EXPECT_NE(r.output.find("usage: campaign_server"),
                      std::string::npos)
                << flag << " " << bad;
        }
        // Missing value entirely.
        const RunResult r =
            run(std::string(BPSIM_CAMPAIGN_SERVER_BIN) + " " + flag);
        EXPECT_EQ(r.exitCode, 2) << flag << ": " << r.output;
    }
}

TEST(CliContract, ServerUnwritableAccessLogFailsFast)
{
    const RunResult r =
        run(std::string(BPSIM_CAMPAIGN_SERVER_BIN) +
            " --access-log /nonexistent-dir/access.log --port 0");
    EXPECT_EQ(r.exitCode, 1) << r.output;
    EXPECT_NE(r.output.find("cannot open access log"),
              std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("/nonexistent-dir/access.log"),
              std::string::npos)
        << r.output;
}
