/**
 * @file
 * Single-flight coalescing tests: N identical concurrent what-ifs
 * must execute exactly one campaign, with every follower parked on
 * the leader's flight and answered with the same bytes. The
 * testBeforeCampaign hook holds the leader until every follower has
 * registered, so the assertions are deterministic rather than
 * racy-best-effort; the whole file runs under the service TSan job.
 */

#include "service/service.hh"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/obs.hh"

using namespace bpsim;
using namespace bpsim::service;

namespace
{

const char *const kBody =
    "{\"config\":\"NoUPS\",\"servers\":4,\"trials\":8,\"seed\":7,"
    "\"technique\":{\"kind\":\"throttle_sleep\",\"pstate\":5,"
    "\"serve_for_min\":10.0,\"low_power\":true}}";

HttpRequest
post(const std::string &body)
{
    HttpRequest req;
    req.method = "POST";
    req.target = "/v1/whatif";
    req.body = body;
    return req;
}

const std::string *
header(const HttpResponse &resp, const std::string &name)
{
    for (const auto &[k, v] : resp.headers)
        if (k == name)
            return &v;
    return nullptr;
}

std::uint64_t
counterDelta(const std::map<std::string, std::uint64_t> &before,
             const std::map<std::string, std::uint64_t> &after,
             const std::string &name)
{
    const auto b = before.find(name);
    const auto a = after.find(name);
    return (a == after.end() ? 0 : a->second) -
           (b == before.end() ? 0 : b->second);
}

} // namespace

TEST(CoalesceTest, IdenticalConcurrentRequestsShareOneExecution)
{
    constexpr int kThreads = 4;

    ServiceOptions opts;
    opts.evaluateAlerts = false;
    // Park the leader until every follower has joined the flight, so
    // "all followers coalesced" is a guarantee, not a race we usually
    // win. Armed once: only the first (and only) flight blocks.
    CampaignService *svc = nullptr;
    std::atomic<bool> armed{true};
    opts.testBeforeCampaign = [&svc, &armed] {
        if (!armed.exchange(false))
            return;
        while (svc->coalesceWaiters() < kThreads - 1)
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
    };
    CampaignService service(opts);
    svc = &service;

    const auto before = obs::Registry::global().counterSnapshot();
    std::vector<HttpResponse> responses(kThreads);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int i = 0; i < kThreads; ++i)
        threads.emplace_back([&service, &responses, i] {
            responses[static_cast<std::size_t>(i)] =
                service.handle(post(kBody));
        });
    for (auto &t : threads)
        t.join();
    const auto after = obs::Registry::global().counterSnapshot();

    // Exactly one campaign ran; every other request was coalesced.
    EXPECT_EQ(counterDelta(before, after, "service.whatif.campaigns"),
              1u);
    EXPECT_EQ(counterDelta(before, after, "service.coalesced"),
              static_cast<std::uint64_t>(kThreads - 1));
    EXPECT_EQ(service.cache().stats().misses, 1u);
    EXPECT_EQ(service.cache().stats().insertions, 1u);
    EXPECT_EQ(service.coalesceWaiters(), 0u);

    int misses = 0, coalesced = 0;
    for (const auto &resp : responses) {
        ASSERT_EQ(resp.status, 200) << resp.body;
        EXPECT_EQ(resp.body, responses[0].body);
        const std::string *tier = header(resp, "X-Bpsim-Cache");
        ASSERT_NE(tier, nullptr);
        if (*tier == "miss")
            ++misses;
        else if (*tier == "coalesced")
            ++coalesced;
    }
    EXPECT_EQ(misses, 1);
    EXPECT_EQ(coalesced, kThreads - 1);

    // And the flight is gone: a repeat is an ordinary cache hit.
    const HttpResponse repeat = service.handle(post(kBody));
    ASSERT_NE(header(repeat, "X-Bpsim-Cache"), nullptr);
    EXPECT_EQ(*header(repeat, "X-Bpsim-Cache"), "hit");
    EXPECT_EQ(repeat.body, responses[0].body);
}

TEST(CoalesceTest, DistinctRequestsNeverCoalesce)
{
    ServiceOptions opts;
    opts.evaluateAlerts = false;
    CampaignService service(opts);

    const char *const other =
        "{\"config\":\"NoUPS\",\"servers\":4,\"trials\":8,\"seed\":8,"
        "\"technique\":{\"kind\":\"throttle_sleep\",\"pstate\":5,"
        "\"serve_for_min\":10.0,\"low_power\":true}}";

    const auto before = obs::Registry::global().counterSnapshot();
    HttpResponse a, b;
    std::thread ta([&] { a = service.handle(post(kBody)); });
    std::thread tb([&] { b = service.handle(post(other)); });
    ta.join();
    tb.join();
    const auto after = obs::Registry::global().counterSnapshot();

    // Different canonical keys are different flights: both executed.
    EXPECT_EQ(counterDelta(before, after, "service.whatif.campaigns"),
              2u);
    EXPECT_EQ(counterDelta(before, after, "service.coalesced"), 0u);
    ASSERT_EQ(a.status, 200);
    ASSERT_EQ(b.status, 200);
    EXPECT_NE(a.body, b.body);
    EXPECT_NE(*header(a, "X-Bpsim-Key"), *header(b, "X-Bpsim-Key"));
}

TEST(CoalesceTest, CoalesceOffStillServesConcurrentRequestsFromCache)
{
    constexpr int kThreads = 4;
    ServiceOptions opts;
    opts.evaluateAlerts = false;
    opts.coalesce = false;
    CampaignService service(opts);

    const auto before = obs::Registry::global().counterSnapshot();
    std::vector<HttpResponse> responses(kThreads);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int i = 0; i < kThreads; ++i)
        threads.emplace_back([&service, &responses, i] {
            responses[static_cast<std::size_t>(i)] =
                service.handle(post(kBody));
        });
    for (auto &t : threads)
        t.join();
    const auto after = obs::Registry::global().counterSnapshot();

    // Without coalescing the campaign mutex still serializes the
    // requests, so exactly one simulates and the rest hit the cache —
    // but nothing was coalesced.
    EXPECT_EQ(counterDelta(before, after, "service.whatif.campaigns"),
              1u);
    EXPECT_EQ(counterDelta(before, after, "service.coalesced"), 0u);
    EXPECT_EQ(service.cache().stats().misses, 1u);
    EXPECT_EQ(service.cache().stats().hits,
              static_cast<std::uint64_t>(kThreads - 1));
    for (const auto &resp : responses) {
        ASSERT_EQ(resp.status, 200) << resp.body;
        EXPECT_EQ(resp.body, responses[0].body);
    }
}
