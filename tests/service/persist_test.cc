/**
 * @file
 * Persistent-cache tests: the DiskStore fault battery (truncation,
 * bit flips, checksum mismatch, foreign buildId, hash collision —
 * every one a miss, never a crash or a wrong answer) and the service
 * warm-restart round trip: a second CampaignService pointed at the
 * same --cache-dir serves the first's results from disk and resumes
 * from its spilled checkpoints.
 */

#include "service/service.hh"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <stdlib.h>

#include <gtest/gtest.h>

#include "obs/obs.hh"

using namespace bpsim;
using namespace bpsim::service;

namespace
{

/** A fresh temporary directory, removed (best effort) on scope exit. */
struct TempDir
{
    TempDir()
    {
        char tmpl[] = "/tmp/bpsim_persist_XXXXXX";
        path = ::mkdtemp(tmpl);
        EXPECT_FALSE(path.empty());
    }
    ~TempDir()
    {
        std::system(("rm -rf " + path).c_str());
    }
    std::string path;
};

std::string
readFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    std::ostringstream ss;
    ss << is.rdbuf();
    return ss.str();
}

void
writeFile(const std::string &path, const std::string &bytes)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os << bytes;
}

HttpRequest
post(const std::string &body)
{
    HttpRequest req;
    req.method = "POST";
    req.target = "/v1/whatif";
    req.body = body;
    return req;
}

const std::string *
header(const HttpResponse &resp, const std::string &name)
{
    for (const auto &[k, v] : resp.headers)
        if (k == name)
            return &v;
    return nullptr;
}

const char *const kBody =
    "{\"config\":\"NoUPS\",\"servers\":4,\"trials\":10,\"seed\":21,"
    "\"technique\":{\"kind\":\"throttle_sleep\",\"pstate\":5,"
    "\"serve_for_min\":10.0,\"low_power\":true}}";

} // namespace

TEST(DiskStoreTest, RoundTripsValuesAndCountsLoads)
{
    TempDir dir;
    obs::Registry reg;
    DiskStore store(dir.path, &reg);
    ASSERT_TRUE(store.enabled());

    const std::string key = "whatif.v1|some|canonical|key";
    const std::string value = "{\"answer\":42}\n";
    EXPECT_FALSE(store.load(key).has_value());
    ASSERT_TRUE(store.store(key, value));
    const auto back = store.load(key);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, value);
    EXPECT_EQ(reg.counter("service.disk.stores").value(), 1u);
    EXPECT_EQ(reg.counter("service.disk.loads").value(), 1u);
    EXPECT_EQ(reg.counter("service.disk.misses").value(), 1u);

    // Overwrite is atomic and last-writer-wins.
    ASSERT_TRUE(store.store(key, "v2"));
    EXPECT_EQ(*store.load(key), "v2");
}

TEST(DiskStoreTest, TruncatedFilesAreMisses)
{
    TempDir dir;
    obs::Registry reg;
    DiskStore store(dir.path, &reg);
    const std::string key = "k";
    ASSERT_TRUE(store.store(key, "a longer value with bytes in it"));
    const std::string intact = readFile(store.pathFor(key));
    ASSERT_FALSE(intact.empty());

    // Every truncation point — mid-header, mid-key, mid-value — is a
    // clean miss.
    for (std::size_t len = 0; len < intact.size();
         len += 7) {
        writeFile(store.pathFor(key), intact.substr(0, len));
        EXPECT_FALSE(store.load(key).has_value()) << "len=" << len;
    }
    EXPECT_GT(reg.counter("service.disk.corrupt").value(), 0u);

    // Restoring the original bytes restores the entry.
    writeFile(store.pathFor(key), intact);
    EXPECT_TRUE(store.load(key).has_value());
}

TEST(DiskStoreTest, BitFlipsAndChecksumMismatchesAreMisses)
{
    TempDir dir;
    obs::Registry reg;
    DiskStore store(dir.path, &reg);
    const std::string key = "flip-target";
    ASSERT_TRUE(store.store(key, "payload payload payload"));
    const std::string intact = readFile(store.pathFor(key));

    // Flip one bit at a spread of offsets (header, key and value all
    // get hit); each corruption must read as a miss.
    for (std::size_t off = 0; off < intact.size(); off += 11) {
        std::string bad = intact;
        bad[off] = static_cast<char>(bad[off] ^ 0x10);
        writeFile(store.pathFor(key), bad);
        EXPECT_FALSE(store.load(key).has_value()) << "off=" << off;
    }
    EXPECT_GT(reg.counter("service.disk.corrupt").value(), 0u);
}

TEST(DiskStoreTest, ForeignBuildEntriesAreMisses)
{
    TempDir dir;
    obs::Registry reg;
    DiskStore store(dir.path, &reg);
    const std::string key = "cross-build";
    ASSERT_TRUE(store.store(key, "value"));
    std::string bytes = readFile(store.pathFor(key));

    // Swap the build line for a same-length imposter: every checksum
    // still matches, but the producing binary does not.
    const std::string real = "build=" + std::string(buildId());
    const auto at = bytes.find(real);
    ASSERT_NE(at, std::string::npos);
    std::string fake = real;
    fake[6] = fake[6] == 'z' ? 'y' : 'z';
    bytes.replace(at, real.size(), fake);
    writeFile(store.pathFor(key), bytes);
    EXPECT_FALSE(store.load(key).has_value());
    EXPECT_GT(reg.counter("service.disk.corrupt").value(), 0u);
}

TEST(DiskStoreTest, HashCollisionDegradesToAMiss)
{
    TempDir dir;
    obs::Registry reg;
    DiskStore store(dir.path, &reg);
    // Simulate a 64-bit address collision by copying key A's file
    // onto key B's path: the entry is healthy, just not B's.
    const std::string a = "key-a", b = "key-b";
    ASSERT_TRUE(store.store(a, "value-of-a"));
    writeFile(store.pathFor(b), readFile(store.pathFor(a)));
    const std::uint64_t corrupt_before =
        reg.counter("service.disk.corrupt").value();
    EXPECT_FALSE(store.load(b).has_value());
    // A collision is a miss, not corruption.
    EXPECT_EQ(reg.counter("service.disk.corrupt").value(),
              corrupt_before);
    EXPECT_EQ(*store.load(a), "value-of-a");
}

TEST(DiskStoreTest, EmptyDirDisablesTheStore)
{
    obs::Registry reg;
    DiskStore store("", &reg);
    EXPECT_FALSE(store.enabled());
    EXPECT_FALSE(store.store("k", "v"));
    EXPECT_FALSE(store.load("k").has_value());
}

TEST(DiskStoreTest, UncreatableDirSelfDisables)
{
    obs::Registry reg;
    DiskStore store("/proc/definitely/not/creatable", &reg);
    EXPECT_FALSE(store.enabled());
    EXPECT_GE(reg.counter("service.disk.errors").value(), 1u);
}

TEST(PersistTest, WarmRestartServesResultsFromDisk)
{
    TempDir dir;
    std::string first_body, first_key;
    {
        ServiceOptions opts;
        opts.evaluateAlerts = false;
        opts.cacheDir = dir.path;
        CampaignService service(opts);
        const HttpResponse first = service.handle(post(kBody));
        ASSERT_EQ(first.status, 200) << first.body;
        EXPECT_EQ(*header(first, "X-Bpsim-Cache"), "miss");
        first_body = first.body;
        first_key = *header(first, "X-Bpsim-Key");
    } // "kill" the server

    ServiceOptions opts;
    opts.evaluateAlerts = false;
    opts.cacheDir = dir.path;
    CampaignService restarted(opts);
    const HttpResponse warm = restarted.handle(post(kBody));
    ASSERT_EQ(warm.status, 200) << warm.body;
    EXPECT_EQ(*header(warm, "X-Bpsim-Cache"), "hit");
    ASSERT_NE(header(warm, "X-Bpsim-Cache-Tier"), nullptr);
    EXPECT_EQ(*header(warm, "X-Bpsim-Cache-Tier"), "disk");
    EXPECT_EQ(warm.body, first_body);
    EXPECT_EQ(*header(warm, "X-Bpsim-Key"), first_key);

    // Promoted to memory: the next hit does not touch the disk.
    const HttpResponse memory = restarted.handle(post(kBody));
    EXPECT_EQ(*header(memory, "X-Bpsim-Cache-Tier"), "memory");
    EXPECT_EQ(memory.body, first_body);
}

TEST(PersistTest, WarmRestartResumesFromSpilledCheckpoints)
{
    TempDir dir;
    const char *const kBigger =
        "{\"config\":\"NoUPS\",\"servers\":4,\"trials\":30,\"seed\":21,"
        "\"technique\":{\"kind\":\"throttle_sleep\",\"pstate\":5,"
        "\"serve_for_min\":10.0,\"low_power\":true}}";
    {
        ServiceOptions opts;
        opts.evaluateAlerts = false;
        opts.cacheDir = dir.path;
        CampaignService service(opts);
        ASSERT_EQ(service.handle(post(kBody)).status, 200);
    }

    // The restarted server has an empty memory cache, but the bigger
    // budget resumes from the 10-trial checkpoint spilled to disk.
    ServiceOptions opts;
    opts.evaluateAlerts = false;
    opts.cacheDir = dir.path;
    CampaignService restarted(opts);
    const HttpResponse bigger = restarted.handle(post(kBigger));
    ASSERT_EQ(bigger.status, 200) << bigger.body;
    EXPECT_EQ(*header(bigger, "X-Bpsim-Cache"), "miss");
    ASSERT_NE(header(bigger, "X-Bpsim-Resumed-From"), nullptr);
    EXPECT_EQ(*header(bigger, "X-Bpsim-Resumed-From"), "10");

    // Still byte-identical to a cold service with no disk at all.
    ServiceOptions cold_opts;
    cold_opts.evaluateAlerts = false;
    CampaignService cold(cold_opts);
    const HttpResponse reference = cold.handle(post(kBigger));
    EXPECT_EQ(bigger.body, reference.body);
}

TEST(PersistTest, CorruptSpillFilesDegradeToRecomputation)
{
    TempDir dir;
    std::string first_body;
    {
        ServiceOptions opts;
        opts.evaluateAlerts = false;
        opts.cacheDir = dir.path;
        CampaignService service(opts);
        const HttpResponse first = service.handle(post(kBody));
        ASSERT_EQ(first.status, 200);
        first_body = first.body;
    }

    // Flip a bit in the middle of every spilled file.
    std::system(("for f in " + dir.path +
                 "/*.bpsim; do printf 'X' | dd of=\"$f\" bs=1 "
                 "seek=40 conv=notrunc 2>/dev/null; done")
                    .c_str());

    ServiceOptions opts;
    opts.evaluateAlerts = false;
    opts.cacheDir = dir.path;
    CampaignService restarted(opts);
    const HttpResponse recomputed = restarted.handle(post(kBody));
    ASSERT_EQ(recomputed.status, 200) << recomputed.body;
    // Corruption means a miss and a fresh campaign — with the same
    // deterministic bytes as the original answer.
    EXPECT_EQ(*header(recomputed, "X-Bpsim-Cache"), "miss");
    EXPECT_EQ(recomputed.body, first_body);
}
