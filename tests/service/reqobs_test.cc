/**
 * @file
 * Request-observability tests: byte-stable access-log lines under an
 * injected stepping clock, client-id echo/validation, per-endpoint/
 * per-phase latency histograms and their OpenMetrics label rendering,
 * the /v1/status surface (including deterministic in-flight phases
 * via the coalescing test hook), Chrome-trace span export, and the
 * headline determinism regression: what-if bodies byte-identical with
 * the layer enabled, disabled, or compiled out, across the cache
 * miss / hit / resumed / coalesced paths.
 */

#include "service/service.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/obs.hh"

using namespace bpsim;
using namespace bpsim::service;

namespace
{

/** A small fixed-budget scenario (identical to service_test's). */
const char *const kBody =
    "{\"config\":\"NoUPS\",\"trials\":6,\"seed\":11,"
    "\"technique\":{\"kind\":\"throttle_sleep\",\"pstate\":5,"
    "\"serve_for_min\":10.0,\"low_power\":true}}";
/** The same scenario with a larger budget (resumes from 6 trials). */
const char *const kBodyBig =
    "{\"config\":\"NoUPS\",\"trials\":12,\"seed\":11,"
    "\"technique\":{\"kind\":\"throttle_sleep\",\"pstate\":5,"
    "\"serve_for_min\":10.0,\"low_power\":true}}";
/** A distinct scenario for the coalescing path. */
const char *const kBodyCoal =
    "{\"config\":\"NoUPS\",\"trials\":8,\"seed\":13,"
    "\"technique\":{\"kind\":\"throttle_sleep\",\"pstate\":5,"
    "\"serve_for_min\":10.0,\"low_power\":true}}";

HttpRequest
post(const std::string &target, const std::string &body)
{
    HttpRequest req;
    req.method = "POST";
    req.target = target;
    req.body = body;
    return req;
}

HttpRequest
get(const std::string &target)
{
    HttpRequest req;
    req.method = "GET";
    req.target = target;
    return req;
}

const std::string *
header(const HttpResponse &resp, const std::string &name)
{
    for (const auto &[k, v] : resp.headers)
        if (k == name)
            return &v;
    return nullptr;
}

/** A deterministic clock: call k returns exactly k milliseconds. */
std::function<std::uint64_t()>
steppingClock()
{
    auto t = std::make_shared<std::atomic<std::uint64_t>>(0);
    return [t] { return (t->fetch_add(1) + 1) * 1000000ull; };
}

/** The reference body computed directly by the campaign layer. */
std::string
reference(const char *body)
{
    std::string err;
    const auto parsed = parseJson(body, &err);
    EXPECT_TRUE(parsed.has_value()) << err;
    const auto req = parseWhatIfRequest(*parsed, &err);
    EXPECT_TRUE(req.has_value()) << err;
    return runWhatIf(*req);
}

} // namespace

TEST(RequestObsTest, AccessLogLineIsByteStableUnderFakeClock)
{
    if (!RequestObserver::kCompiledIn)
        GTEST_SKIP() << "obs compiled out";

    std::ostringstream log;
    ServiceOptions opts;
    opts.evaluateAlerts = false;
    opts.reqobs.accessLogStream = &log;
    opts.reqobs.clock = steppingClock();
    CampaignService service(opts); // clock call 1 (boot)

    // Clock calls: 2 = admit, 3 = finish. No phase spans on a 404.
    const HttpResponse resp = service.handle(get("/nope"));
    EXPECT_EQ(resp.status, 404);
    const std::string expected =
        "{\"ts_us\":2000,\"id\":1,\"endpoint\":\"other\","
        "\"method\":\"GET\",\"status\":404,\"bytes_in\":0,"
        "\"bytes_out\":" +
        std::to_string(resp.body.size()) +
        ",\"total_us\":1000,\"phases\":{}}\n";
    EXPECT_EQ(log.str(), expected);
}

TEST(RequestObsTest, SlowRequestLogsFullPhaseSpans)
{
    if (!RequestObserver::kCompiledIn)
        GTEST_SKIP() << "obs compiled out";

    std::ostringstream log;
    ServiceOptions opts;
    opts.evaluateAlerts = false;
    opts.reqobs.accessLogStream = &log;
    opts.reqobs.clock = steppingClock();
    opts.reqobs.slowMs = 0; // every request is slow
    CampaignService service(opts); // clock call 1 (boot)

    // Clock calls: 2 = admit, 3 = serialize-span begin, 4 = healthz
    // uptime read, 5 = serialize-span end, 6 = finish.
    const HttpResponse resp = service.handle(get("/healthz"));
    EXPECT_EQ(resp.status, 200);
    const std::string expected =
        "{\"ts_us\":2000,\"id\":1,\"endpoint\":\"healthz\","
        "\"method\":\"GET\",\"status\":200,\"bytes_in\":0,"
        "\"bytes_out\":" +
        std::to_string(resp.body.size()) +
        ",\"total_us\":4000,\"phases\":{\"serialize\":2000},"
        "\"slow\":true,\"spans\":[{\"phase\":\"serialize\","
        "\"begin_us\":1000,\"end_us\":3000}]}\n";
    EXPECT_EQ(log.str(), expected);
    EXPECT_EQ(service.requestObserver().slowRequests(), 1u);
}

TEST(RequestObsTest, RequestIdEchoedAndClientIdValidated)
{
    std::ostringstream log;
    ServiceOptions opts;
    opts.evaluateAlerts = false;
    opts.reqobs.accessLogStream = &log;
    CampaignService service(opts);

    // Server-assigned ids are monotonic decimals.
    const HttpResponse first = service.handle(get("/healthz"));
    ASSERT_NE(header(first, "X-Bpsim-Request-Id"), nullptr);
    EXPECT_EQ(*header(first, "X-Bpsim-Request-Id"), "1");
    const HttpResponse second = service.handle(get("/healthz"));
    EXPECT_EQ(*header(second, "X-Bpsim-Request-Id"), "2");

    // A well-formed client id is echoed back (and logged).
    HttpRequest req = get("/healthz");
    req.headers.emplace_back("x-bpsim-request-id", "req_42.trace-A");
    const HttpResponse echoed = service.handle(req);
    EXPECT_EQ(*header(echoed, "X-Bpsim-Request-Id"), "req_42.trace-A");

    // Malformed ids (bad chars, too long) fall back to the numeric id.
    HttpRequest bad = get("/healthz");
    bad.headers.emplace_back("x-bpsim-request-id", "no spaces!");
    EXPECT_EQ(*header(service.handle(bad), "X-Bpsim-Request-Id"), "4");
    HttpRequest longid = get("/healthz");
    longid.headers.emplace_back("x-bpsim-request-id",
                                std::string(65, 'a'));
    EXPECT_EQ(*header(service.handle(longid), "X-Bpsim-Request-Id"),
              "5");

    if (RequestObserver::kCompiledIn) {
        EXPECT_NE(log.str().find("\"client_id\":\"req_42.trace-A\""),
                  std::string::npos);
        EXPECT_EQ(log.str().find("no spaces!"), std::string::npos);
    }
}

TEST(RequestObsTest, LatencyHistogramsPerEndpointPhaseStatus)
{
    if (!RequestObserver::kCompiledIn)
        GTEST_SKIP() << "obs compiled out";

    obs::Registry reg;
    ServiceOptions opts;
    opts.evaluateAlerts = false;
    opts.reqobs.registry = &reg;
    CampaignService service(opts);

    EXPECT_EQ(service.handle(post("/v1/whatif", kBody)).status, 200);
    EXPECT_EQ(service.handle(post("/v1/whatif", kBody)).status, 200);
    EXPECT_EQ(service.handle(get("/healthz")).status, 200);
    EXPECT_EQ(service.handle(get("/nope")).status, 404);

    const auto hists = reg.histogramSnapshot();
    const auto count = [&hists](const std::string &name) {
        for (const auto &[n, h] : hists)
            if (n == name)
                return h.count();
        return std::uint64_t{0};
    };
    EXPECT_EQ(count(requestMetricName(Endpoint::WhatIf, "total", 200)),
              2u);
    // Both what-ifs looked in the memory cache; only the miss ran a
    // campaign.
    EXPECT_EQ(
        count(requestMetricName(Endpoint::WhatIf, "cache_mem", 200)),
        2u);
    EXPECT_EQ(
        count(requestMetricName(Endpoint::WhatIf, "campaign", 200)),
        1u);
    EXPECT_EQ(
        count(requestMetricName(Endpoint::WhatIf, "parse", 200)), 2u);
    EXPECT_EQ(
        count(requestMetricName(Endpoint::Healthz, "total", 200)), 1u);
    EXPECT_EQ(count(requestMetricName(Endpoint::Other, "total", 404)),
              1u);

    // The '|'-encoded names render as one OpenMetrics family with
    // proper label sets (the PR-4 cumulative-bucket form).
    std::ostringstream om;
    obs::writeOpenMetrics(om, reg, {{"build", "test"}});
    const std::string text = om.str();
    EXPECT_NE(
        text.find("# TYPE bpsim_service_request_seconds histogram"),
        std::string::npos)
        << text;
    EXPECT_NE(text.find("bpsim_service_request_seconds_bucket{"
                        "endpoint=\"whatif\",phase=\"total\","
                        "status=\"200\",build=\"test\",le=\""),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("bpsim_service_request_seconds_count{"
                        "endpoint=\"whatif\",phase=\"campaign\","
                        "status=\"200\",build=\"test\"} 1"),
              std::string::npos)
        << text;
    // One TYPE line for the whole family, not one per label set.
    std::size_t types = 0;
    for (std::size_t at = 0;
         (at = text.find("# TYPE bpsim_service_request_seconds ",
                         at)) != std::string::npos;
         ++at)
        ++types;
    EXPECT_EQ(types, 1u);
}

TEST(RequestObsTest, WhatIfBodiesByteIdenticalWithLayerOnOffAcrossPaths)
{
    // The determinism regression the tentpole promises: run the four
    // serving paths (miss, memory hit, checkpoint resume, coalesced)
    // with the layer enabled and disabled; every body must match the
    // campaign layer's direct answer. Compiled out (BPSIM_OBS=OFF)
    // this test still runs and pins the same equalities.
    const std::string ref6 = reference(kBody);
    const std::string ref12 = reference(kBodyBig);
    const std::string refCoal = reference(kBodyCoal);

    struct Paths
    {
        std::string miss, hit, resumed;
        std::string resumedFrom;
        std::vector<std::string> coalesced;
    };
    const auto runPaths = [&](bool enabled) {
        ServiceOptions opts;
        opts.evaluateAlerts = false;
        opts.reqobs.enabled = enabled;
        opts.reqobs.slowMs = 0; // exercise the slow-span writer too
        std::ostringstream log;
        opts.reqobs.accessLogStream = enabled ? &log : nullptr;
        CampaignService *svc = nullptr;
        std::atomic<bool> armed{false};
        opts.testBeforeCampaign = [&svc, &armed] {
            if (!armed.exchange(false))
                return;
            while (svc->coalesceWaiters() < 1)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
        };
        CampaignService service(opts);
        svc = &service;

        Paths out;
        out.miss = service.handle(post("/v1/whatif", kBody)).body;
        out.hit = service.handle(post("/v1/whatif", kBody)).body;
        const HttpResponse big =
            service.handle(post("/v1/whatif", kBodyBig));
        out.resumed = big.body;
        const std::string *from = header(big, "X-Bpsim-Resumed-From");
        out.resumedFrom = from != nullptr ? *from : "";

        // Two identical concurrent requests; the leader is held until
        // the follower has parked, so one of them is coalesced.
        armed.store(true);
        out.coalesced.resize(2);
        std::thread a([&service, &out] {
            out.coalesced[0] =
                service.handle(post("/v1/whatif", kBodyCoal)).body;
        });
        std::thread b([&service, &out] {
            out.coalesced[1] =
                service.handle(post("/v1/whatif", kBodyCoal)).body;
        });
        a.join();
        b.join();

        if (enabled && RequestObserver::kCompiledIn) {
            EXPECT_GT(service.requestObserver().accessLogLines(), 0u);
        } else {
            EXPECT_EQ(service.requestObserver().accessLogLines(), 0u);
        }
        return out;
    };

    const Paths on = runPaths(true);
    const Paths off = runPaths(false);

    EXPECT_EQ(on.miss, ref6);
    EXPECT_EQ(off.miss, ref6);
    EXPECT_EQ(on.hit, ref6);
    EXPECT_EQ(off.hit, ref6);
    EXPECT_EQ(on.resumed, ref12);
    EXPECT_EQ(off.resumed, ref12);
    EXPECT_EQ(on.resumedFrom, "6");
    EXPECT_EQ(off.resumedFrom, "6");
    EXPECT_EQ(on.coalesced[0], refCoal);
    EXPECT_EQ(on.coalesced[1], refCoal);
    EXPECT_EQ(off.coalesced[0], refCoal);
    EXPECT_EQ(off.coalesced[1], refCoal);
}

TEST(RequestObsTest, StatusReportsInflightPhasesAndCaches)
{
    ServiceOptions opts;
    opts.evaluateAlerts = false;
    CampaignService *svc = nullptr;
    std::atomic<bool> armed{false};
    std::atomic<bool> release{false};
    opts.testBeforeCampaign = [&svc, &armed, &release] {
        if (!armed.exchange(false))
            return;
        while (svc->coalesceWaiters() < 1 || !release.load())
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
    };
    CampaignService service(opts);
    svc = &service;

    // Hold a leader mid-flight with one parked follower, then look at
    // /v1/status from the outside: both must show as in-flight whatif
    // requests (leader past parse, follower waiting).
    armed.store(true);
    std::thread leader([&service] {
        EXPECT_EQ(service.handle(post("/v1/whatif", kBody)).status,
                  200);
    });
    std::thread follower([&service] {
        EXPECT_EQ(service.handle(post("/v1/whatif", kBody)).status,
                  200);
    });
    while (service.coalesceWaiters() < 1)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));

    const HttpResponse status = service.handle(get("/v1/status"));
    EXPECT_EQ(status.status, 200);
    std::string err;
    const auto doc = parseJson(status.body, &err);
    ASSERT_TRUE(doc.has_value()) << err << "\n" << status.body;
    EXPECT_EQ(doc->at("status").asString(), "ok");
    EXPECT_EQ(doc->at("buildId").asString(), buildId());
    EXPECT_GE(doc->at("uptime_seconds").asDouble(), 0.0);
    EXPECT_EQ(doc->at("flight_depth").asUint(), 1u);
    EXPECT_EQ(doc->at("coalesce_waiters").asUint(), 1u);

    const JsonValue &inflight = doc->at("inflight");
    // Leader + follower + this /v1/status request itself.
    ASSERT_EQ(inflight.size(), 3u) << status.body;
    int whatifs = 0, waiting = 0, statuses = 0;
    for (std::size_t i = 0; i < inflight.size(); ++i) {
        const JsonValue &r = inflight.item(i);
        EXPECT_GT(r.at("id").asUint(), 0u);
        EXPECT_GE(r.at("age_seconds").asDouble(), 0.0);
        const std::string ep = r.at("endpoint").asString();
        const std::string phase = r.at("phase").asString();
        if (ep == "whatif") {
            ++whatifs;
            if (phase == "wait")
                ++waiting;
        } else if (ep == "status") {
            ++statuses;
            EXPECT_EQ(phase, "serialize");
        }
    }
    EXPECT_EQ(whatifs, 2);
    EXPECT_EQ(waiting, 1);
    EXPECT_EQ(statuses, 1);

    release.store(true);
    leader.join();
    follower.join();

    // Drained: only the probing request itself is ever in flight now,
    // and the cache holds the one computed result.
    const HttpResponse after = service.handle(get("/v1/status"));
    const auto doc2 = parseJson(after.body, &err);
    ASSERT_TRUE(doc2.has_value()) << err;
    EXPECT_EQ(doc2->at("flight_depth").asUint(), 0u);
    EXPECT_EQ(doc2->at("coalesce_waiters").asUint(), 0u);
    EXPECT_EQ(doc2->at("inflight").size(), 1u);
    const JsonValue &cache = doc2->at("cache");
    EXPECT_EQ(cache.at("results").at("entries").asUint(), 1u);
    EXPECT_FALSE(cache.at("disk").at("enabled").asBool());
    // Leader, follower and the first status probe have completed; the
    // probing request itself is still in flight while it serializes.
    if (RequestObserver::kCompiledIn) {
        EXPECT_GE(doc2->at("requests").at("observed").asUint(), 3u);
    }
}

TEST(RequestObsTest, StatusReportsDiskTier)
{
    const std::string dir =
        testing::TempDir() + "bpsim_reqobs_disk_XXXXXX";
    std::vector<char> tmpl(dir.begin(), dir.end());
    tmpl.push_back('\0');
    ASSERT_NE(::mkdtemp(tmpl.data()), nullptr);
    ServiceOptions opts;
    opts.evaluateAlerts = false;
    opts.cacheDir = tmpl.data();
    CampaignService service(opts);

    EXPECT_EQ(service.handle(post("/v1/whatif", kBody)).status, 200);
    const HttpResponse status = service.handle(get("/v1/status"));
    std::string err;
    const auto doc = parseJson(status.body, &err);
    ASSERT_TRUE(doc.has_value()) << err;
    const JsonValue &disk = doc->at("cache").at("disk");
    EXPECT_TRUE(disk.at("enabled").asBool());
    EXPECT_EQ(disk.at("dir").asString(), std::string(tmpl.data()));
    // One result file + one checkpoint file.
    EXPECT_EQ(disk.at("files").asUint(), 2u);
}

TEST(RequestObsTest, TraceExportIsWellFormedChromeJson)
{
    if (!RequestObserver::kCompiledIn)
        GTEST_SKIP() << "obs compiled out";

    ServiceOptions opts;
    opts.evaluateAlerts = false;
    opts.reqobs.clock = steppingClock();
    CampaignService service(opts);

    EXPECT_EQ(service.handle(post("/v1/whatif", kBody)).status, 200);
    EXPECT_EQ(service.handle(get("/healthz")).status, 200);
    EXPECT_EQ(service.handle(get("/nope")).status, 404);

    std::ostringstream os;
    service.requestObserver().writeTrace(os);
    std::string err;
    const auto doc = parseJson(os.str(), &err);
    ASSERT_TRUE(doc.has_value()) << err << "\n" << os.str();
    const JsonValue &events = doc->at("traceEvents");
    ASSERT_GT(events.size(), 0u);
    int requests = 0, phases = 0, whatif_requests = 0;
    bool saw_campaign_phase = false;
    for (std::size_t i = 0; i < events.size(); ++i) {
        const JsonValue &e = events.item(i);
        EXPECT_EQ(e.at("ph").asString(), "X");
        const std::string cat = e.at("cat").asString();
        if (cat == "request") {
            ++requests;
            if (e.at("name").asString() == "whatif") {
                ++whatif_requests;
                EXPECT_EQ(e.at("args").at("cache").asString(), "miss");
            }
        } else if (cat == "phase") {
            ++phases;
            if (e.at("name").asString() == "campaign")
                saw_campaign_phase = true;
        }
    }
    EXPECT_EQ(requests, 3);
    EXPECT_EQ(whatif_requests, 1);
    EXPECT_GT(phases, 0);
    EXPECT_TRUE(saw_campaign_phase);
    EXPECT_EQ(doc->at("metadata").at("build").asString(), buildId());
}

TEST(RequestObsTest, DisabledLayerStillAssignsIdsAndServesStatus)
{
    ServiceOptions opts;
    opts.evaluateAlerts = false;
    opts.reqobs.enabled = false;
    CampaignService service(opts);

    const HttpResponse resp = service.handle(get("/healthz"));
    ASSERT_NE(header(resp, "X-Bpsim-Request-Id"), nullptr);
    EXPECT_EQ(*header(resp, "X-Bpsim-Request-Id"), "1");
    EXPECT_EQ(service.requestObserver().completedRequests(), 0u);

    const HttpResponse status = service.handle(get("/v1/status"));
    std::string err;
    const auto doc = parseJson(status.body, &err);
    ASSERT_TRUE(doc.has_value()) << err;
    EXPECT_FALSE(
        doc->at("requests").at("observability_active").asBool());
    EXPECT_EQ(doc->at("inflight").size(), 1u);
}

TEST(RequestObsTest, AccessLogFileAppendsParseableJsonLines)
{
    if (!RequestObserver::kCompiledIn)
        GTEST_SKIP() << "obs compiled out";

    const std::string path =
        testing::TempDir() + "bpsim_reqobs_access.log";
    std::remove(path.c_str());
    {
        ServiceOptions opts;
        opts.evaluateAlerts = false;
        opts.reqobs.accessLogPath = path;
        CampaignService service(opts);
        EXPECT_EQ(service.handle(get("/healthz")).status, 200);
        EXPECT_EQ(service.handle(get("/nope")).status, 404);
        EXPECT_TRUE(service.requestObserver().logOpen());
        EXPECT_EQ(service.requestObserver().accessLogLines(), 2u);
    }
    std::ifstream is(path);
    ASSERT_TRUE(is.good());
    std::string line;
    std::size_t lines = 0;
    while (std::getline(is, line)) {
        ++lines;
        std::string err;
        const auto doc = parseJson(line, &err);
        ASSERT_TRUE(doc.has_value()) << err << "\n" << line;
        EXPECT_NE(doc->find("id"), nullptr);
        EXPECT_NE(doc->find("endpoint"), nullptr);
        EXPECT_NE(doc->find("total_us"), nullptr);
    }
    EXPECT_EQ(lines, 2u);
    std::remove(path.c_str());
}
