/**
 * @file
 * HTTP front-end tests: the request parser and response renderer
 * (pure functions, no network) plus one real loopback round trip
 * through HttpServer's accept loop and connection threads.
 */

#include "service/http.hh"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

using namespace bpsim::service;

namespace
{

/** One blocking loopback HTTP exchange: connect, send, read to EOF. */
std::string
roundTrip(std::uint16_t port, const std::string &request)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0) << std::strerror(errno);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof addr),
              0)
        << std::strerror(errno);
    std::size_t off = 0;
    while (off < request.size()) {
        const ssize_t n =
            ::send(fd, request.data() + off, request.size() - off, 0);
        EXPECT_GT(n, 0);
        off += static_cast<std::size_t>(n);
    }
    ::shutdown(fd, SHUT_WR);
    std::string reply;
    char buf[4096];
    ssize_t n;
    while ((n = ::recv(fd, buf, sizeof buf, 0)) > 0)
        reply.append(buf, static_cast<std::size_t>(n));
    ::close(fd);
    return reply;
}

} // namespace

TEST(HttpParse, RequestLineHeadersAndBody)
{
    HttpRequest req;
    std::string err;
    ASSERT_TRUE(parseHttpRequest("POST /v1/whatif HTTP/1.1\r\n"
                                 "Content-Type: application/json\r\n"
                                 "Content-Length: 2\r\n"
                                 "\r\n"
                                 "{}",
                                 req, &err))
        << err;
    EXPECT_EQ(req.method, "POST");
    EXPECT_EQ(req.target, "/v1/whatif");
    EXPECT_EQ(req.version, "HTTP/1.1");
    EXPECT_EQ(req.body, "{}");
    ASSERT_EQ(req.headers.size(), 2u);
    // Names are lowercased on parse; values keep their bytes.
    EXPECT_EQ(req.headers[0].first, "content-type");
    EXPECT_EQ(req.headers[0].second, "application/json");
}

TEST(HttpParse, HeaderLookupIsCaseInsensitive)
{
    HttpRequest req;
    ASSERT_TRUE(parseHttpRequest(
        "GET / HTTP/1.1\r\nX-Custom-Header:  spaced value \r\n\r\n",
        req));
    const std::string *v = req.header("x-cUSTOM-hEADER");
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(*v, "spaced value"); // surrounding whitespace trimmed
    EXPECT_EQ(req.header("absent"), nullptr);
}

TEST(HttpParse, RejectsMalformedInput)
{
    HttpRequest req;
    std::string err;
    // No blank line terminating the head.
    EXPECT_FALSE(parseHttpRequest("GET / HTTP/1.1\r\n", req, &err));
    EXPECT_FALSE(err.empty());
    // Request line with too few tokens.
    EXPECT_FALSE(parseHttpRequest("GET /\r\n\r\n", req, &err));
    // Version must be HTTP/*.
    EXPECT_FALSE(parseHttpRequest("GET / SPDY/1\r\n\r\n", req, &err));
    // Header field without a colon.
    EXPECT_FALSE(
        parseHttpRequest("GET / HTTP/1.1\r\nbogus\r\n\r\n", req, &err));
}

TEST(HttpRender, ResponseIsByteStable)
{
    HttpResponse r;
    r.status = 200;
    r.body = "hi";
    r.headers.emplace_back("X-Bpsim-Cache", "hit");
    EXPECT_EQ(renderHttpResponse(r),
              "HTTP/1.1 200 OK\r\n"
              "Content-Type: application/json; charset=utf-8\r\n"
              "Content-Length: 2\r\n"
              "X-Bpsim-Cache: hit\r\n"
              "Connection: close\r\n"
              "\r\n"
              "hi");
}

TEST(HttpRender, ErrorBodyEscapesQuotes)
{
    const HttpResponse r = httpError(400, "bad \"field\"");
    EXPECT_EQ(r.status, 400);
    EXPECT_EQ(r.body, "{\"error\":\"bad \\\"field\\\"\"}\n");
}

TEST(HttpRender, StatusTextCoversServiceCodes)
{
    EXPECT_STREQ(httpStatusText(200), "OK");
    EXPECT_STREQ(httpStatusText(400), "Bad Request");
    EXPECT_STREQ(httpStatusText(404), "Not Found");
    EXPECT_STREQ(httpStatusText(405), "Method Not Allowed");
    EXPECT_STREQ(httpStatusText(413), "Payload Too Large");
    EXPECT_STREQ(httpStatusText(500), "Internal Server Error");
}

TEST(HttpServerTest, LoopbackRoundTrip)
{
    HttpServer server([](const HttpRequest &req) {
        HttpResponse r;
        r.body = req.method + " " + req.target + " [" + req.body + "]";
        return r;
    });
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;
    ASSERT_NE(server.port(), 0); // port 0 resolved to the kernel pick

    const std::string reply =
        roundTrip(server.port(), "POST /echo HTTP/1.1\r\n"
                                 "Content-Length: 4\r\n"
                                 "\r\n"
                                 "ping");
    EXPECT_NE(reply.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
    EXPECT_NE(reply.find("POST /echo [ping]"), std::string::npos);

    // A second connection on the same listener.
    const std::string reply2 =
        roundTrip(server.port(), "GET /again HTTP/1.1\r\n\r\n");
    EXPECT_NE(reply2.find("GET /again []"), std::string::npos);

    server.stop();
    EXPECT_FALSE(server.running());
    server.stop(); // idempotent
}

TEST(HttpServerTest, HandlerExceptionBecomes500)
{
    HttpServer server([](const HttpRequest &) -> HttpResponse {
        throw std::runtime_error("boom");
    });
    ASSERT_TRUE(server.start());
    const std::string reply =
        roundTrip(server.port(), "GET / HTTP/1.1\r\n\r\n");
    EXPECT_NE(reply.find("HTTP/1.1 500 Internal Server Error"),
              std::string::npos);
    EXPECT_NE(reply.find("boom"), std::string::npos);
    server.stop();
}

TEST(HttpServerTest, OversizedBodyIsRejected)
{
    HttpServerOptions opts;
    opts.maxBodyBytes = 16;
    HttpServer server(
        [](const HttpRequest &) { return HttpResponse{}; }, opts);
    ASSERT_TRUE(server.start());
    const std::string reply = roundTrip(
        server.port(),
        "POST / HTTP/1.1\r\nContent-Length: 1000000\r\n\r\n");
    EXPECT_NE(reply.find("HTTP/1.1 413 Payload Too Large"),
              std::string::npos);
    server.stop();
}
