/**
 * @file
 * Alert-engine tests: the dwell + hysteresis state machine on a
 * synthetic battery-charge trace (golden, byte-stable), the
 * counter-ratio and incident-residual sources, and the gauge /
 * OpenMetrics / JSON exports.
 */

#include "service/alerts.hh"

#include <sstream>

#include <gtest/gtest.h>

#include "obs/export.hh"

using namespace bpsim;
using namespace bpsim::service;

namespace
{

/** A Below rule with exact-binary thresholds so %.17g prints short. */
AlertRule
socRule()
{
    AlertRule r;
    r.name = "soc_low";
    r.source = AlertSource::Signal;
    r.signal = obs::SignalId::BatterySoc;
    r.op = AlertOp::Below;
    r.warn = 0.5;
    r.crit = 0.25;
    r.lookbackSec = 60.0;
    r.clearMargin = 0.0625;
    return r;
}

obs::SeriesPoint
at(double sec, double v)
{
    return {fromSeconds(sec), v};
}

} // namespace

TEST(AlertSignalRule, GoldenWarnCritClearedTransitions)
{
    // A battery draining through warn into critical, then recharging
    // back out: the canonical outage-and-recovery shape.
    const std::vector<obs::SeriesPoint> points = {
        at(0, 0.75),     // healthy
        at(60, 0.375),   // breaches warn; dwell clock starts
        at(120, 0.375),  // dwell met -> Warning
        at(180, 0.125),  // breaches crit; dwell clock starts
        at(240, 0.125),  // dwell met -> Critical
        at(300, 0.28125),// above crit but inside hysteresis: holds
        at(360, 0.375),  // recovered past crit margin -> Warning
        at(420, 0.625),  // recovered past warn margin -> Clear
    };
    AlertState final_state = AlertState::Critical;
    const auto events =
        evaluateSignalRule(socRule(), 3, points, &final_state);

    EXPECT_EQ(final_state, AlertState::Clear);
    // The byte-stable golden transcript the service's event log pins.
    EXPECT_EQ(formatAlertEvents(events),
              "soc_low trial=3 t=120000000 clear->warning value=0.375\n"
              "soc_low trial=3 t=240000000 warning->critical "
              "value=0.125\n"
              "soc_low trial=3 t=360000000 critical->warning "
              "value=0.375\n"
              "soc_low trial=3 t=420000000 warning->clear "
              "value=0.625\n");
}

TEST(AlertSignalRule, BlipShorterThanDwellNeverFires)
{
    // One sample below warn, recovered before the 60 s dwell elapses.
    const std::vector<obs::SeriesPoint> points = {
        at(0, 0.75), at(30, 0.375), at(59, 0.75), at(120, 0.75)};
    AlertState final_state = AlertState::Critical;
    const auto events =
        evaluateSignalRule(socRule(), 0, points, &final_state);
    EXPECT_TRUE(events.empty());
    EXPECT_EQ(final_state, AlertState::Clear);
}

TEST(AlertSignalRule, HoveringAtThresholdCannotFlap)
{
    // Oscillating across warn but never past the clear margin: one
    // firing, no clears.
    const std::vector<obs::SeriesPoint> points = {
        at(0, 0.4375),  at(60, 0.4375), // dwell met -> Warning
        at(120, 0.5),   // at warn, not recovered (needs >= 0.5625)
        at(180, 0.4375), at(240, 0.53125), at(300, 0.4375)};
    const auto events = evaluateSignalRule(socRule(), 0, points);
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].to, AlertState::Warning);
}

TEST(AlertEngine, CounterRatioLadder)
{
    AlertRule r;
    r.name = "dg_fail";
    r.source = AlertSource::CounterRatio;
    r.numerator = "dg.starts_failed";
    r.denominator = "dg.starts";
    r.minDenominator = 10;
    r.op = AlertOp::Above;
    r.warn = 0.05;
    r.crit = 0.25;
    r.clearMargin = 0.01;
    AlertEngine engine({r});

    // Below the denominator floor: no evidence, no alert.
    std::map<std::string, std::uint64_t> counters = {
        {"dg.starts", 5}, {"dg.starts_failed", 5}};
    EXPECT_TRUE(engine.evaluate(nullptr, &counters, nullptr).empty());
    EXPECT_EQ(engine.status("dg_fail")->state, AlertState::Clear);

    // 30% failures: straight to critical.
    counters = {{"dg.starts", 100}, {"dg.starts_failed", 30}};
    auto fired = engine.evaluate(nullptr, &counters, nullptr);
    ASSERT_EQ(fired.size(), 1u);
    EXPECT_EQ(fired[0].from, AlertState::Clear);
    EXPECT_EQ(fired[0].to, AlertState::Critical);
    EXPECT_EQ(fired[0].value, 0.3);

    // Recovered past the crit margin but still above warn: Warning.
    counters = {{"dg.starts", 100}, {"dg.starts_failed", 10}};
    fired = engine.evaluate(nullptr, &counters, nullptr);
    ASSERT_EQ(fired.size(), 1u);
    EXPECT_EQ(fired[0].to, AlertState::Warning);

    // Fully recovered: Clear; three transitions on the books.
    counters = {{"dg.starts", 100}, {"dg.starts_failed", 1}};
    fired = engine.evaluate(nullptr, &counters, nullptr);
    ASSERT_EQ(fired.size(), 1u);
    EXPECT_EQ(fired[0].to, AlertState::Clear);
    EXPECT_EQ(engine.status("dg_fail")->transitions, 3u);
    EXPECT_EQ(engine.eventLog().size(), 3u);
}

TEST(AlertEngine, IncidentResidualSource)
{
    AlertRule r;
    r.name = "residual";
    r.source = AlertSource::IncidentResidual;
    r.op = AlertOp::Above;
    r.warn = 1e-3;
    r.crit = 1.0;
    AlertEngine engine({r});

    obs::IncidentReport report;
    obs::TrialForensics tf;
    tf.trial = 0;
    tf.reportedDowntimeMin = 0.5; // nothing attributed -> residual 0.5
    report.trials.push_back(tf);
    auto fired = engine.evaluate(nullptr, nullptr, &report);
    ASSERT_EQ(fired.size(), 1u);
    EXPECT_EQ(fired[0].to, AlertState::Warning);

    report.trials[0].reportedDowntimeMin = 2.0;
    fired = engine.evaluate(nullptr, nullptr, &report);
    ASSERT_EQ(fired.size(), 1u);
    EXPECT_EQ(fired[0].to, AlertState::Critical);

    report.trials[0].reportedDowntimeMin = 0.0;
    fired = engine.evaluate(nullptr, nullptr, &report);
    ASSERT_EQ(fired.size(), 1u);
    EXPECT_EQ(fired[0].to, AlertState::Clear);
}

TEST(AlertEngine, SignalRulesWalkStoreChannels)
{
    AlertEngine engine({socRule()});
    // Two trials: one drains into warning, one stays healthy. The
    // rule's post-run state is the worst channel-final state.
    std::vector<obs::SignalSample> rows;
    for (int i = 0; i < 4; ++i)
        rows.push_back({0, fromSeconds(60.0 * i),
                        obs::SignalId::BatterySoc, 0.375});
    for (int i = 0; i < 4; ++i)
        rows.push_back({1, fromSeconds(60.0 * i),
                        obs::SignalId::BatterySoc, 0.75});
    const auto store =
        obs::TimeSeriesStore::fromSamples(std::move(rows));
    const auto fired = engine.evaluate(&store, nullptr, nullptr);
    ASSERT_EQ(fired.size(), 1u);
    EXPECT_EQ(fired[0].trial, 0u);
    EXPECT_EQ(engine.status("soc_low")->state, AlertState::Warning);
}

TEST(AlertEngine, ExportsGaugesAndOpenMetrics)
{
    AlertRule r;
    r.name = "dg_fail";
    r.source = AlertSource::CounterRatio;
    r.numerator = "n";
    r.denominator = "d";
    r.minDenominator = 1;
    r.op = AlertOp::Above;
    r.warn = 0.05;
    r.crit = 0.25;
    AlertEngine engine({r});
    const std::map<std::string, std::uint64_t> counters = {{"d", 10},
                                                           {"n", 1}};
    engine.evaluate(nullptr, &counters, nullptr);

    obs::Registry reg;
    engine.exportTo(reg);
    EXPECT_EQ(reg.gauge("alert.dg_fail.state").value(), 1.0);
    EXPECT_EQ(reg.gauge("alert.dg_fail.value").value(), 0.1);
    EXPECT_EQ(reg.gauge("alert.dg_fail.transitions").value(), 1.0);

    std::ostringstream os;
    obs::writeOpenMetrics(os, reg);
    EXPECT_NE(os.str().find("bpsim_alert_dg_fail_state"),
              std::string::npos);
}

TEST(AlertEngine, JsonDocumentListsEveryRule)
{
    AlertEngine engine(defaultAlertRules());
    const std::string doc = engine.toJson();
    std::string err;
    const auto parsed = parseJson(doc, &err);
    ASSERT_TRUE(parsed.has_value()) << err;
    const JsonValue *alerts = parsed->find("alerts");
    ASSERT_NE(alerts, nullptr);
    ASSERT_EQ(alerts->kind(), JsonValue::Kind::Array);
    EXPECT_NE(doc.find("\"rule\":\"ups_charge_low\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"state\":\"clear\""), std::string::npos);
}

TEST(AlertEngine, DefaultRuleBookShape)
{
    const auto rules = defaultAlertRules();
    ASSERT_EQ(rules.size(), 4u);
    EXPECT_EQ(rules[0].name, "ups_charge_low");
    EXPECT_EQ(rules[0].source, AlertSource::Signal);
    EXPECT_EQ(rules[1].name, "dg_start_failures");
    EXPECT_EQ(rules[2].name, "backup_depleted");
    EXPECT_EQ(rules[3].name, "unattributed_downtime");
    EXPECT_EQ(rules[3].source, AlertSource::IncidentResidual);
    for (const auto &r : rules)
        EXPECT_FALSE(r.info.empty()) << r.name;
}
