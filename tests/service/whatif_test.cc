/**
 * @file
 * What-if query tests: schema validation of untrusted request
 * bodies, canonical cache-key construction, and the determinism
 * contract — the served document is byte-identical to the batch
 * (campaign_sweep --deterministic) export of the same scenario.
 */

#include "service/whatif.hh"

#include <sstream>

#include <gtest/gtest.h>

#include "campaign/json.hh"

using namespace bpsim;
using namespace bpsim::service;

namespace
{

/** Parse a request body that must be valid JSON. */
JsonValue
body(const std::string &text)
{
    std::string err;
    auto v = parseJson(text, &err);
    EXPECT_TRUE(v.has_value()) << err;
    return *v;
}

/** Expect the request to be rejected; return the reason. */
std::string
rejected(const std::string &text)
{
    std::string err;
    const auto req = parseWhatIfRequest(body(text), &err);
    EXPECT_FALSE(req.has_value()) << "unexpectedly accepted: " << text;
    EXPECT_FALSE(err.empty());
    return err;
}

} // namespace

TEST(WhatIfParse, MinimalRequestGetsDefaults)
{
    std::string err;
    const auto req =
        parseWhatIfRequest(body("{\"config\":\"LargeEUPS\"}"), &err);
    ASSERT_TRUE(req.has_value()) << err;
    EXPECT_EQ(req->spec.config.name, "LargeEUPS");
    EXPECT_EQ(req->spec.nServers, 8);
    EXPECT_EQ(req->opts.maxTrials, 200u);
    EXPECT_EQ(req->opts.seed, 2014u);
    // Early stop defaults off: fixed budgets cache better.
    EXPECT_EQ(req->opts.ciRelTol, 0.0);
    EXPECT_EQ(req->opts.ciAbsTolMin, 0.0);
}

TEST(WhatIfParse, FullRequestWithTechniqueAndCustomConfig)
{
    std::string err;
    const auto req = parseWhatIfRequest(
        body("{\"config\":{\"name\":\"mine\",\"has_dg\":false,"
             "\"has_ups\":true,\"ups_power_frac\":0.5,"
             "\"ups_runtime_sec\":120},"
             "\"technique\":{\"kind\":\"throttle_sleep\",\"pstate\":5,"
             "\"serve_for_min\":10.0,\"low_power\":true},"
             "\"servers\":16,\"trials\":32,\"seed\":7}"),
        &err);
    ASSERT_TRUE(req.has_value()) << err;
    EXPECT_EQ(req->spec.config.name, "mine");
    EXPECT_FALSE(req->spec.config.hasDg);
    EXPECT_TRUE(req->spec.config.hasUps);
    EXPECT_EQ(req->spec.config.upsPowerFrac, 0.5);
    EXPECT_EQ(req->spec.technique.kind, TechniqueKind::ThrottleSleep);
    EXPECT_EQ(req->spec.technique.pstate, 5);
    EXPECT_EQ(req->spec.nServers, 16);
    EXPECT_EQ(req->opts.maxTrials, 32u);
    EXPECT_EQ(req->opts.seed, 7u);
}

TEST(WhatIfParse, RejectsSchemaViolations)
{
    EXPECT_NE(rejected("{}").find("config"), std::string::npos);
    EXPECT_NE(rejected("{\"config\":\"NoSuchConfig\"}")
                  .find("unknown config"),
              std::string::npos);
    EXPECT_NE(rejected("{\"config\":\"NoDG\",\"trials\":\"many\"}")
                  .find("trials"),
              std::string::npos);
    EXPECT_NE(rejected("{\"config\":\"NoDG\",\"trials\":0}")
                  .find("trials"),
              std::string::npos);
    EXPECT_NE(rejected("{\"config\":\"NoDG\",\"servers\":0}")
                  .find("servers"),
              std::string::npos);
    EXPECT_NE(rejected("{\"config\":\"NoDG\","
                       "\"technique\":{\"kind\":\"warp_drive\"}}")
                  .find("technique"),
              std::string::npos);
    EXPECT_NE(rejected("{\"config\":\"NoDG\",\"ci_rel_tol\":-1}")
                  .find("non-negative"),
              std::string::npos);
    // Not an object at all.
    std::string err;
    EXPECT_FALSE(parseWhatIfRequest(body("[1,2,3]"), &err).has_value());
}

TEST(WhatIfParse, EnforcesSizingLimits)
{
    WhatIfLimits limits;
    limits.maxTrials = 10;
    limits.maxServers = 4;
    std::string err;
    EXPECT_FALSE(parseWhatIfRequest(
                     body("{\"config\":\"NoDG\",\"trials\":11}"), &err,
                     limits)
                     .has_value());
    EXPECT_FALSE(parseWhatIfRequest(
                     body("{\"config\":\"NoDG\",\"servers\":5}"), &err,
                     limits)
                     .has_value());
    EXPECT_TRUE(parseWhatIfRequest(
                    body("{\"config\":\"NoDG\",\"trials\":10,"
                         "\"servers\":4}"),
                    &err, limits)
                    .has_value())
        << err;
}

TEST(WhatIfParse, TechniqueKindNamesRoundTrip)
{
    for (const TechniqueKind k :
         {TechniqueKind::None, TechniqueKind::Throttle,
          TechniqueKind::Sleep, TechniqueKind::Hibernate,
          TechniqueKind::ProactiveHibernate, TechniqueKind::Migration,
          TechniqueKind::ProactiveMigration,
          TechniqueKind::MigrationSleep, TechniqueKind::ThrottleSleep,
          TechniqueKind::ThrottleHibernate, TechniqueKind::GeoFailover,
          TechniqueKind::Adaptive}) {
        const auto back = techniqueKindFromName(techniqueKindName(k));
        ASSERT_TRUE(back.has_value()) << techniqueKindName(k);
        EXPECT_EQ(*back, k);
    }
    EXPECT_FALSE(techniqueKindFromName("warp_drive").has_value());
}

TEST(WhatIfKey, CanonicalKeyIsStableAndDiscriminating)
{
    const auto req = parseWhatIfRequest(
        body("{\"config\":\"LargeEUPS\",\"trials\":32,\"seed\":7}"));
    ASSERT_TRUE(req.has_value());
    const std::string key = canonicalCacheKey(*req);
    EXPECT_EQ(key, canonicalCacheKey(*req)); // pure function
    EXPECT_NE(key.find("whatif.v1|"), std::string::npos);
    EXPECT_NE(key.find("config=LargeEUPS"), std::string::npos);
    EXPECT_NE(key.find("seed=7"), std::string::npos);
    // A rebuilt binary must never serve a stale line.
    EXPECT_NE(key.find(buildId()), std::string::npos);

    // Every result-determining field must discriminate.
    auto seed = *req;
    seed.opts.seed = 8;
    EXPECT_NE(canonicalCacheKey(seed), key);
    auto trials = *req;
    trials.opts.maxTrials = 33;
    EXPECT_NE(canonicalCacheKey(trials), key);
    auto config = *req;
    config.spec.config.upsRuntimeSec += 1.0;
    EXPECT_NE(canonicalCacheKey(config), key);
    auto tech = *req;
    tech.spec.technique.kind = TechniqueKind::Sleep;
    EXPECT_NE(canonicalCacheKey(tech), key);
}

TEST(WhatIfRun, MatchesDeterministicBatchExport)
{
    const auto req = parseWhatIfRequest(
        body("{\"config\":\"NoDG\",\"trials\":8,\"seed\":11,"
             "\"technique\":{\"kind\":\"throttle_sleep\",\"pstate\":5,"
             "\"serve_for_min\":10.0,\"low_power\":true}}"));
    ASSERT_TRUE(req.has_value());

    // The service runner...
    const std::string served = runWhatIf(*req);
    // ...against what campaign_sweep --deterministic would export.
    const AnnualCampaignSummary s =
        runAnnualCampaign(req->spec, req->opts);
    std::ostringstream os;
    CampaignJsonOptions jopts;
    jopts.includeTiming = false;
    writeCampaignJson(os, s, jopts);
    EXPECT_EQ(served, os.str());

    // And the contract that makes caching sound: byte-identical on
    // re-run (no wall-clock fields, bit-identical aggregates).
    EXPECT_EQ(served, runWhatIf(*req));
    EXPECT_EQ(served.find("wall_seconds"), std::string::npos);
    EXPECT_EQ(served.find("trials_per_sec"), std::string::npos);
}
