/**
 * @file
 * Incremental trial reuse: extending a cached K-trial campaign to a
 * larger budget M must be byte-identical to simulating all M trials
 * fresh — response body, checkpoint JSON (summary, t-digests,
 * histograms, incidents) — for every Table-3 config / technique /
 * batch-size / thread-count combination exercised here, including
 * early-stopped trajectories and the K == M pure-replay case. The
 * service-level tests then prove the same through handle(), where the
 * checkpoint travels via the checkpoint cache.
 */

#include "service/service.hh"

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/obs.hh"

using namespace bpsim;
using namespace bpsim::service;

namespace
{

/** Build a validated request straight from the wire schema, then
 *  apply the execution knobs the schema deliberately does not expose. */
WhatIfRequest
makeRequest(const std::string &config, const std::string &technique,
            std::uint64_t trials, std::uint64_t batch, int threads)
{
    const std::string body = "{\"config\":\"" + config +
                             "\",\"servers\":4,\"trials\":" +
                             std::to_string(trials) +
                             ",\"seed\":2014,\"technique\":{\"kind\":\"" +
                             technique +
                             "\",\"pstate\":5,\"serve_for_min\":10.0,"
                             "\"low_power\":true}}";
    std::string err;
    const auto doc = parseJson(body, &err);
    if (!doc) {
        ADD_FAILURE() << err;
        return {};
    }
    auto req = parseWhatIfRequest(*doc, &err);
    if (!req) {
        ADD_FAILURE() << err;
        return {};
    }
    req->opts.batch = batch;
    req->opts.threads = threads;
    return *req;
}

std::string
checkpointJson(const CampaignCheckpoint &ckpt)
{
    std::ostringstream os;
    writeCheckpointJson(os, ckpt);
    return os.str();
}

HttpRequest
post(const std::string &body)
{
    HttpRequest req;
    req.method = "POST";
    req.target = "/v1/whatif";
    req.body = body;
    return req;
}

const std::string *
header(const HttpResponse &resp, const std::string &name)
{
    for (const auto &[k, v] : resp.headers)
        if (k == name)
            return &v;
    return nullptr;
}

} // namespace

TEST(IncrementalTest, ExtensionMatchesFreshRunAcrossTheMatrix)
{
    constexpr std::uint64_t kK = 24, kM = 60;
    const std::vector<std::string> configs = {"NoUPS", "LargeEUPS"};
    const std::vector<std::string> techniques = {"throttle",
                                                 "throttle_sleep",
                                                 "migration"};
    for (const auto &config : configs) {
        for (const auto &tech : techniques) {
            for (const std::uint64_t batch : {1u, 8u}) {
                for (const int threads : {1, 4}) {
                    SCOPED_TRACE(config + "/" + tech + " batch=" +
                                 std::to_string(batch) + " threads=" +
                                 std::to_string(threads));
                    const WhatIfRequest reqK = makeRequest(
                        config, tech, kK, batch, threads);
                    const WhatIfRequest reqM = makeRequest(
                        config, tech, kM, batch, threads);

                    const WhatIfExecution base = executeWhatIf(reqK);
                    EXPECT_EQ(base.executedTrials, kK);
                    EXPECT_FALSE(base.resumed);

                    const WhatIfExecution extended =
                        executeWhatIf(reqM, &base.checkpoint);
                    const WhatIfExecution fresh = executeWhatIf(reqM);

                    EXPECT_TRUE(extended.resumed);
                    EXPECT_EQ(extended.startTrial, kK);
                    EXPECT_EQ(extended.executedTrials, kM - kK);
                    EXPECT_EQ(extended.body, fresh.body);
                    EXPECT_EQ(checkpointJson(extended.checkpoint),
                              checkpointJson(fresh.checkpoint));
                }
            }
        }
    }
}

TEST(IncrementalTest, ExtensionAcrossMismatchedBatchAndThreads)
{
    // The checkpoint carries no execution-shape state at all: a K-run
    // produced scalar/1-thread must extend under batched/4-thread
    // execution (and vice versa) to the same bytes.
    constexpr std::uint64_t kK = 20, kM = 52;
    const WhatIfRequest reqK =
        makeRequest("MinCost", "throttle_sleep", kK, 1, 1);
    const WhatIfRequest reqM =
        makeRequest("MinCost", "throttle_sleep", kM, 8, 4);
    const WhatIfExecution base = executeWhatIf(reqK);
    const WhatIfExecution extended = executeWhatIf(reqM, &base.checkpoint);
    const WhatIfExecution fresh = executeWhatIf(reqM);
    EXPECT_TRUE(extended.resumed);
    EXPECT_EQ(extended.body, fresh.body);
    EXPECT_EQ(checkpointJson(extended.checkpoint),
              checkpointJson(fresh.checkpoint));
}

TEST(IncrementalTest, ObsAggregatesSurviveExtension)
{
    // With tracing armed the checkpoint also carries histograms and
    // the incident aggregate; the union (checkpoint + extension) must
    // equal the fresh run's capture bit for bit.
    obs::TraceSink::instance().clear();
    const bool was = obs::enabled();
    obs::setEnabled(true);

    const WhatIfRequest reqK = makeRequest("NoUPS", "throttle", 16, 1, 1);
    const WhatIfRequest reqM = makeRequest("NoUPS", "throttle", 40, 1, 1);
    const WhatIfExecution base = executeWhatIf(reqK);
    const WhatIfExecution extended = executeWhatIf(reqM, &base.checkpoint);
    const WhatIfExecution fresh = executeWhatIf(reqM);

    obs::setEnabled(was);
    obs::TraceSink::instance().clear();

    // With the obs layer compiled out (BPSIM_OBS=OFF) there are no
    // histograms to carry; the body/checkpoint equalities still hold.
#if BPSIM_OBS_ENABLED
    EXPECT_FALSE(extended.checkpoint.histograms.empty());
#endif
    EXPECT_EQ(extended.body, fresh.body);
    EXPECT_EQ(checkpointJson(extended.checkpoint),
              checkpointJson(fresh.checkpoint));
}

TEST(IncrementalTest, EarlyStoppedCheckpointExtendsAsAPureReplay)
{
    // A generous CI tolerance stops the campaign well under budget;
    // raising the budget afterwards must replay the stop decision
    // without simulating anything new.
    WhatIfRequest req1 = makeRequest("NoUPS", "throttle_sleep", 400, 1, 1);
    req1.opts.minTrials = 8;
    req1.opts.ciRelTol = 0.5;
    const WhatIfExecution base = executeWhatIf(req1);
    ASSERT_LT(base.checkpoint.summary.trials, 400u);

    WhatIfRequest req2 = makeRequest("NoUPS", "throttle_sleep", 800, 1, 1);
    req2.opts.minTrials = 8;
    req2.opts.ciRelTol = 0.5;
    const WhatIfExecution extended = executeWhatIf(req2, &base.checkpoint);
    const WhatIfExecution fresh = executeWhatIf(req2);
    EXPECT_TRUE(extended.resumed);
    EXPECT_EQ(extended.executedTrials, 0u);
    EXPECT_EQ(extended.body, fresh.body);
}

TEST(IncrementalTest, SameBudgetIsAPureReplay)
{
    const WhatIfRequest req = makeRequest("NoUPS", "throttle", 32, 8, 4);
    const WhatIfExecution base = executeWhatIf(req);
    const WhatIfExecution replay = executeWhatIf(req, &base.checkpoint);
    EXPECT_TRUE(replay.resumed);
    EXPECT_EQ(replay.executedTrials, 0u);
    EXPECT_EQ(replay.startTrial, 32u);
    EXPECT_EQ(replay.body, base.body);
}

TEST(IncrementalTest, IncompatibleCheckpointsAreIgnored)
{
    const WhatIfRequest req = makeRequest("NoUPS", "throttle", 24, 1, 1);
    const WhatIfExecution base = executeWhatIf(req);

    // Wrong seed: the RNG stream family differs, resume would lie.
    WhatIfRequest other = req;
    other.opts.seed = 999;
    EXPECT_FALSE(executeWhatIf(other, &base.checkpoint).resumed);

    // Deeper than the request's budget: nothing to extend.
    WhatIfRequest smaller = makeRequest("NoUPS", "throttle", 8, 1, 1);
    EXPECT_FALSE(executeWhatIf(smaller, &base.checkpoint).resumed);

    // Foreign build: trajectories are not comparable across binaries.
    CampaignCheckpoint foreign = base.checkpoint;
    foreign.build = "not-this-build";
    const WhatIfExecution fresh = executeWhatIf(req, &foreign);
    EXPECT_FALSE(fresh.resumed);
    EXPECT_EQ(fresh.body, base.body);
}

TEST(IncrementalTest, ServiceResumesAcrossBudgetsThroughTheCache)
{
    ServiceOptions opts;
    opts.evaluateAlerts = false;
    CampaignService service(opts);

    const char *const kSmall =
        "{\"config\":\"NoUPS\",\"servers\":4,\"trials\":16,\"seed\":3,"
        "\"technique\":{\"kind\":\"throttle_sleep\",\"pstate\":5,"
        "\"serve_for_min\":10.0,\"low_power\":true}}";
    const char *const kLarge =
        "{\"config\":\"NoUPS\",\"servers\":4,\"trials\":48,\"seed\":3,"
        "\"technique\":{\"kind\":\"throttle_sleep\",\"pstate\":5,"
        "\"serve_for_min\":10.0,\"low_power\":true}}";

    const HttpResponse small = service.handle(post(kSmall));
    ASSERT_EQ(small.status, 200) << small.body;
    EXPECT_EQ(header(small, "X-Bpsim-Resumed-From"), nullptr);

    // The larger budget is a result-cache miss, but the checkpoint
    // stored by the first request seeds it at trial 16.
    const HttpResponse large = service.handle(post(kLarge));
    ASSERT_EQ(large.status, 200) << large.body;
    ASSERT_NE(header(large, "X-Bpsim-Cache"), nullptr);
    EXPECT_EQ(*header(large, "X-Bpsim-Cache"), "miss");
    ASSERT_NE(header(large, "X-Bpsim-Resumed-From"), nullptr);
    EXPECT_EQ(*header(large, "X-Bpsim-Resumed-From"), "16");
    EXPECT_GE(service.checkpointCache().stats().hits, 1u);

    // Byte-identical to a service that never saw the small request.
    ServiceOptions fresh_opts;
    fresh_opts.evaluateAlerts = false;
    CampaignService fresh(fresh_opts);
    const HttpResponse direct = fresh.handle(post(kLarge));
    ASSERT_EQ(direct.status, 200);
    EXPECT_EQ(header(direct, "X-Bpsim-Resumed-From"), nullptr);
    EXPECT_EQ(large.body, direct.body);
}

TEST(IncrementalTest, SmallerBudgetNeverClobbersADeeperCheckpoint)
{
    ServiceOptions opts;
    opts.evaluateAlerts = false;
    CampaignService service(opts);

    const auto body = [](std::uint64_t trials) {
        return "{\"config\":\"NoUPS\",\"servers\":4,\"trials\":" +
               std::to_string(trials) +
               ",\"seed\":5,\"technique\":{\"kind\":\"throttle\","
               "\"pstate\":5}}";
    };
    service.handle(post(body(40)));
    // A shallower request reuses the 40-trial checkpoint as a replay
    // prefix and must leave it in place...
    const HttpResponse shallow = service.handle(post(body(12)));
    ASSERT_EQ(shallow.status, 200);
    ASSERT_NE(header(shallow, "X-Bpsim-Cache"), nullptr);
    EXPECT_EQ(*header(shallow, "X-Bpsim-Cache"), "miss");
    // (depth 40 > budget 12: incompatible, so this ran fresh)
    EXPECT_EQ(header(shallow, "X-Bpsim-Resumed-From"), nullptr);

    // ...so a later 64-trial request still resumes from 40, not 12.
    const HttpResponse deep = service.handle(post(body(64)));
    ASSERT_EQ(deep.status, 200);
    ASSERT_NE(header(deep, "X-Bpsim-Resumed-From"), nullptr);
    EXPECT_EQ(*header(deep, "X-Bpsim-Resumed-From"), "40");
}

TEST(IncrementalTest, OversizeCheckpointsAreNotStored)
{
    ServiceOptions opts;
    opts.evaluateAlerts = false;
    opts.checkpointMaxBytes = 64; // nothing real fits in 64 bytes
    CampaignService service(opts);

    const char *const kBody =
        "{\"config\":\"NoUPS\",\"servers\":4,\"trials\":12,\"seed\":9,"
        "\"technique\":{\"kind\":\"throttle\",\"pstate\":5}}";
    const HttpResponse first = service.handle(post(kBody));
    ASSERT_EQ(first.status, 200);
    EXPECT_EQ(service.checkpointCache().stats().insertions, 0u);

    const char *const kBigger =
        "{\"config\":\"NoUPS\",\"servers\":4,\"trials\":24,\"seed\":9,"
        "\"technique\":{\"kind\":\"throttle\",\"pstate\":5}}";
    const HttpResponse second = service.handle(post(kBigger));
    ASSERT_EQ(second.status, 200);
    EXPECT_EQ(header(second, "X-Bpsim-Resumed-From"), nullptr);
}
