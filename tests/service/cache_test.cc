/**
 * @file
 * Result-cache tests: FNV-1a content addressing, LRU eviction order,
 * and the hit/miss/eviction counters a local obs::Registry observes.
 */

#include "service/cache.hh"

#include <gtest/gtest.h>

using namespace bpsim;
using namespace bpsim::service;

TEST(Fnv1a64, ReferenceVectors)
{
    // The published FNV-1a 64-bit test vectors.
    EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
    EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
    EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(ResultCacheTest, MissThenHit)
{
    obs::Registry reg;
    ResultCache cache(8, &reg);

    EXPECT_FALSE(cache.get("key").has_value());
    cache.put("key", "value");
    const auto hit = cache.get("key");
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, "value");

    const CacheStats s = cache.stats();
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.insertions, 1u);
    EXPECT_EQ(s.evictions, 0u);
    EXPECT_EQ(s.entries, 1u);
    EXPECT_EQ(s.valueBytes, 5u);

    // The same story told through the registry.
    EXPECT_EQ(reg.counter("service.cache.hits").value(), 1u);
    EXPECT_EQ(reg.counter("service.cache.misses").value(), 1u);
    EXPECT_EQ(reg.counter("service.cache.insertions").value(), 1u);
    EXPECT_EQ(reg.gauge("service.cache.entries").value(), 1.0);
    EXPECT_EQ(reg.gauge("service.cache.value_bytes").value(), 5.0);
}

TEST(ResultCacheTest, LruEvictionKeepsRecentlyUsed)
{
    obs::Registry reg;
    ResultCache cache(2, &reg);
    cache.put("a", "1");
    cache.put("b", "2");
    // Touch "a" so "b" becomes the LRU tail, then overflow.
    EXPECT_TRUE(cache.get("a").has_value());
    cache.put("c", "3");

    EXPECT_TRUE(cache.get("a").has_value());
    EXPECT_FALSE(cache.get("b").has_value()); // evicted
    EXPECT_TRUE(cache.get("c").has_value());
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_EQ(cache.stats().entries, 2u);
    EXPECT_EQ(reg.counter("service.cache.evictions").value(), 1u);
}

TEST(ResultCacheTest, PutOverwritesInPlace)
{
    obs::Registry reg;
    ResultCache cache(4, &reg);
    cache.put("k", "old");
    cache.put("k", "newer");
    const auto v = cache.get("k");
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, "newer");
    EXPECT_EQ(cache.stats().entries, 1u);
    EXPECT_EQ(cache.stats().valueBytes, 5u);
}

TEST(ResultCacheTest, ClearDropsEntriesButNotCounters)
{
    obs::Registry reg;
    ResultCache cache(4, &reg);
    cache.put("k", "v");
    EXPECT_TRUE(cache.get("k").has_value());
    cache.clear();
    EXPECT_FALSE(cache.get("k").has_value());
    EXPECT_EQ(cache.stats().entries, 0u);
    EXPECT_EQ(cache.stats().valueBytes, 0u);
    EXPECT_EQ(cache.stats().hits, 1u); // history survives clear()
    EXPECT_EQ(reg.gauge("service.cache.entries").value(), 0.0);
}

TEST(ResultCacheTest, ZeroCapacityClampsToOne)
{
    obs::Registry reg;
    ResultCache cache(0, &reg);
    cache.put("a", "1");
    cache.put("b", "2");
    EXPECT_EQ(cache.stats().entries, 1u);
    EXPECT_FALSE(cache.get("a").has_value());
    EXPECT_TRUE(cache.get("b").has_value());
}
