/**
 * @file
 * Full-service tests through CampaignService::handle() (no socket)
 * plus one loopback session through the real listener. The headline
 * assertions are the issue's acceptance criteria: the what-if
 * response is byte-identical to the deterministic batch export, and
 * a repeated query is answered from the cache.
 */

#include "service/service.hh"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "obs/obs.hh"

using namespace bpsim;
using namespace bpsim::service;

namespace
{

/** A small fixed-budget scenario so tests stay fast. */
const char *const kBody =
    "{\"config\":\"NoUPS\",\"trials\":6,\"seed\":11,"
    "\"technique\":{\"kind\":\"throttle_sleep\",\"pstate\":5,"
    "\"serve_for_min\":10.0,\"low_power\":true}}";

HttpRequest
post(const std::string &target, const std::string &body)
{
    HttpRequest req;
    req.method = "POST";
    req.target = target;
    req.body = body;
    return req;
}

HttpRequest
get(const std::string &target)
{
    HttpRequest req;
    req.method = "GET";
    req.target = target;
    return req;
}

const std::string *
header(const HttpResponse &resp, const std::string &name)
{
    for (const auto &[k, v] : resp.headers)
        if (k == name)
            return &v;
    return nullptr;
}

/** One blocking loopback HTTP exchange: connect, send, read to EOF. */
std::string
roundTrip(std::uint16_t port, const std::string &request)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0) << std::strerror(errno);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof addr),
              0)
        << std::strerror(errno);
    std::size_t off = 0;
    while (off < request.size()) {
        const ssize_t n =
            ::send(fd, request.data() + off, request.size() - off, 0);
        EXPECT_GT(n, 0);
        off += static_cast<std::size_t>(n);
    }
    ::shutdown(fd, SHUT_WR);
    std::string reply;
    char buf[4096];
    ssize_t n;
    while ((n = ::recv(fd, buf, sizeof buf, 0)) > 0)
        reply.append(buf, static_cast<std::size_t>(n));
    ::close(fd);
    return reply;
}

} // namespace

TEST(CampaignServiceTest, WhatIfIsByteIdenticalToBatchAndCached)
{
    // The batch reference, computed before the service arms obs —
    // obs on/off must not perturb results (the golden-trace
    // determinism contract), and this asserts it end to end.
    std::string err;
    const auto parsed = parseJson(kBody, &err);
    ASSERT_TRUE(parsed.has_value()) << err;
    const auto req = parseWhatIfRequest(*parsed, &err);
    ASSERT_TRUE(req.has_value()) << err;
    const std::string reference = runWhatIf(*req);

    CampaignService service;
    const HttpResponse first = service.handle(post("/v1/whatif", kBody));
    ASSERT_EQ(first.status, 200) << first.body;
    ASSERT_NE(header(first, "X-Bpsim-Cache"), nullptr);
    EXPECT_EQ(*header(first, "X-Bpsim-Cache"), "miss");
    EXPECT_EQ(first.body, reference);

    // The repeat is a cache hit with the exact same bytes.
    const HttpResponse second =
        service.handle(post("/v1/whatif", kBody));
    ASSERT_EQ(second.status, 200);
    EXPECT_EQ(*header(second, "X-Bpsim-Cache"), "hit");
    EXPECT_EQ(second.body, first.body);
    EXPECT_EQ(service.cache().stats().hits, 1u);
    EXPECT_EQ(service.cache().stats().misses, 1u);

    // Both carry the same content address.
    EXPECT_EQ(*header(first, "X-Bpsim-Key"),
              *header(second, "X-Bpsim-Key"));
}

TEST(CampaignServiceTest, RejectsBadRequests)
{
    CampaignService service;
    EXPECT_EQ(service.handle(post("/v1/whatif", "{nope")).status, 400);
    EXPECT_EQ(service.handle(post("/v1/whatif", "{}")).status, 400);
    // Depth-bombed body: the parser's nesting limit answers, the
    // service survives.
    const std::string deep(200, '[');
    EXPECT_EQ(service.handle(post("/v1/whatif", deep)).status, 400);
    EXPECT_EQ(service.handle(get("/v1/whatif")).status, 405);
    EXPECT_EQ(service.handle(post("/nope", "")).status, 404);
    EXPECT_EQ(service.handle(post("/metrics", "")).status, 405);
}

TEST(CampaignServiceTest, HealthAlertsAndMetricsEndpoints)
{
    CampaignService service;
    service.handle(post("/v1/whatif", kBody));

    const HttpResponse health = service.handle(get("/healthz"));
    EXPECT_EQ(health.status, 200);
    EXPECT_NE(health.body.find("\"status\":\"ok\""), std::string::npos);
    {
        // The liveness body parses and carries build + uptime so a
        // load balancer can detect stale builds.
        std::string herr;
        const auto hdoc = parseJson(health.body, &herr);
        ASSERT_TRUE(hdoc.has_value()) << herr;
        const JsonValue *bid = hdoc->find("buildId");
        ASSERT_NE(bid, nullptr);
        EXPECT_EQ(bid->asString(), buildId());
        const JsonValue *up = hdoc->find("uptime_seconds");
        ASSERT_NE(up, nullptr);
        EXPECT_GE(up->asDouble(), 0.0);
    }

    const HttpResponse alerts = service.handle(get("/v1/alerts"));
    EXPECT_EQ(alerts.status, 200);
    std::string err;
    const auto doc = parseJson(alerts.body, &err);
    ASSERT_TRUE(doc.has_value()) << err;
    const JsonValue *list = doc->find("alerts");
    ASSERT_NE(list, nullptr);
    EXPECT_EQ(list->size(), defaultAlertRules().size());

    const HttpResponse metrics = service.handle(get("/metrics"));
    EXPECT_EQ(metrics.status, 200);
    EXPECT_NE(metrics.contentType.find("openmetrics-text"),
              std::string::npos);
    EXPECT_NE(metrics.body.find("bpsim_service_requests_total"),
              std::string::npos);
    EXPECT_NE(metrics.body.find("bpsim_service_cache_misses_total"),
              std::string::npos);
    // The ALERTS-style gauges ride the same exposition.
    EXPECT_NE(metrics.body.find("bpsim_alert_ups_charge_low_state"),
              std::string::npos);
    EXPECT_NE(metrics.body.find("# EOF"), std::string::npos);
}

TEST(CampaignServiceTest, LoopbackSessionWithShutdown)
{
    ServiceOptions opts;
    opts.alertSampleTrials = 2;
    CampaignService service(opts);
    std::string err;
    ASSERT_TRUE(service.start(&err)) << err;
    ASSERT_NE(service.port(), 0);

    const std::string body = kBody;
    const std::string request =
        "POST /v1/whatif HTTP/1.1\r\nContent-Length: " +
        std::to_string(body.size()) + "\r\n\r\n" + body;
    const std::string first = roundTrip(service.port(), request);
    EXPECT_NE(first.find("HTTP/1.1 200 OK"), std::string::npos);
    EXPECT_NE(first.find("X-Bpsim-Cache: miss"), std::string::npos);
    const std::string second = roundTrip(service.port(), request);
    EXPECT_NE(second.find("X-Bpsim-Cache: hit"), std::string::npos);
    // Identical payload bytes after the blank line.
    EXPECT_EQ(first.substr(first.find("\r\n\r\n")),
              second.substr(second.find("\r\n\r\n")));

    const std::string bye = roundTrip(
        service.port(), "POST /v1/shutdown HTTP/1.1\r\n\r\n");
    EXPECT_NE(bye.find("shutting down"), std::string::npos);
    service.waitUntilStopped();
    EXPECT_FALSE(service.running());
}
