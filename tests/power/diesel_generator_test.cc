/**
 * @file
 * Tests for the diesel generator start-up / ramp / fuel model.
 */

#include <gtest/gtest.h>

#include "power/diesel_generator.hh"

namespace bpsim
{
namespace
{

DieselGenerator::Params
testDg()
{
    DieselGenerator::Params p;
    p.powerCapacityW = 2000.0;
    p.startupDelaySec = 25.0;
    p.rampSteps = 4;
    p.rampDurationSec = 120.0;
    return p;
}

TEST(DieselGenerator, StartsOffWithNoOutput)
{
    Simulator sim;
    DieselGenerator dg(sim, testDg());
    EXPECT_EQ(dg.state(), DieselGenerator::State::Off);
    EXPECT_DOUBLE_EQ(dg.availablePowerW(1000.0), 0.0);
    EXPECT_DOUBLE_EQ(dg.transferFraction(), 0.0);
}

TEST(DieselGenerator, OnlineAfterStartupDelay)
{
    Simulator sim;
    DieselGenerator dg(sim, testDg());
    dg.start();
    EXPECT_EQ(dg.state(), DieselGenerator::State::Starting);
    sim.runUntil(fromSeconds(24.9));
    EXPECT_FALSE(dg.online());
    sim.runUntil(fromSeconds(25.1));
    EXPECT_TRUE(dg.online());
}

TEST(DieselGenerator, RampStepsAreGradual)
{
    Simulator sim;
    DieselGenerator dg(sim, testDg());
    dg.start();
    // First step happens immediately at online (25 s): fraction 0.25.
    sim.runUntil(fromSeconds(26.0));
    EXPECT_DOUBLE_EQ(dg.transferFraction(), 0.25);
    // Steps every 30 s: 55 s -> 0.5, 85 s -> 0.75, 115 s -> 1.0.
    sim.runUntil(fromSeconds(56.0));
    EXPECT_DOUBLE_EQ(dg.transferFraction(), 0.5);
    sim.runUntil(fromSeconds(86.0));
    EXPECT_DOUBLE_EQ(dg.transferFraction(), 0.75);
    sim.runUntil(fromSeconds(116.0));
    EXPECT_DOUBLE_EQ(dg.transferFraction(), 1.0);
}

TEST(DieselGenerator, FullTransitionWithinPaperWindow)
{
    // Section 3: start + gradual load steps => overall ~2-3 minutes.
    Simulator sim;
    DieselGenerator dg(sim, testDg());
    dg.start();
    sim.run();
    const double total =
        testDg().startupDelaySec + testDg().rampDurationSec;
    EXPECT_GE(total, 120.0);
    EXPECT_LE(total, 180.0);
    EXPECT_DOUBLE_EQ(dg.transferFraction(), 1.0);
}

TEST(DieselGenerator, AvailablePowerFollowsRampAndCapacity)
{
    Simulator sim;
    DieselGenerator dg(sim, testDg());
    dg.start();
    sim.runUntil(fromSeconds(56.0)); // fraction 0.5
    EXPECT_DOUBLE_EQ(dg.availablePowerW(1000.0), 500.0);
    sim.run();
    EXPECT_DOUBLE_EQ(dg.availablePowerW(1000.0), 1000.0);
    // Capacity caps the offer.
    EXPECT_DOUBLE_EQ(dg.availablePowerW(5000.0), 2000.0);
}

TEST(DieselGenerator, StopResetsRamp)
{
    Simulator sim;
    DieselGenerator dg(sim, testDg());
    dg.start();
    sim.run();
    dg.stop();
    EXPECT_EQ(dg.state(), DieselGenerator::State::Off);
    EXPECT_DOUBLE_EQ(dg.transferFraction(), 0.0);
}

TEST(DieselGenerator, StopDuringStartupCancelsIt)
{
    Simulator sim;
    DieselGenerator dg(sim, testDg());
    dg.start();
    sim.runUntil(fromSeconds(10.0));
    dg.stop();
    sim.run();
    EXPECT_EQ(dg.state(), DieselGenerator::State::Off);
}

TEST(DieselGenerator, StartIsIdempotentWhileStarting)
{
    Simulator sim;
    DieselGenerator dg(sim, testDg());
    dg.start();
    dg.start(); // no-op
    sim.run();
    EXPECT_TRUE(dg.online());
}

TEST(DieselGenerator, FuelDrawsDown)
{
    auto p = testDg();
    p.fuelCapacityJ = 2000.0 * 3600.0; // one hour at rated
    Simulator sim;
    DieselGenerator dg(sim, p);
    dg.start();
    sim.run();
    dg.consume(2000.0, fromMinutes(30.0));
    EXPECT_NEAR(dg.fuelRemainingJ(), 2000.0 * 1800.0, 1.0);
    dg.consume(2000.0, fromMinutes(30.0));
    EXPECT_TRUE(dg.fuelExhausted());
    EXPECT_DOUBLE_EQ(dg.availablePowerW(1000.0), 0.0);
}

TEST(DieselGenerator, DefaultTankIsTwentyFourHours)
{
    Simulator sim;
    DieselGenerator dg(sim, testDg());
    EXPECT_DOUBLE_EQ(dg.fuelRemainingJ(), 2000.0 * 24.0 * 3600.0);
}

TEST(DieselGenerator, RampCallbackFires)
{
    Simulator sim;
    DieselGenerator dg(sim, testDg());
    int calls = 0;
    dg.onRampChange([&] { ++calls; });
    dg.start();
    sim.run();
    EXPECT_EQ(calls, 4); // one per ramp step
}

} // namespace
} // namespace bpsim
