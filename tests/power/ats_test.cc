/**
 * @file
 * Tests for the automatic transfer switch.
 */

#include <gtest/gtest.h>

#include "power/ats.hh"

namespace bpsim
{
namespace
{

TEST(Ats, CommandsGeneratorAfterDetectionDelay)
{
    Simulator sim;
    Ats ats(sim, Ats::Params{});
    Time started_at = kTimeNever;
    ats.onStartGenerator([&] { started_at = sim.now(); });
    sim.schedule(kMinute, [&] { ats.utilityFailed(); });
    sim.run();
    EXPECT_EQ(started_at, kMinute + 500 * kMillisecond);
    EXPECT_EQ(ats.transfers(), 1);
}

TEST(Ats, RestoreBeforeDetectionCancelsTheStart)
{
    Simulator sim;
    Ats ats(sim, Ats::Params{});
    bool started = false;
    bool returned = false;
    ats.onStartGenerator([&] { started = true; });
    ats.onReturnToUtility([&] { returned = true; });
    sim.schedule(kMinute, [&] { ats.utilityFailed(); });
    // Restored 100 ms later: inside the 500 ms detection window.
    sim.schedule(kMinute + 100 * kMillisecond,
                 [&] { ats.utilityRestored(); });
    sim.run();
    EXPECT_FALSE(started);
    EXPECT_TRUE(returned);
    EXPECT_EQ(ats.transfers(), 0);
}

TEST(Ats, CustomDetectionDelay)
{
    Simulator sim;
    Ats::Params p;
    p.detectionDelaySec = 2.0;
    Ats ats(sim, p);
    Time started_at = kTimeNever;
    ats.onStartGenerator([&] { started_at = sim.now(); });
    sim.schedule(0, [&] { ats.utilityFailed(); });
    sim.run();
    EXPECT_EQ(started_at, 2 * kSecond);
}

TEST(Ats, CountsRepeatedTransfers)
{
    Simulator sim;
    Ats ats(sim, Ats::Params{});
    ats.onStartGenerator([] {});
    for (int k = 0; k < 3; ++k) {
        sim.schedule(k * kHour + kMinute, [&] { ats.utilityFailed(); });
        sim.schedule(k * kHour + 2 * kMinute,
                     [&] { ats.utilityRestored(); });
    }
    sim.run();
    EXPECT_EQ(ats.transfers(), 3);
}

TEST(Ats, WorksWithoutHooks)
{
    Simulator sim;
    Ats ats(sim, Ats::Params{});
    sim.schedule(kMinute, [&] { ats.utilityFailed(); });
    sim.schedule(2 * kMinute, [&] { ats.utilityRestored(); });
    sim.run(); // must not crash
    EXPECT_EQ(ats.transfers(), 1);
}

} // namespace
} // namespace bpsim
