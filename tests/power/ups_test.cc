/**
 * @file
 * Tests for the UPS unit wrapper.
 */

#include <gtest/gtest.h>

#include "power/ups.hh"

namespace bpsim
{
namespace
{

Ups::Params
rackUps()
{
    Ups::Params p;
    p.powerCapacityW = 2000.0;
    p.runtimeAtRatedSec = 120.0;
    return p;
}

TEST(Ups, OfflineTransferDelayIsTenMilliseconds)
{
    Ups ups(rackUps());
    EXPECT_EQ(ups.transferDelay(), 10 * kMillisecond);
}

TEST(Ups, OnlinePlacementTransfersInstantly)
{
    auto p = rackUps();
    p.placement = Ups::Placement::Online;
    Ups ups(p);
    EXPECT_EQ(ups.transferDelay(), 0);
}

TEST(Ups, CanCarryUpToRatedPower)
{
    Ups ups(rackUps());
    EXPECT_TRUE(ups.canCarry(0.0));
    EXPECT_TRUE(ups.canCarry(2000.0));
    EXPECT_FALSE(ups.canCarry(2100.0));
}

TEST(Ups, BatteryInheritsCapacityParameters)
{
    Ups ups(rackUps());
    EXPECT_DOUBLE_EQ(ups.battery().params().ratedPowerW, 2000.0);
    EXPECT_DOUBLE_EQ(ups.battery().params().runtimeAtRatedSec, 120.0);
    // 2 kW for 2 minutes = 1/15 kWh.
    EXPECT_NEAR(ups.energyCapacityKwh(), 2.0 * 120.0 / 3600.0, 1e-9);
}

TEST(Ups, DischargeAndRechargeRoundTrip)
{
    Ups ups(rackUps());
    ups.discharge(2000.0, fromSeconds(60.0));
    EXPECT_NEAR(ups.battery().soc(), 0.5, 1e-9);
    EXPECT_NEAR(toSeconds(ups.timeToEmpty(2000.0)), 60.0, 1e-3);
    ups.recharge(fromHours(4.0));
    EXPECT_DOUBLE_EQ(ups.battery().soc(), 1.0);
}

TEST(Ups, LongRuntimeConfigurationsScale)
{
    auto p = rackUps();
    p.runtimeAtRatedSec = 30.0 * 60.0; // LargeEUPS-style
    Ups ups(p);
    EXPECT_NEAR(toMinutes(ups.timeToEmpty(2000.0)), 30.0, 1e-6);
    // Peukert effect: at half load runtime is much more than doubled.
    EXPECT_GT(toMinutes(ups.timeToEmpty(1000.0)), 60.0);
}

TEST(Ups, RejectsBadParameters)
{
    auto p = rackUps();
    p.powerCapacityW = 0.0;
    // The battery string rejects the zero rating first.
    EXPECT_DEATH(Ups{p}, "rated power|capacity");
    p = rackUps();
    p.onlineEfficiency = 0.0;
    EXPECT_DEATH(Ups{p}, "efficiency");
}

} // namespace
} // namespace bpsim
