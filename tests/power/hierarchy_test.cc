/**
 * @file
 * Integration tests for PowerHierarchy: source arbitration, battery
 * bridging, DG takeover, depletion, overload and restoration.
 */

#include <gtest/gtest.h>

#include <vector>

#include "power/power_hierarchy.hh"

namespace bpsim
{
namespace
{

/** Records every listener callback with its timestamp. */
class Recorder : public PowerHierarchy::Listener
{
  public:
    struct Entry
    {
        std::string what;
        Time at;
    };

    void outageStarted(Time t) override { log.push_back({"outage", t}); }
    void powerLost(Time t) override { log.push_back({"lost", t}); }
    void dgCarrying(Time t) override { log.push_back({"dg", t}); }
    void backupDepleted(Time t) override { log.push_back({"depleted", t}); }
    void utilityRestored(Time t) override { log.push_back({"restored", t}); }

    bool
    has(const std::string &what) const
    {
        for (const auto &e : log) {
            if (e.what == what)
                return true;
        }
        return false;
    }

    Time
    timeOf(const std::string &what) const
    {
        for (const auto &e : log) {
            if (e.what == what)
                return e.at;
        }
        return kTimeNever;
    }

    std::vector<Entry> log;
};

PowerHierarchy::Config
upsOnly(double power_w = 2000.0, double runtime_sec = 120.0)
{
    PowerHierarchy::Config c;
    c.hasDg = false;
    c.hasUps = true;
    c.ups.powerCapacityW = power_w;
    c.ups.runtimeAtRatedSec = runtime_sec;
    return c;
}

PowerHierarchy::Config
upsAndDg(double power_w = 2000.0)
{
    PowerHierarchy::Config c = upsOnly(power_w);
    c.hasDg = true;
    c.dg.powerCapacityW = power_w;
    return c;
}

TEST(PowerHierarchy, SuppliesLoadFromUtilityInSteadyState)
{
    Simulator sim;
    Utility u(sim);
    PowerHierarchy h(sim, u, upsOnly());
    h.setLoad(1500.0);
    sim.runUntil(kMinute);
    EXPECT_EQ(h.mode(), PowerHierarchy::Mode::OnUtility);
    EXPECT_TRUE(h.powered());
    EXPECT_DOUBLE_EQ(h.meter().fromUtility().lastValue(), 1500.0);
    EXPECT_DOUBLE_EQ(h.meter().fromBattery().lastValue(), 0.0);
}

TEST(PowerHierarchy, BatteryCarriesOutageWithinRuntime)
{
    Simulator sim;
    Utility u(sim);
    PowerHierarchy h(sim, u, upsOnly());
    Recorder rec;
    h.addListener(&rec);
    h.setLoad(2000.0);
    u.scheduleOutage(kMinute, fromSeconds(90.0)); // 90 s < 120 s runtime
    sim.runUntil(10 * kMinute);
    EXPECT_TRUE(rec.has("outage"));
    EXPECT_TRUE(rec.has("restored"));
    EXPECT_FALSE(rec.has("lost"));
    EXPECT_FALSE(rec.has("depleted"));
    EXPECT_EQ(h.mode(), PowerHierarchy::Mode::OnUtility);
    // ~90 s at 2 kW came from the battery.
    EXPECT_NEAR(joulesToKwh(h.meter().batteryEnergyJ(0, 10 * kMinute)),
                2.0 * 90.0 / 3600.0, 1e-3);
}

TEST(PowerHierarchy, BatteryDepletionLosesPower)
{
    Simulator sim;
    Utility u(sim);
    PowerHierarchy h(sim, u, upsOnly());
    Recorder rec;
    h.addListener(&rec);
    h.setLoad(2000.0); // full rated load -> exactly 120 s of battery
    u.scheduleOutage(kMinute, 10 * kMinute);
    sim.runUntil(20 * kMinute);
    EXPECT_TRUE(rec.has("depleted"));
    EXPECT_TRUE(rec.has("lost"));
    // Depletion lands ~120 s after the outage began.
    EXPECT_NEAR(toSeconds(rec.timeOf("depleted") - kMinute), 120.0, 1.0);
    EXPECT_EQ(h.powerLossCount(), 1);
}

TEST(PowerHierarchy, LowerLoadExtendsBatteryPeukertStyle)
{
    Simulator sim;
    Utility u(sim);
    PowerHierarchy h(sim, u, upsOnly());
    Recorder rec;
    h.addListener(&rec);
    h.setLoad(1000.0); // half load: 120 * 2^1.29 ~ 294 s
    u.scheduleOutage(kMinute, 10 * kMinute);
    sim.runUntil(20 * kMinute);
    ASSERT_TRUE(rec.has("depleted"));
    EXPECT_NEAR(toSeconds(rec.timeOf("depleted") - kMinute), 293.9, 3.0);
}

TEST(PowerHierarchy, NoUpsLosesPowerAfterRideThrough)
{
    Simulator sim;
    Utility u(sim);
    PowerHierarchy::Config c;
    c.hasDg = false;
    c.hasUps = false;
    PowerHierarchy h(sim, u, c);
    Recorder rec;
    h.addListener(&rec);
    h.setLoad(1000.0);
    u.scheduleOutage(kMinute, kMinute);
    sim.runUntil(10 * kMinute);
    ASSERT_TRUE(rec.has("lost"));
    EXPECT_NEAR(toSeconds(rec.timeOf("lost") - kMinute), 0.030, 0.001);
}

TEST(PowerHierarchy, OverloadedUpsLosesPowerAtTransfer)
{
    Simulator sim;
    Utility u(sim);
    PowerHierarchy h(sim, u, upsOnly(1000.0));
    Recorder rec;
    h.addListener(&rec);
    h.setLoad(1500.0); // exceeds the 1 kW UPS
    u.scheduleOutage(kMinute, kMinute);
    sim.runUntil(10 * kMinute);
    ASSERT_TRUE(rec.has("lost"));
    EXPECT_LT(rec.timeOf("lost") - kMinute, 50 * kMillisecond);
}

TEST(PowerHierarchy, SheddingLoadAtOutageStartAvoidsOverload)
{
    Simulator sim;
    Utility u(sim);
    PowerHierarchy h(sim, u, upsOnly(1000.0, 600.0));
    Recorder rec;
    h.addListener(&rec);

    // A "technique": immediately throttle when the outage starts.
    class Shedder : public PowerHierarchy::Listener
    {
      public:
        explicit Shedder(PowerHierarchy &h) : h(h) {}
        void outageStarted(Time) override { h.setLoad(800.0); }
        PowerHierarchy &h;
    } shedder(h);
    h.addListener(&shedder);

    h.setLoad(1500.0);
    u.scheduleOutage(kMinute, 2 * kMinute);
    sim.runUntil(10 * kMinute);
    EXPECT_FALSE(rec.has("lost"));
    EXPECT_TRUE(rec.has("restored"));
}

TEST(PowerHierarchy, DgTakesOverAfterStartAndRamp)
{
    Simulator sim;
    Utility u(sim);
    PowerHierarchy h(sim, u, upsAndDg());
    Recorder rec;
    h.addListener(&rec);
    h.setLoad(1200.0);
    u.scheduleOutage(kMinute, kHour);
    sim.runUntil(2 * kHour);
    ASSERT_TRUE(rec.has("dg"));
    EXPECT_FALSE(rec.has("lost"));
    // DG fully carries within the paper's ~2-3 min window.
    const double takeover_sec = toSeconds(rec.timeOf("dg") - kMinute);
    EXPECT_GE(takeover_sec, 60.0);
    EXPECT_LE(takeover_sec, 180.0);
    EXPECT_EQ(h.mode(), PowerHierarchy::Mode::OnUtility); // restored
}

TEST(PowerHierarchy, BatteryBridgesOnlyTheTransferWindow)
{
    Simulator sim;
    Utility u(sim);
    PowerHierarchy h(sim, u, upsAndDg());
    h.setLoad(1200.0);
    u.scheduleOutage(kMinute, kHour);
    sim.runUntil(2 * kHour);
    // The battery supplied strictly less than the full bridge at full
    // load (the DG ramp progressively relieves it) and nothing after.
    const Joules bridge = h.meter().batteryEnergyJ(0, 2 * kHour);
    EXPECT_GT(bridge, 0.0);
    EXPECT_LT(bridge, 1200.0 * 145.0);
    // After the DG carries, battery draw is zero.
    EXPECT_DOUBLE_EQ(
        h.meter().fromBattery().average(10 * kMinute, kHour), 0.0);
}

TEST(PowerHierarchy, DgReEnergizesCrashedLoadWithoutUps)
{
    Simulator sim;
    Utility u(sim);
    PowerHierarchy::Config c;
    c.hasUps = false;
    c.hasDg = true;
    c.dg.powerCapacityW = 2000.0;
    PowerHierarchy h(sim, u, c);
    Recorder rec;
    h.addListener(&rec);
    h.setLoad(1000.0);
    u.scheduleOutage(kMinute, kHour);
    sim.runUntil(2 * kHour);
    ASSERT_TRUE(rec.has("lost"));
    ASSERT_TRUE(rec.has("dg"));
    EXPECT_GT(rec.timeOf("dg"), rec.timeOf("lost"));
}

TEST(PowerHierarchy, RestorationStopsDgAndRecharges)
{
    Simulator sim;
    Utility u(sim);
    PowerHierarchy h(sim, u, upsAndDg());
    h.setLoad(1000.0);
    u.scheduleOutage(kMinute, 10 * kMinute);
    sim.runUntil(kHour);
    EXPECT_EQ(h.mode(), PowerHierarchy::Mode::OnUtility);
    EXPECT_EQ(h.dg()->state(), DieselGenerator::State::Off);
    // Several hours later the battery is fully recharged.
    sim.runUntil(12 * kHour);
    h.setLoad(1000.0); // force a sync
    EXPECT_NEAR(h.ups()->battery().soc(), 1.0, 1e-6);
}

TEST(PowerHierarchy, TimeToBatteryEmptyTracksLoad)
{
    Simulator sim;
    Utility u(sim);
    PowerHierarchy h(sim, u, upsOnly());
    h.setLoad(2000.0);
    EXPECT_EQ(h.timeToBatteryEmpty(), kTimeNever); // on utility
    u.scheduleOutage(kMinute, 10 * kMinute);
    sim.runUntil(kMinute + kSecond);
    EXPECT_NEAR(toSeconds(h.timeToBatteryEmpty()), 119.0, 1.5);
}

TEST(PowerHierarchy, ZeroLoadOutageHarmless)
{
    Simulator sim;
    Utility u(sim);
    PowerHierarchy h(sim, u, upsOnly());
    Recorder rec;
    h.addListener(&rec);
    h.setLoad(0.0);
    u.scheduleOutage(kMinute, kHour);
    sim.runUntil(2 * kHour);
    EXPECT_FALSE(rec.has("depleted"));
    EXPECT_EQ(h.powerLossCount(), 0);
}

TEST(PowerHierarchy, RepeatedOutagesWithRechargeBetween)
{
    Simulator sim;
    Utility u(sim);
    PowerHierarchy h(sim, u, upsOnly(2000.0, 600.0));
    Recorder rec;
    h.addListener(&rec);
    h.setLoad(2000.0);
    // Two 4-minute outages separated by 6 hours of recharge.
    u.scheduleOutage(kMinute, 4 * kMinute);
    u.scheduleOutage(6 * kHour, 4 * kMinute);
    sim.runUntil(12 * kHour);
    EXPECT_FALSE(rec.has("lost"));
    EXPECT_EQ(u.outagesSeen(), 2);
}

TEST(PowerHierarchy, BackToBackOutagesWithoutRechargeFail)
{
    Simulator sim;
    Utility u(sim);
    PowerHierarchy h(sim, u, upsOnly(2000.0, 600.0));
    Recorder rec;
    h.addListener(&rec);
    h.setLoad(2000.0);
    // 8 of 10 minutes drained, then a second hit 30 s later.
    u.scheduleOutage(kMinute, 8 * kMinute);
    u.scheduleOutage(9 * kMinute + 30 * kSecond, 5 * kMinute);
    sim.runUntil(kHour);
    EXPECT_TRUE(rec.has("lost"));
}

TEST(PowerHierarchy, OnlineUpsTransfersInstantly)
{
    // Double-conversion (online) placement: the battery carries from
    // the first instant, with no ride-through gap at all.
    Simulator sim;
    Utility u(sim);
    PowerHierarchy::Config c = upsOnly();
    c.ups.placement = Ups::Placement::Online;
    PowerHierarchy h(sim, u, c);
    h.setLoad(1000.0);
    u.scheduleOutage(kMinute, kMinute);
    sim.runUntil(kMinute + 5 * kMillisecond);
    EXPECT_EQ(h.mode(), PowerHierarchy::Mode::OnBattery);
    EXPECT_DOUBLE_EQ(h.meter().fromBattery().lastValue(), 1000.0);
}

TEST(PowerHierarchy, OfflineUpsHasTheTenMillisecondGap)
{
    Simulator sim;
    Utility u(sim);
    PowerHierarchy h(sim, u, upsOnly());
    h.setLoad(1000.0);
    u.scheduleOutage(kMinute, kMinute);
    sim.runUntil(kMinute + 5 * kMillisecond);
    EXPECT_EQ(h.mode(), PowerHierarchy::Mode::RideThrough);
    sim.runUntil(kMinute + 15 * kMillisecond);
    EXPECT_EQ(h.mode(), PowerHierarchy::Mode::OnBattery);
}

TEST(PowerHierarchy, NegativeLoadPanics)
{
    Simulator sim;
    Utility u(sim);
    PowerHierarchy h(sim, u, upsOnly());
    EXPECT_DEATH(h.setLoad(-5.0), "negative load");
}

} // namespace
} // namespace bpsim
