/**
 * @file
 * Tests for the Peukert battery model, including the paper's Figure 3
 * anchor points and discharge-behaviour properties.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "power/battery.hh"

namespace bpsim
{
namespace
{

PeukertBattery::Params
apc4kw()
{
    // The Figure 3 unit: 4 kW rated, 10 minutes at 100 % load.
    PeukertBattery::Params p;
    p.ratedPowerW = 4000.0;
    p.runtimeAtRatedSec = 600.0;
    return p;
}

TEST(PeukertBattery, Figure3AnchorFullLoad)
{
    PeukertBattery bat(apc4kw());
    // 10 minutes at 4000 W.
    EXPECT_NEAR(toMinutes(bat.runtimeAtLoad(4000.0)), 10.0, 1e-6);
}

TEST(PeukertBattery, Figure3AnchorQuarterLoad)
{
    PeukertBattery bat(apc4kw());
    // 60 minutes at 1000 W (25 % load): the exponent is fitted to this.
    EXPECT_NEAR(toMinutes(bat.runtimeAtLoad(1000.0)), 60.0, 1e-6);
}

TEST(PeukertBattery, EnergyDeliveredMatchesFigure3)
{
    PeukertBattery bat(apc4kw());
    // Figure 3 commentary: 1 kWh at 25 % load, 0.66 kWh at 100 %.
    const double kwh_full =
        4000.0 * toSeconds(bat.runtimeAtLoad(4000.0)) / 3.6e6;
    const double kwh_quarter =
        1000.0 * toSeconds(bat.runtimeAtLoad(1000.0)) / 3.6e6;
    EXPECT_NEAR(kwh_full, 0.667, 0.01);
    EXPECT_NEAR(kwh_quarter, 1.0, 0.01);
}

TEST(PeukertBattery, NominalEnergyUsesPaperConvention)
{
    PeukertBattery bat(apc4kw());
    EXPECT_NEAR(bat.nominalEnergyKwh(), 4.0 * 600.0 / 3600.0, 1e-9);
}

TEST(PeukertBattery, ZeroLoadLastsForever)
{
    PeukertBattery bat(apc4kw());
    EXPECT_EQ(bat.runtimeAtLoad(0.0), kTimeNever);
    EXPECT_EQ(bat.timeToEmpty(0.0), kTimeNever);
}

TEST(PeukertBattery, OverRatedLoadPanics)
{
    PeukertBattery bat(apc4kw());
    EXPECT_DEATH(bat.runtimeAtLoad(4500.0), "exceeds rated power");
}

TEST(PeukertBattery, DischargeDrainsProportionally)
{
    PeukertBattery bat(apc4kw());
    bat.discharge(4000.0, fromMinutes(5.0));
    EXPECT_NEAR(bat.soc(), 0.5, 1e-9);
    EXPECT_FALSE(bat.empty());
    bat.discharge(4000.0, fromMinutes(5.0));
    EXPECT_NEAR(bat.soc(), 0.0, 1e-9);
    EXPECT_TRUE(bat.empty());
}

TEST(PeukertBattery, TimeToEmptyScalesWithSoc)
{
    PeukertBattery bat(apc4kw());
    bat.discharge(4000.0, fromMinutes(5.0));
    EXPECT_NEAR(toMinutes(bat.timeToEmpty(4000.0)), 5.0, 1e-6);
    EXPECT_NEAR(toMinutes(bat.timeToEmpty(1000.0)), 30.0, 1e-6);
}

TEST(PeukertBattery, VariableLoadDischargeComposes)
{
    // Half the charge at full load, then the rest at quarter load:
    // 5 min + 30 min.
    PeukertBattery bat(apc4kw());
    bat.discharge(4000.0, fromMinutes(5.0));
    bat.discharge(1000.0, fromMinutes(30.0));
    EXPECT_NEAR(bat.soc(), 0.0, 1e-6);
}

TEST(PeukertBattery, OverDischargePanics)
{
    PeukertBattery bat(apc4kw());
    EXPECT_DEATH(bat.discharge(4000.0, fromMinutes(11.0)),
                 "over-discharged");
}

TEST(PeukertBattery, EnergyDeliveredAccumulates)
{
    PeukertBattery bat(apc4kw());
    bat.discharge(2000.0, fromMinutes(10.0));
    EXPECT_NEAR(joulesToKwh(bat.energyDeliveredJ()), 2.0 * 10.0 / 60.0,
                1e-9);
}

TEST(PeukertBattery, RechargeRestoresCharge)
{
    auto p = apc4kw();
    p.rechargeTimeSec = 3600.0;
    PeukertBattery bat(p);
    bat.discharge(4000.0, fromMinutes(10.0));
    EXPECT_TRUE(bat.empty());
    bat.recharge(fromMinutes(30.0));
    EXPECT_NEAR(bat.soc(), 0.5, 1e-9);
    bat.recharge(fromHours(2.0));
    EXPECT_DOUBLE_EQ(bat.soc(), 1.0); // caps at full
}

TEST(PeukertBattery, ResetFullRestoresCharge)
{
    PeukertBattery bat(apc4kw());
    bat.discharge(4000.0, fromMinutes(10.0));
    bat.resetFull();
    EXPECT_DOUBLE_EQ(bat.soc(), 1.0);
}

TEST(PeukertBattery, ExponentOneIsConstantEnergy)
{
    auto p = apc4kw();
    p.peukertExponent = 1.0;
    PeukertBattery bat(p);
    // With k = 1 the deliverable energy is load-independent.
    const double e_full =
        4000.0 * toSeconds(bat.runtimeAtLoad(4000.0));
    const double e_low = 400.0 * toSeconds(bat.runtimeAtLoad(400.0));
    EXPECT_NEAR(e_full, e_low, 1e-6 * e_full);
}

/** Property: runtime is strictly decreasing in load. */
class BatteryLoadSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(BatteryLoadSweep, RuntimeMonotoneDecreasingInLoad)
{
    PeukertBattery bat(apc4kw());
    const double f = GetParam();
    const Time t_here = bat.runtimeAtLoad(4000.0 * f);
    const Time t_higher = bat.runtimeAtLoad(4000.0 * std::min(1.0, f + 0.1));
    EXPECT_GT(t_here, t_higher);
}

/** Property: delivered energy grows as load shrinks (Ragone effect). */
TEST_P(BatteryLoadSweep, DeliverableEnergyGrowsAtLowerLoad)
{
    PeukertBattery bat(apc4kw());
    const double f = GetParam();
    const double load = 4000.0 * f;
    const double higher = 4000.0 * std::min(1.0, f + 0.1);
    const double e_here = load * toSeconds(bat.runtimeAtLoad(load));
    const double e_higher = higher * toSeconds(bat.runtimeAtLoad(higher));
    EXPECT_GT(e_here, e_higher);
}

INSTANTIATE_TEST_SUITE_P(LoadFractions, BatteryLoadSweep,
                         ::testing::Values(0.05, 0.1, 0.2, 0.3, 0.4, 0.5,
                                           0.6, 0.7, 0.8, 0.89));

/**
 * Property: discharging in n equal slices at constant load drains
 * exactly as much as one contiguous discharge.
 */
class BatterySliceSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(BatterySliceSweep, SlicedDischargeEqualsContiguous)
{
    const int slices = GetParam();
    PeukertBattery a(apc4kw()), b(apc4kw());
    const Time total = fromMinutes(8.0);
    a.discharge(3000.0, total);
    for (int i = 0; i < slices; ++i)
        b.discharge(3000.0, total / slices);
    EXPECT_NEAR(a.soc(), b.soc(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(SliceCounts, BatterySliceSweep,
                         ::testing::Values(2, 3, 5, 8, 16));

} // namespace
} // namespace bpsim
