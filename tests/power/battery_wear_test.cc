/**
 * @file
 * Tests for the battery cycle-life (wear) model and the paper's
 * Section 2 claim that wear is negligible for backup-only use.
 */

#include <gtest/gtest.h>

#include "core/annual.hh"
#include "power/battery.hh"
#include "power/power_hierarchy.hh"
#include "workload/cluster.hh"

namespace bpsim
{
namespace
{

PeukertBattery::Params
string4kw()
{
    PeukertBattery::Params p;
    p.ratedPowerW = 4000.0;
    p.runtimeAtRatedSec = 600.0;
    return p;
}

TEST(BatteryWear, CycleLifeCurveAnchors)
{
    EXPECT_NEAR(leadAcidCycleLife(1.0), 180.0, 1e-9);
    EXPECT_NEAR(leadAcidCycleLife(0.5), 492.0, 5.0);
    EXPECT_GT(leadAcidCycleLife(0.2), 1500.0);
    EXPECT_DEATH(leadAcidCycleLife(0.0), "depth of discharge");
}

TEST(BatteryWear, FullDischargeCostsOneFullCycle)
{
    PeukertBattery bat(string4kw());
    bat.discharge(4000.0, fromMinutes(10.0));
    EXPECT_NEAR(bat.lifeFractionUsed(), 1.0 / 180.0, 1e-9);
    EXPECT_DOUBLE_EQ(bat.deepestDischarge(), 1.0);
}

TEST(BatteryWear, HalfDischargeCostsOneOverCycleLife)
{
    PeukertBattery bat(string4kw());
    bat.discharge(4000.0, fromMinutes(5.0));
    EXPECT_NEAR(bat.lifeFractionUsed(),
                1.0 / leadAcidCycleLife(0.5), 1e-9);
}

TEST(BatteryWear, DamageComposesAcrossSlices)
{
    PeukertBattery a(string4kw()), b(string4kw());
    a.discharge(4000.0, fromMinutes(8.0));
    for (int i = 0; i < 8; ++i)
        b.discharge(4000.0, fromMinutes(1.0));
    EXPECT_NEAR(a.lifeFractionUsed(), b.lifeFractionUsed(), 1e-9);
}

TEST(BatteryWear, ShallowCyclesWearFarLess)
{
    // Ten 10%-deep cycles vs one 100% cycle: the shallow regime is
    // gentler even at equal throughput.
    PeukertBattery shallow(string4kw()), deep(string4kw());
    for (int i = 0; i < 10; ++i) {
        shallow.discharge(4000.0, fromMinutes(1.0));
        shallow.recharge(fromHours(10.0));
    }
    deep.discharge(4000.0, fromMinutes(10.0));
    // With k = 1.45 the ratio is 10 * 0.1^1.45 ~ 0.36 of the deep
    // cycle's damage at identical throughput.
    EXPECT_LT(shallow.lifeFractionUsed(),
              0.5 * deep.lifeFractionUsed());
    EXPECT_GT(shallow.lifeFractionUsed(), 0.0);
}

TEST(BatteryWear, BackupOnlyUseIsNegligiblePerYear)
{
    // The Section 2 claim, quantified: a year of Figure 1 outages,
    // ridden through with Sleep-L on a LargeEUPS string, consumes a
    // trivial slice of cycle life (nothing like the 4-year calendar
    // replacement that actually retires it).
    Simulator sim;
    Utility utility(sim);
    const ServerModel model;
    PowerHierarchy hierarchy(
        sim, utility, toHierarchyConfig(largeEUpsConfig(), 8 * 250.0));
    Cluster cluster(sim, hierarchy, model, specJbbProfile(), 8);
    auto tech = makeTechnique({TechniqueKind::Sleep, 0, 0, 0, true});
    tech->attach(sim, cluster, hierarchy);
    cluster.primeSteadyState();

    auto gen = OutageTraceGenerator::figure1();
    Rng rng(31337);
    for (const auto &ev : gen.generate(rng, 365LL * 24 * kHour))
        utility.scheduleOutage(ev.start, ev.duration);
    sim.runUntil(365LL * 24 * kHour);

    EXPECT_EQ(hierarchy.powerLossCount(), 0);
    EXPECT_LT(hierarchy.ups()->battery().lifeFractionUsed(), 0.01);
}

TEST(BatteryWear, PeakShavingChewsThroughLife)
{
    // Dual use is a different story: shaving 200 W every day cycles
    // the string constantly.
    Simulator sim;
    Utility utility(sim);
    PowerHierarchy::Config cfg;
    cfg.hasDg = false;
    cfg.hasUps = true;
    cfg.ups.powerCapacityW = 1000.0;
    cfg.ups.runtimeAtRatedSec = 600.0;
    cfg.ups.rechargeTimeSec = 3600.0;
    cfg.peakShaveThresholdW = 800.0;
    PowerHierarchy hierarchy(sim, utility, cfg);
    Cluster cluster(sim, hierarchy, ServerModel{}, memcachedProfile(),
                    4);
    cluster.primeSteadyState();
    // Alternate peak (shaving) and trough (recharge) every 4 hours
    // for a month.
    for (int step = 0; step < 180; ++step) {
        const double util = (step % 2 == 0) ? 1.0 : 0.2;
        sim.at(step * 4 * kHour + kSecond, [&cluster, util] {
            for (int i = 0; i < cluster.size(); ++i)
                cluster.server(i).setUtilization(util);
        });
    }
    sim.runUntil(30 * 24 * kHour);
    // A month of daily cycling consumes a visible slice of life —
    // orders of magnitude above the backup-only figure.
    EXPECT_GT(hierarchy.ups()->battery().lifeFractionUsed(), 0.05);
}

} // namespace
} // namespace bpsim
