/**
 * @file
 * Tests for the Utility feed and its outage scheduling.
 */

#include <gtest/gtest.h>

#include <vector>

#include "power/utility.hh"

namespace bpsim
{
namespace
{

TEST(Utility, AvailableByDefault)
{
    Simulator sim;
    Utility u(sim);
    EXPECT_TRUE(u.available());
    EXPECT_EQ(u.outagesSeen(), 0);
}

TEST(Utility, OutageTogglesAvailability)
{
    Simulator sim;
    Utility u(sim);
    u.scheduleOutage(kMinute, 5 * kMinute);
    std::vector<std::pair<Time, bool>> log;
    u.onFail([&] { log.push_back({sim.now(), false}); });
    u.onRestore([&] { log.push_back({sim.now(), true}); });
    sim.run();
    ASSERT_EQ(log.size(), 2u);
    EXPECT_EQ(log[0], (std::pair<Time, bool>{kMinute, false}));
    EXPECT_EQ(log[1], (std::pair<Time, bool>{6 * kMinute, true}));
    EXPECT_TRUE(u.available());
    EXPECT_EQ(u.outagesSeen(), 1);
}

TEST(Utility, AvailabilityFalseDuringOutage)
{
    Simulator sim;
    Utility u(sim);
    u.scheduleOutage(kMinute, kMinute);
    bool seen_down = false;
    u.onFail([&] { seen_down = !u.available(); });
    sim.run();
    EXPECT_TRUE(seen_down);
}

TEST(Utility, MultipleSequentialOutages)
{
    Simulator sim;
    Utility u(sim);
    u.scheduleOutage(kMinute, kMinute);
    u.scheduleOutage(10 * kMinute, 2 * kMinute);
    u.scheduleOutage(30 * kMinute, 30 * kSecond);
    sim.run();
    EXPECT_EQ(u.outagesSeen(), 3);
    EXPECT_TRUE(u.available());
}

TEST(Utility, RejectsOverlappingOutages)
{
    Simulator sim;
    Utility u(sim);
    u.scheduleOutage(kMinute, 10 * kMinute);
    EXPECT_DEATH(u.scheduleOutage(5 * kMinute, kMinute), "overlaps");
}

TEST(Utility, RejectsZeroDuration)
{
    Simulator sim;
    Utility u(sim);
    EXPECT_DEATH(u.scheduleOutage(kMinute, 0), "positive");
}

TEST(Utility, MultipleListenersAllFire)
{
    Simulator sim;
    Utility u(sim);
    int fails = 0;
    u.onFail([&] { ++fails; });
    u.onFail([&] { ++fails; });
    u.scheduleOutage(kSecond, kSecond);
    sim.run();
    EXPECT_EQ(fails, 2);
}

} // namespace
} // namespace bpsim
