/**
 * @file
 * Tests for diesel fuel exhaustion inside the power hierarchy: the
 * tank running dry mid-outage must be detected as an event, fall back
 * to whatever battery charge remains, and finally lose power.
 */

#include <gtest/gtest.h>

#include "power/power_hierarchy.hh"

namespace bpsim
{
namespace
{

class Recorder : public PowerHierarchy::Listener
{
  public:
    void powerLost(Time t) override { lostAt = t; ++losses; }
    void backupDepleted(Time t) override { depletedAt = t; ++depletions; }
    void dgCarrying(Time t) override { dgAt = t; }

    Time lostAt = kTimeNever;
    Time depletedAt = kTimeNever;
    Time dgAt = kTimeNever;
    int losses = 0;
    int depletions = 0;
};

PowerHierarchy::Config
smallTank(double tank_hours, double ups_runtime_sec = 120.0)
{
    PowerHierarchy::Config c;
    c.hasUps = true;
    c.ups.powerCapacityW = 1000.0;
    c.ups.runtimeAtRatedSec = ups_runtime_sec;
    c.hasDg = true;
    c.dg.powerCapacityW = 1000.0;
    c.dg.fuelCapacityJ = 1000.0 * tank_hours * 3600.0;
    return c;
}

TEST(DieselFuel, TankRunsDryAtThePredictedTime)
{
    Simulator sim;
    Utility u(sim);
    PowerHierarchy h(sim, u, smallTank(1.0)); // one hour at this load
    Recorder rec;
    h.addListener(&rec);
    h.setLoad(1000.0);
    u.scheduleOutage(kMinute, 6 * kHour);
    sim.runUntil(8 * kHour);
    ASSERT_EQ(rec.losses, 1);
    // DG carries from ~2.4 min; the tank (1 h at 1 kW, minus the ramp
    // share it already burned) empties roughly an hour later; the
    // drained 2-minute battery cannot absorb it.
    EXPECT_GT(rec.lostAt, kMinute + 50 * kMinute);
    EXPECT_LT(rec.lostAt, kMinute + 80 * kMinute);
    // Two depletion notifications: the tank, then the (nearly drained)
    // bridge battery it fell back to.
    EXPECT_GE(rec.depletions, 1);
}

TEST(DieselFuel, BatteryAbsorbsTheDryTankIfCharged)
{
    // A large battery picks up the load when the tank dies, covering
    // the rest of the outage.
    Simulator sim;
    Utility u(sim);
    PowerHierarchy h(sim, u, smallTank(1.0, 3600.0));
    Recorder rec;
    h.addListener(&rec);
    h.setLoad(500.0); // half load: tank ~2 h, battery stretches long
    u.scheduleOutage(kMinute, 2.5 * kHour);
    sim.runUntil(4 * kHour);
    EXPECT_EQ(rec.losses, 0);
    EXPECT_EQ(h.mode(), PowerHierarchy::Mode::OnUtility);
}

TEST(DieselFuel, GenerousDefaultTankNeverDiesInADay)
{
    Simulator sim;
    Utility u(sim);
    PowerHierarchy::Config c = smallTank(1.0);
    c.dg.fuelCapacityJ = 0.0; // default: 24 h at rated
    PowerHierarchy h(sim, u, c);
    Recorder rec;
    h.addListener(&rec);
    h.setLoad(1000.0);
    u.scheduleOutage(kMinute, 12 * kHour);
    sim.runUntil(14 * kHour);
    EXPECT_EQ(rec.losses, 0);
}

TEST(DieselFuel, RestorationBeforeDryTankIsClean)
{
    Simulator sim;
    Utility u(sim);
    PowerHierarchy h(sim, u, smallTank(1.0));
    Recorder rec;
    h.addListener(&rec);
    h.setLoad(1000.0);
    u.scheduleOutage(kMinute, 30 * kMinute); // well within the tank
    sim.runUntil(2 * kHour);
    EXPECT_EQ(rec.losses, 0);
    EXPECT_EQ(rec.depletions, 0);
    EXPECT_EQ(h.dg()->state(), DieselGenerator::State::Off);
}

} // namespace
} // namespace bpsim
