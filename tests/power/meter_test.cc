/**
 * @file
 * Tests for the PowerMeter and an energy-conservation fuzz over the
 * whole hierarchy: whenever the load is powered, the source
 * contributions must integrate to exactly the load's energy.
 */

#include <gtest/gtest.h>

#include "power/power_hierarchy.hh"
#include "sim/random.hh"

namespace bpsim
{
namespace
{

TEST(PowerMeter, RecordsPerSourceTimelines)
{
    PowerMeter m;
    m.record(0, 1000.0, 1000.0, 0.0, 0.0);
    m.record(kMinute, 1000.0, 0.0, 1000.0, 0.0);
    m.record(2 * kMinute, 1000.0, 0.0, 400.0, 600.0);
    EXPECT_DOUBLE_EQ(m.peakLoadW(0, 3 * kMinute), 1000.0);
    EXPECT_DOUBLE_EQ(m.batteryEnergyJ(0, 3 * kMinute),
                     1000.0 * 60.0 + 400.0 * 60.0);
    EXPECT_DOUBLE_EQ(m.dgEnergyJ(0, 3 * kMinute), 600.0 * 60.0);
    EXPECT_DOUBLE_EQ(m.fromUtility().integrate(0, 3 * kMinute),
                     1000.0 * 60.0);
}

TEST(PowerMeter, WindowedQueries)
{
    PowerMeter m;
    m.record(0, 500.0, 500.0, 0.0, 0.0);
    m.record(kMinute, 800.0, 800.0, 0.0, 0.0);
    EXPECT_DOUBLE_EQ(m.peakLoadW(0, 30 * kSecond), 500.0);
    EXPECT_DOUBLE_EQ(m.peakLoadW(0, 2 * kMinute), 800.0);
}

// A meter with no recordings answers every window query with the
// timelines' initial value (0): no samples is not an error state.
TEST(PowerMeter, EmptyTimelineQueriesReturnZero)
{
    const PowerMeter m;
    EXPECT_DOUBLE_EQ(m.peakLoadW(0, kMinute), 0.0);
    EXPECT_DOUBLE_EQ(m.batteryEnergyJ(0, kMinute), 0.0);
    EXPECT_DOUBLE_EQ(m.dgEnergyJ(0, kMinute), 0.0);
    EXPECT_DOUBLE_EQ(m.load().valueAt(kMinute), 0.0);
    EXPECT_DOUBLE_EQ(m.load().average(0, kMinute), 0.0);
}

// A zero-length window [t, t) contains no time: integrals are 0 and
// the extremum degenerates to the instantaneous value at t.
TEST(PowerMeter, ZeroLengthWindowHasNoEnergy)
{
    PowerMeter m;
    m.record(0, 500.0, 0.0, 500.0, 0.0);
    m.record(kMinute, 800.0, 0.0, 800.0, 0.0);
    EXPECT_DOUBLE_EQ(m.batteryEnergyJ(kMinute, kMinute), 0.0);
    EXPECT_DOUBLE_EQ(m.batteryEnergyJ(30 * kSecond, 30 * kSecond), 0.0);
    EXPECT_DOUBLE_EQ(m.peakLoadW(30 * kSecond, 30 * kSecond), 500.0);
    EXPECT_DOUBLE_EQ(m.peakLoadW(kMinute, kMinute), 800.0);
}

// Windows past the last recording extrapolate the final step: a
// piecewise-constant signal holds its last value forever.
TEST(PowerMeter, QueriesPastLastRecordHoldTheFinalValue)
{
    PowerMeter m;
    m.record(0, 500.0, 500.0, 0.0, 0.0);
    m.record(kMinute, 800.0, 0.0, 0.0, 800.0);
    EXPECT_DOUBLE_EQ(m.peakLoadW(5 * kMinute, 10 * kMinute), 800.0);
    EXPECT_DOUBLE_EQ(m.dgEnergyJ(5 * kMinute, 10 * kMinute),
                     800.0 * 5.0 * 60.0);
    // A window straddling the last record integrates the recorded
    // prefix plus the held tail.
    EXPECT_DOUBLE_EQ(m.dgEnergyJ(0, 3 * kMinute), 800.0 * 2.0 * 60.0);
    EXPECT_DOUBLE_EQ(m.load().valueAt(100 * kMinute), 800.0);
}

/**
 * Fuzz: random load changes and random outages; at every instant the
 * hierarchy claims to be powered, utility + battery + DG must equal
 * the load (energy conservation of the supply mix).
 */
class ConservationFuzz : public ::testing::TestWithParam<int>
{
};

TEST_P(ConservationFuzz, SourcesSumToLoadWhilePowered)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);

    Simulator sim;
    Utility utility(sim);
    PowerHierarchy::Config cfg;
    cfg.hasUps = true;
    cfg.ups.powerCapacityW = 2000.0;
    cfg.ups.runtimeAtRatedSec = rng.uniform(120.0, 1200.0);
    cfg.hasDg = (GetParam() % 2) == 0;
    cfg.dg.powerCapacityW = 2000.0;
    PowerHierarchy h(sim, utility, cfg);

    // Random outage schedule.
    Time cursor = fromMinutes(rng.uniform(1.0, 10.0));
    for (int k = 0; k < 3; ++k) {
        const Time dur = fromMinutes(rng.uniform(0.5, 40.0));
        utility.scheduleOutage(cursor, dur);
        cursor += dur + fromMinutes(rng.uniform(90.0, 300.0));
    }

    // Random load steps (always within the UPS rating so the only
    // loss cause is energy).
    h.setLoad(rng.uniform(100.0, 2000.0));
    for (int k = 1; k <= 40; ++k) {
        const double w = rng.uniform(0.0, 2000.0);
        sim.at(k * fromMinutes(12.0), [&h, w] { h.setLoad(w); });
    }

    const Time horizon = 10 * kHour;
    sim.runUntil(horizon);

    const auto &m = h.meter();
    // Conservation: integrate over segments where some source is
    // active; where everything is zero but load > 0, the hierarchy
    // must have been Dead.
    const double load_j =
        m.load().integrate(0, horizon);
    const double supplied_j = m.fromUtility().integrate(0, horizon) +
                              m.fromBattery().integrate(0, horizon) +
                              m.fromDg().integrate(0, horizon);
    // The PSU capacitance carries each ride-through window (~30 ms at
    // up to full load per outage) without being metered as a source.
    const double ride_through_j = 3.0 * 0.030 * 2000.0;
    if (h.powerLossCount() == 0) {
        EXPECT_LE(supplied_j, load_j + 1e-6 * (1.0 + load_j));
        EXPECT_GE(supplied_j,
                  load_j - ride_through_j - 1e-6 * (1.0 + load_j));
    } else {
        // Dead intervals are unserved: supplied <= load.
        EXPECT_LE(supplied_j, load_j + 1e-6 * (1.0 + load_j));
    }

    // The battery never reports negative charge.
    EXPECT_GE(h.ups()->battery().soc(), 0.0);
    EXPECT_LE(h.ups()->battery().soc(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConservationFuzz,
                         ::testing::Range(0, 12));

} // namespace
} // namespace bpsim
