/**
 * @file
 * HTML report tests: the writer emits one self-contained document
 * (no scripts, no external references), renders every section the
 * docs promise, escapes untrusted strings, and is byte-deterministic
 * — a pure function of the CampaignReport it is handed.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/health.hh"
#include "obs/incident.hh"
#include "obs/report.hh"
#include "sim/types.hh"

namespace bpsim
{
namespace
{

/** The annual-trial horizon (same constant the shard runner uses). */
constexpr Time kYear = 365LL * 24 * kHour;

obs::TraceEvent
ev(std::uint32_t seq, obs::EventKind kind, Time t, double a = 0.0,
   double b = 0.0, std::uint32_t incident = 0)
{
    obs::TraceEvent e;
    e.trial = 0;
    e.seq = seq;
    e.incident = incident;
    e.kind = kind;
    e.simTime = t;
    e.a = a;
    e.b = b;
    return e;
}

/** A small report with one scenario carrying real forensics. */
obs::CampaignReport
sampleReport()
{
    const std::vector<obs::TraceEvent> events = {
        ev(0, obs::EventKind::Availability, 0, 1.0),
        ev(1, obs::EventKind::OutageStart, fromMinutes(10.0), 1000.0,
           0.0, 1),
        ev(2, obs::EventKind::PowerLost, fromMinutes(10.0), 1000.0, 0.0,
           1),
        ev(3, obs::EventKind::Availability, fromMinutes(10.0), 0.0, 0.0,
           1),
        ev(4, obs::EventKind::OutageEnd, fromMinutes(20.0), 0.0, 0.0, 1),
        ev(5, obs::EventKind::Availability, fromMinutes(20.0), 1.0, 0.0,
           1),
        ev(6, obs::EventKind::TrialEnd, kYear, 10.0, 4.2),
    };

    obs::CampaignReport report;
    report.provenance = {{"build", "report-test"}, {"seed", "2014"}};

    obs::ReportScenario rs;
    rs.name = "DG-SmallPUPS";
    rs.trials = 8;
    rs.meanDowntimeMin = 10.0;
    rs.p99DowntimeMin = 10.0;
    rs.lossFreeFraction = 0.875;
    rs.lossFreeLo = 0.5;
    rs.lossFreeHi = 0.99;
    rs.forensics = obs::buildIncidentReport(events);
    rs.health = obs::checkHealth(events, nullptr, &rs.forensics);

    obs::ReportLane lane;
    lane.trial = 0;
    lane.signal = obs::SignalId::BatterySoc;
    lane.points = {{0, 1.0}, {fromMinutes(10.0), 0.4}, {kYear, 1.0}};
    rs.lanes.push_back(lane);

    report.scenarios.push_back(std::move(rs));
    return report;
}

std::string
render(const obs::CampaignReport &report)
{
    std::ostringstream os;
    obs::writeHtmlReport(os, report);
    return os.str();
}

TEST(HtmlReport, RendersEverySection)
{
    const std::string html = render(sampleReport());

    EXPECT_NE(html.find("<!doctype html>"), std::string::npos);
    EXPECT_NE(html.find("<style>"), std::string::npos);
    EXPECT_NE(html.find("Backup-power campaign report"),
              std::string::npos);
    // Provenance, scenario, attribution, incidents, health, lanes,
    // rule book, footer.
    EXPECT_NE(html.find("report-test"), std::string::npos);
    EXPECT_NE(html.find("DG-SmallPUPS"), std::string::npos);
    EXPECT_NE(html.find("capacity-shortfall"), std::string::npos);
    EXPECT_NE(html.find("battery_soc"), std::string::npos);
    EXPECT_NE(html.find("<svg"), std::string::npos);
    EXPECT_NE(html.find("Rule book"), std::string::npos);
    EXPECT_NE(html.find("Self-contained report"), std::string::npos);
    // Every declared health rule appears in the rule book.
    for (const auto &rule : obs::healthRules())
        EXPECT_NE(html.find(rule.name), std::string::npos) << rule.name;
}

TEST(HtmlReport, IsSelfContained)
{
    const std::string html = render(sampleReport());
    EXPECT_EQ(html.find("<script"), std::string::npos);
    EXPECT_EQ(html.find("http://"), std::string::npos);
    EXPECT_EQ(html.find("https://"), std::string::npos);
    EXPECT_EQ(html.find("src="), std::string::npos);
    EXPECT_EQ(html.find("@import"), std::string::npos);
}

TEST(HtmlReport, BytesAreDeterministic)
{
    const auto report = sampleReport();
    const std::string first = render(report);
    EXPECT_FALSE(first.empty());
    EXPECT_EQ(first, render(report));
}

TEST(HtmlReport, EscapesUntrustedStrings)
{
    auto report = sampleReport();
    report.title = "<script>alert(1)</script> & co";
    report.scenarios[0].name = "a<b>&\"c\"";
    const std::string html = render(report);
    EXPECT_EQ(html.find("<script>alert"), std::string::npos);
    EXPECT_NE(html.find("&lt;script&gt;"), std::string::npos);
    EXPECT_EQ(html.find("a<b>"), std::string::npos);
}

TEST(HtmlReport, EmptyReportStillRenders)
{
    obs::CampaignReport report;
    const std::string html = render(report);
    EXPECT_NE(html.find("<!doctype html>"), std::string::npos);
    EXPECT_NE(html.find("Rule book"), std::string::npos);
}

} // namespace
} // namespace bpsim
