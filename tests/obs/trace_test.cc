/**
 * @file
 * Golden-trace determinism tests for the observability layer: a
 * fixed-seed campaign emits a trace that is byte-identical to a
 * checked-in fixture and byte-identical for ANY worker thread count
 * (the (trial, seq) sort contract of obs::TraceSink::drain). The
 * `obs` ctest label runs these under TSan in CI — the golden
 * comparison doubles as a data-race detector for the per-thread ring
 * buffers.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/json.hh"
#include "campaign/shard.hh"
#include "core/backup_config.hh"
#include "obs/obs.hh"
#include "sim/logging.hh"
#include "workload/profile.hh"

namespace bpsim
{
namespace
{

constexpr std::uint64_t kSeed = 2014;
constexpr std::uint64_t kTrials = 8;

/**
 * A DG-bearing scenario so the trace exercises the full event
 * vocabulary: outage spans, UPS discharge, DG start/online/carrying,
 * technique phases, battery SoC crossings.
 */
AnnualCampaignSpec
dgSpec()
{
    AnnualCampaignSpec spec;
    spec.profile = specJbbProfile();
    spec.nServers = 4;
    spec.technique = {TechniqueKind::ThrottleSleep, 5, 0, fromMinutes(4.0),
                      true};
    spec.config = dgSmallPUpsConfig();
    return spec;
}

/** Arm tracing for one test; restore a clean disabled state after. */
struct TracingOn
{
    TracingOn()
    {
        obs::TraceSink::instance().clear();
        obs::setEnabled(true);
    }
    ~TracingOn()
    {
        obs::setEnabled(false);
        obs::TraceSink::instance().clear();
        obs::TraceSink::instance().setMaxEventsPerTrial(65536);
    }
};

/** Run the fixed campaign on @p threads workers and drain the trace. */
std::vector<obs::TraceEvent>
runTraced(int threads)
{
    const TracingOn guard;
    ShardOptions opts;
    opts.threads = threads;
    runAnnualShard(dgSpec(), shardOf(kSeed, kTrials, 0, 1), opts);
    return obs::TraceSink::instance().drain();
}

/** Deterministic Chrome-trace serialization (fixed provenance). */
std::string
chromeTraceString(const std::vector<obs::TraceEvent> &events)
{
    std::ostringstream os;
    obs::TraceExportOptions opts;
    opts.metadata = {{"build", "golden-fixture"}, {"seed", "2014"}};
    writeChromeTrace(os, events, opts);
    return os.str();
}

TEST(GoldenTrace, ByteStableAgainstFixture)
{
    const std::string path =
        std::string(BPSIM_FIXTURE_DIR) + "/trace_v1.json";
    const std::string got = chromeTraceString(runTraced(1));

    if (std::getenv("BPSIM_WRITE_FIXTURES") != nullptr) {
        std::ofstream f(path);
        ASSERT_TRUE(f.good()) << path;
        f << got;
        GTEST_SKIP() << "fixture regenerated: " << path;
    }

    std::ifstream f(path);
    ASSERT_TRUE(f.good()) << "missing fixture " << path;
    std::ostringstream want;
    want << f.rdbuf();
    EXPECT_EQ(got, want.str())
        << "trace output drifted from the golden fixture: regenerate "
           "with BPSIM_WRITE_FIXTURES=1 if the change is intentional";
}

TEST(GoldenTrace, ByteIdenticalForAnyThreadCount)
{
    const std::string serial = chromeTraceString(runTraced(1));
    EXPECT_FALSE(serial.empty());
    for (const int threads : {4, 16}) {
        EXPECT_EQ(serial, chromeTraceString(runTraced(threads)))
            << "trace differs at " << threads << " threads";
    }
}

TEST(GoldenTrace, ExportReparsesAsJson)
{
    const std::string text = chromeTraceString(runTraced(1));
    std::string err;
    const auto doc = parseJson(text, &err);
    ASSERT_TRUE(doc.has_value()) << err;
    const JsonValue &events = doc->at("traceEvents");
    ASSERT_GT(events.size(), 0u);
    for (std::size_t i = 0; i < events.size(); ++i) {
        const JsonValue &ev = events.item(i);
        EXPECT_NE(ev.find("name"), nullptr);
        EXPECT_NE(ev.find("ph"), nullptr);
        EXPECT_NE(ev.find("ts"), nullptr);
        EXPECT_NE(ev.find("tid"), nullptr);
    }
    EXPECT_EQ(doc->at("metadata").at("build").asString(),
              "golden-fixture");
}

TEST(GoldenTrace, EventStreamIsWellFormed)
{
    const auto events = runTraced(1);
    ASSERT_FALSE(events.empty());

    std::map<std::uint64_t, std::uint32_t> next_seq;
    std::uint64_t trial_starts = 0, outage_b = 0, outage_e = 0;
    std::uint64_t dg_starts = 0, dg_carrying = 0, phases = 0;
    for (const auto &ev : events) {
        EXPECT_LT(ev.trial, kTrials);
        // (trial, seq) must be the dense per-trial emission order.
        EXPECT_EQ(ev.seq, next_seq[ev.trial]++);
        switch (ev.kind) {
          case obs::EventKind::TrialStart: ++trial_starts; break;
          case obs::EventKind::OutageStart: ++outage_b; break;
          case obs::EventKind::OutageEnd: ++outage_e; break;
          case obs::EventKind::DgStart: ++dg_starts; break;
          case obs::EventKind::DgCarrying: ++dg_carrying; break;
          case obs::EventKind::Phase:
            ++phases;
            EXPECT_NE(ev.detail[0], '\0')
                << "phase events carry the technique name";
            break;
          default: break;
        }
    }
    EXPECT_EQ(trial_starts, kTrials);
    EXPECT_GT(outage_b, 0u);
    // An outage can straddle the end of the simulated year, so spans
    // may be left open — but never closed more often than opened.
    EXPECT_LE(outage_e, outage_b);
    EXPECT_GT(dg_starts, 0u) << "DG scenario must crank the generator";
    EXPECT_GT(dg_carrying, 0u);
    EXPECT_GT(phases, 0u);
}

TEST(GoldenTrace, CountersAgreeWithTraceEvents)
{
    const TracingOn guard;
    ShardOptions opts;
    opts.threads = 1;
    const ShardResult shard =
        runAnnualShard(dgSpec(), shardOf(kSeed, kTrials, 0, 1), opts);
    const auto events = obs::TraceSink::instance().drain();

    std::uint64_t outages = 0, dg_starts = 0;
    for (const auto &ev : events) {
        if (ev.kind == obs::EventKind::OutageStart)
            ++outages;
        if (ev.kind == obs::EventKind::DgStart)
            ++dg_starts;
    }
    ASSERT_NE(shard.counters.find("power.outages"),
              shard.counters.end());
    EXPECT_EQ(shard.counters.at("power.outages"), outages);
    ASSERT_NE(shard.counters.find("dg.starts"), shard.counters.end());
    EXPECT_EQ(shard.counters.at("dg.starts"), dg_starts);
}

TEST(GoldenTrace, PerTrialCapDropsDeterministically)
{
    constexpr std::uint32_t kCap = 4;

    const auto full = runTraced(1);
    std::vector<obs::TraceEvent> want;
    for (const auto &ev : full) {
        if (ev.seq < kCap)
            want.push_back(ev);
    }

    const TracingOn guard;
    obs::TraceSink::instance().setMaxEventsPerTrial(kCap);
    ShardOptions opts;
    opts.threads = 1;
    runAnnualShard(dgSpec(), shardOf(kSeed, kTrials, 0, 1), opts);
    EXPECT_EQ(obs::TraceSink::instance().droppedEvents(),
              full.size() - want.size());
    const auto capped = obs::TraceSink::instance().drain();

    // The cap keeps exactly the first kCap emissions of every trial —
    // seq keeps advancing past the cap, so which events survive does
    // not depend on ring occupancy or thread count.
    ASSERT_EQ(capped.size(), want.size());
    for (std::size_t i = 0; i < capped.size(); ++i) {
        EXPECT_EQ(capped[i].trial, want[i].trial);
        EXPECT_EQ(capped[i].seq, want[i].seq);
        EXPECT_EQ(capped[i].kind, want[i].kind);
        EXPECT_EQ(capped[i].simTime, want[i].simTime);
    }
}

TEST(TrialScope, NestsAndTagsEvents)
{
    const TracingOn guard;
    {
        const obs::TrialScope outer(5);
        obs::TraceSink::emit(obs::EventKind::Custom, 10, "outer-a");
        {
            const obs::TrialScope inner(7);
            obs::TraceSink::emit(obs::EventKind::Custom, 20, "inner");
        }
        obs::TraceSink::emit(obs::EventKind::Custom, 30, "outer-b");
    }
    const auto events = obs::TraceSink::instance().drain();
    // Two TrialStart markers plus the three Custom events.
    ASSERT_EQ(events.size(), 5u);
    EXPECT_EQ(events[0].trial, 5u); // trial-start(5)
    EXPECT_EQ(events[1].trial, 5u); // outer-a
    EXPECT_EQ(events[1].seq, 1u);
    EXPECT_EQ(events[2].trial, 5u); // outer-b resumes the outer seq
    EXPECT_EQ(events[2].seq, 2u);
    EXPECT_STREQ(events[2].name, "outer-b");
    EXPECT_EQ(events[3].trial, 7u); // trial-start(7)
    EXPECT_EQ(events[4].trial, 7u); // inner
    EXPECT_EQ(events[4].seq, 1u);
}

TEST(EventVocabulary, NamesAndCategoriesAreExhaustive)
{
    // Every EventKind — including ones added later — must carry a
    // real name and category: exporters and the forensics report
    // render these strings, and "unknown" in a trace means someone
    // extended the enum without teaching the vocabulary functions.
    std::set<std::string> names;
    for (std::size_t i = 0; i < obs::kEventKindCount; ++i) {
        const auto kind = static_cast<obs::EventKind>(i);
        const char *name = obs::kindName(kind);
        ASSERT_NE(name, nullptr) << "kind " << i;
        EXPECT_STRNE(name, "") << "kind " << i;
        EXPECT_STRNE(name, "unknown") << "kind " << i;
        names.insert(name);
        const char *category = obs::kindCategory(kind);
        ASSERT_NE(category, nullptr) << "kind " << i;
        EXPECT_STRNE(category, "") << "kind " << i;
        EXPECT_STRNE(category, "unknown") << "kind " << i;
    }
    EXPECT_EQ(names.size(), obs::kEventKindCount)
        << "kind names must be pairwise distinct";
}

TEST(TraceSink, EmitIsANoOpWhileDisabled)
{
    obs::TraceSink::instance().clear();
    ASSERT_FALSE(obs::enabled());
    obs::TraceSink::emit(obs::EventKind::Custom, 1, "ignored");
    EXPECT_TRUE(obs::TraceSink::instance().drain().empty());
}

} // namespace
} // namespace bpsim
