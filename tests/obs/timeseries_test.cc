/**
 * @file
 * Time-series sampler tests: the drained sample stream is
 * bit-identical for any worker thread count (the (trial, signal, t)
 * sort contract), sampling is armed only by the cadence knob, the
 * columnar store indexes channels contiguously, and LTTB
 * downsampling is a deterministic, endpoint-preserving pure function.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "campaign/shard.hh"
#include "core/backup_config.hh"
#include "obs/obs.hh"
#include "sim/random.hh"
#include "workload/profile.hh"

namespace bpsim
{
namespace
{

using obs::SeriesPoint;
using obs::SignalId;
using obs::SignalSample;
using obs::TimeSeriesSink;
using obs::TimeSeriesStore;

constexpr std::uint64_t kSeed = 2014;
constexpr std::uint64_t kTrials = 6;

AnnualCampaignSpec
dgSpec()
{
    AnnualCampaignSpec spec;
    spec.profile = specJbbProfile();
    spec.nServers = 4;
    spec.technique = {TechniqueKind::ThrottleSleep, 5, 0, fromMinutes(4.0),
                      true};
    spec.config = dgSmallPUpsConfig();
    return spec;
}

/** Arm obs + a sampling cadence; restore the quiet default after. */
struct SamplingOn
{
    explicit SamplingOn(Time cadence)
    {
        TimeSeriesSink::instance().clear();
        obs::TraceSink::instance().clear();
        obs::setEnabled(true);
        obs::setSampleCadence(cadence);
    }
    ~SamplingOn()
    {
        obs::setSampleCadence(0);
        obs::setEnabled(false);
        TimeSeriesSink::instance().clear();
        obs::TraceSink::instance().clear();
    }
};

bool
sameSamples(const std::vector<SignalSample> &a,
            const std::vector<SignalSample> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].trial != b[i].trial || a[i].t != b[i].t ||
            a[i].signal != b[i].signal ||
            std::memcmp(&a[i].value, &b[i].value, sizeof(double)) != 0)
            return false;
    }
    return true;
}

std::vector<SignalSample>
runSampled(int threads, Time cadence)
{
    const SamplingOn guard(cadence);
    ShardOptions opts;
    opts.threads = threads;
    runAnnualShard(dgSpec(), shardOf(kSeed, kTrials, 0, 1), opts);
    return TimeSeriesSink::instance().drain();
}

TEST(TimeSeries, SamplerCoversEverySignalAtTheCadence)
{
    constexpr Time kCadence = 24 * kHour;
    const auto rows = runSampled(1, kCadence);
    ASSERT_FALSE(rows.empty());

    // One sample per signal per cadence tick per trial: ticks at
    // t = 0, cadence, ..., kYear inclusive.
    constexpr std::uint64_t kTicks = 365 + 1;
    EXPECT_EQ(rows.size(), kTrials * obs::kSignalCount * kTicks);

    for (const auto &r : rows) {
        EXPECT_LT(r.trial, kTrials);
        EXPECT_EQ(r.t % kCadence, 0);
    }
    // Spot physical invariants on a stream that includes outages.
    for (const auto &r : rows) {
        if (r.signal == SignalId::BatterySoc) {
            EXPECT_GE(r.value, 0.0);
            EXPECT_LE(r.value, 1.0 + 1e-12);
        }
        if (r.signal == SignalId::ServersActive) {
            EXPECT_GE(r.value, 0.0);
            EXPECT_LE(r.value, 4.0);
        }
    }
}

TEST(TimeSeries, BitIdenticalForAnyThreadCount)
{
    constexpr Time kCadence = 24 * kHour;
    const auto serial = runSampled(1, kCadence);
    ASSERT_FALSE(serial.empty());
    for (const int threads : {4, 16}) {
        EXPECT_TRUE(sameSamples(serial, runSampled(threads, kCadence)))
            << "sample stream differs at " << threads << " threads";
    }
}

TEST(TimeSeries, ZeroCadenceSchedulesNoSampling)
{
    const auto rows = runSampled(1, 0);
    EXPECT_TRUE(rows.empty());
}

TEST(TimeSeries, EmitIsANoOpWhileDisabled)
{
    TimeSeriesSink::instance().clear();
    ASSERT_FALSE(obs::enabled());
    TimeSeriesSink::emit(SignalId::LoadW, 1, 2.0);
    EXPECT_TRUE(TimeSeriesSink::instance().drain().empty());
}

TEST(TimeSeriesStore, ChannelsAreContiguousAndSorted)
{
    const auto rows = runSampled(1, 7 * 24 * kHour);
    const auto store = TimeSeriesStore::fromSamples(rows);
    ASSERT_EQ(store.rows(), rows.size());

    std::size_t covered = 0;
    std::tuple<std::uint64_t, int> prev{0, -1};
    for (const auto &ch : store.channels()) {
        EXPECT_EQ(ch.begin, covered);
        ASSERT_LT(ch.begin, ch.end);
        covered = ch.end;
        // Channel keys strictly increase in (trial, signal).
        const std::tuple<std::uint64_t, int> key{
            ch.trial, static_cast<int>(ch.signal)};
        EXPECT_GT(key, prev);
        prev = key;
        for (std::size_t i = ch.begin; i < ch.end; ++i) {
            EXPECT_EQ(store.trials()[i], ch.trial);
            EXPECT_EQ(store.signals()[i], ch.signal);
            if (i > ch.begin) {
                EXPECT_GT(store.times()[i], store.times()[i - 1]);
            }
        }
    }
    EXPECT_EQ(covered, store.rows());
    // One channel per (trial, signal) pair.
    EXPECT_EQ(store.channels().size(), kTrials * obs::kSignalCount);
}

TEST(TimeSeriesCsv, HeaderAndOneRowPerSample)
{
    std::vector<SignalSample> rows = {
        {0, 0, SignalId::LoadW, 100.0},
        {0, 1000000, SignalId::LoadW, 150.5},
        {1, 0, SignalId::BatterySoc, 1.0},
    };
    std::ostringstream os;
    writeTimeSeriesCsv(os, TimeSeriesStore::fromSamples(rows));
    const std::string text = os.str();
    EXPECT_EQ(text.rfind("trial,signal,sim_us,value\n", 0), 0u);
    EXPECT_NE(text.find("0,load_w,0,100\n"), std::string::npos);
    EXPECT_NE(text.find("0,load_w,1000000,150.5\n"), std::string::npos);
    EXPECT_NE(text.find("1,battery_soc,0,1\n"), std::string::npos);
    EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);
}

// ---------------------------------------------------------------------
// LTTB

std::vector<SeriesPoint>
sinePoints(std::size_t n)
{
    std::vector<SeriesPoint> pts(n);
    for (std::size_t i = 0; i < n; ++i)
        pts[i] = {static_cast<Time>(i * 1000),
                  std::sin(static_cast<double>(i) * 0.05)};
    return pts;
}

TEST(Lttb, KeepsEndpointsAndHonorsBudget)
{
    const auto pts = sinePoints(5000);
    for (const std::size_t budget : {3u, 10u, 100u, 999u}) {
        const auto ds = obs::lttb(pts, budget);
        ASSERT_EQ(ds.size(), budget);
        EXPECT_EQ(ds.front().t, pts.front().t);
        EXPECT_EQ(ds.back().t, pts.back().t);
        // Timestamps stay strictly increasing.
        for (std::size_t i = 1; i < ds.size(); ++i)
            EXPECT_GT(ds[i].t, ds[i - 1].t);
    }
}

TEST(Lttb, PassesSmallInputsThrough)
{
    const auto pts = sinePoints(50);
    const auto same = obs::lttb(pts, 50);
    ASSERT_EQ(same.size(), pts.size());
    for (std::size_t i = 0; i < pts.size(); ++i) {
        EXPECT_EQ(same[i].t, pts[i].t);
        EXPECT_EQ(same[i].value, pts[i].value);
    }
    EXPECT_EQ(obs::lttb(pts, 100).size(), pts.size());
    EXPECT_EQ(obs::lttb({}, 10).size(), 0u);
}

TEST(Lttb, KeepsExtremesOfASpike)
{
    auto pts = sinePoints(1000);
    pts[500].value = 100.0; // a spike LTTB must not smooth away
    const auto ds = obs::lttb(pts, 50);
    const bool kept =
        std::any_of(ds.begin(), ds.end(), [](const SeriesPoint &p) {
            return p.value == 100.0;
        });
    EXPECT_TRUE(kept);
}

} // namespace
} // namespace bpsim
