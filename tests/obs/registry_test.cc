/**
 * @file
 * Property tests for the obs metric registry and exporters: counter
 * merge is associative/commutative (the shard-merge invariant), timer
 * accumulation is monotonic, every exported JSON document re-parses
 * with parseJson and matches the in-memory snapshot, and shard files
 * carry counters through a byte-stable round trip.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/json.hh"
#include "campaign/shard.hh"
#include "core/backup_config.hh"
#include "obs/obs.hh"
#include "workload/profile.hh"

namespace bpsim
{
namespace
{

using CounterMap = std::map<std::string, std::uint64_t>;

CounterMap
merged(const CounterMap &a, const CounterMap &b)
{
    CounterMap out = a;
    obs::mergeCounters(out, b);
    return out;
}

TEST(Counters, MergeIsAssociativeAndCommutative)
{
    const CounterMap a{{"x", 1}, {"y", 10}};
    const CounterMap b{{"y", 5}, {"z", 7}};
    const CounterMap c{{"x", 100}, {"z", 3}};

    EXPECT_EQ(merged(merged(a, b), c), merged(a, merged(b, c)));
    EXPECT_EQ(merged(a, b), merged(b, a));
    EXPECT_EQ(merged(a, CounterMap{}), a);

    const CounterMap all = merged(merged(a, b), c);
    EXPECT_EQ(all.at("x"), 101u);
    EXPECT_EQ(all.at("y"), 15u);
    EXPECT_EQ(all.at("z"), 10u);
}

TEST(Counters, SubtractCountsFromZeroAndOmitsZeroDeltas)
{
    const CounterMap before{{"seen", 10}, {"flat", 4}};
    const CounterMap after{{"seen", 25}, {"flat", 4}, {"fresh", 3}};
    const CounterMap delta = obs::subtractCounters(after, before);
    EXPECT_EQ(delta.size(), 2u);
    EXPECT_EQ(delta.at("seen"), 15u);
    EXPECT_EQ(delta.at("fresh"), 3u); // absent from `before` = from 0
    EXPECT_EQ(delta.find("flat"), delta.end());
}

TEST(Registry, CounterGaugeTimerRoundTripValues)
{
    auto &reg = obs::Registry::global();
    reg.reset();
    reg.counter("t.count").add(3);
    reg.counter("t.count").add(2);
    reg.gauge("t.gauge").set(-1234.5);
    reg.timer("t.timer").add(1500000000); // 1.5 s

    EXPECT_EQ(reg.counterSnapshot().at("t.count"), 5u);
    EXPECT_EQ(reg.gaugeSnapshot().at("t.gauge"), -1234.5);
    EXPECT_DOUBLE_EQ(reg.timerSnapshot().at("t.timer").seconds, 1.5);
    EXPECT_EQ(reg.timerSnapshot().at("t.timer").count, 1u);

    // reset() zeroes values but keeps registrations (and references).
    obs::Counter &cached = reg.counter("t.count");
    reg.reset();
    EXPECT_EQ(reg.counterSnapshot().at("t.count"), 0u);
    cached.add(1);
    EXPECT_EQ(reg.counterSnapshot().at("t.count"), 1u);
}

TEST(Registry, TimersAccumulateMonotonically)
{
    auto &reg = obs::Registry::global();
    reg.reset();
    obs::setEnabled(true);
    {
        const auto t = obs::scope("t.mono");
    }
    const auto first = reg.timerSnapshot().at("t.mono");
    EXPECT_EQ(first.count, 1u);
    EXPECT_GE(first.seconds, 0.0);
    {
        const auto t = obs::scope("t.mono");
    }
    const auto second = reg.timerSnapshot().at("t.mono");
    obs::setEnabled(false);
    EXPECT_EQ(second.count, 2u);
    EXPECT_GE(second.seconds, first.seconds);
}

TEST(Registry, ScopeIsInertWhileDisabled)
{
    auto &reg = obs::Registry::global();
    reg.reset();
    ASSERT_FALSE(obs::enabled());
    {
        const auto t = obs::scope("t.never");
    }
    const auto snapshot = reg.timerSnapshot();
    EXPECT_EQ(snapshot.find("t.never"), snapshot.end());
}

TEST(MetricsJson, RoundTripsThroughParseJson)
{
    auto &reg = obs::Registry::global();
    reg.reset();
    reg.counter("events").add(42);
    reg.gauge("trials_per_sec").set(12345.0625);
    reg.timer("run").add(2000000000); // 2 s

    std::ostringstream os;
    writeMetricsJson(os, reg,
                     {{"build", "test-build"}, {"seed", "99"}});

    std::string err;
    const auto doc = parseJson(os.str(), &err);
    ASSERT_TRUE(doc.has_value()) << err;
    EXPECT_EQ(doc->at("schema").asString(), "bpsim.obs.metrics");
    EXPECT_EQ(doc->at("build").asString(), "test-build");
    EXPECT_EQ(doc->at("seed").asString(), "99");
    EXPECT_EQ(doc->at("counters").at("events").asUint(), 42u);
    EXPECT_EQ(doc->at("gauges").at("trials_per_sec").asDouble(),
              12345.0625);
    EXPECT_DOUBLE_EQ(doc->at("timers").at("run").at("seconds").asDouble(),
                     2.0);
    EXPECT_EQ(doc->at("timers").at("run").at("count").asUint(), 1u);
}

TEST(ChromeTrace, RoundTripsThroughParseJson)
{
    std::vector<obs::TraceEvent> events;
    obs::TraceEvent begin;
    begin.trial = 3;
    begin.seq = 0;
    begin.kind = obs::EventKind::OutageStart;
    begin.simTime = 1000;
    begin.name = "outage";
    begin.a = 2500.25;
    events.push_back(begin);

    obs::TraceEvent inst;
    inst.trial = 3;
    inst.seq = 1;
    inst.kind = obs::EventKind::Custom;
    inst.simTime = 1500;
    inst.name = "note";
    inst.a = std::numeric_limits<double>::infinity(); // must clamp
    inst.setDetail("say \"hi\"\\");                   // must escape
    events.push_back(inst);

    obs::TraceEvent end = begin;
    end.seq = 2;
    end.kind = obs::EventKind::OutageEnd;
    end.simTime = 9000;
    events.push_back(end);

    std::ostringstream os;
    obs::TraceExportOptions opts;
    opts.metadata = {{"k", "v"}};
    writeChromeTrace(os, events, opts);

    std::string err;
    const auto doc = parseJson(os.str(), &err);
    ASSERT_TRUE(doc.has_value()) << err;
    const JsonValue &tes = doc->at("traceEvents");
    ASSERT_EQ(tes.size(), 3u);
    EXPECT_EQ(tes.item(0).at("ph").asString(), "B");
    EXPECT_EQ(tes.item(0).at("ts").asInt(), 1000);
    EXPECT_EQ(tes.item(0).at("tid").asUint(), 3u);
    EXPECT_EQ(tes.item(0).at("args").at("a").asDouble(), 2500.25);
    EXPECT_EQ(tes.item(1).at("ph").asString(), "i");
    EXPECT_EQ(tes.item(1).at("args").at("a").asDouble(), 0.0)
        << "non-finite payloads must clamp to 0";
    EXPECT_EQ(tes.item(1).at("args").at("detail").asString(),
              "say \"hi\"\\");
    EXPECT_EQ(tes.item(2).at("ph").asString(), "E");
    EXPECT_EQ(doc->at("metadata").at("k").asString(), "v");
}

TEST(TraceCsv, OneHeaderAndOneRowPerEvent)
{
    std::vector<obs::TraceEvent> events(3);
    for (std::size_t i = 0; i < events.size(); ++i) {
        events[i].trial = 1;
        events[i].seq = static_cast<std::uint32_t>(i);
        events[i].kind = obs::EventKind::Custom;
        events[i].name = "row";
        events[i].simTime = static_cast<Time>(i) * 10;
    }
    std::ostringstream os;
    writeTraceCsv(os, events);
    std::istringstream is(os.str());
    std::string line;
    std::vector<std::string> lines;
    while (std::getline(is, line))
        lines.push_back(line);
    ASSERT_EQ(lines.size(), 4u);
    EXPECT_EQ(lines[0], "trial,seq,incident,category,event,name,detail,sim_us,a,b");
    EXPECT_EQ(lines[2], "1,1,0,custom,custom,row,,10,0,0");
}

TEST(ShardCounters, RideShardFilesAndMergeKeyWise)
{
    AnnualCampaignSpec spec;
    spec.profile = specJbbProfile();
    spec.nServers = 4;
    spec.technique = {TechniqueKind::Throttle, 5, 0, 0, false};
    spec.config = noDgConfig();
    constexpr std::uint64_t kSeed = 99, kTrials = 32;

    obs::TraceSink::instance().clear();
    obs::setEnabled(true);
    const ShardResult whole =
        runAnnualShard(spec, shardOf(kSeed, kTrials, 0, 1), {});
    std::vector<ShardResult> halves;
    for (std::uint64_t i = 0; i < 2; ++i)
        halves.push_back(
            runAnnualShard(spec, shardOf(kSeed, kTrials, i, 2), {}));
    obs::setEnabled(false);
    obs::TraceSink::instance().clear();

    ASSERT_FALSE(whole.counters.empty());
    EXPECT_GT(whole.counters.at("power.outages"), 0u);

    // Shard counter deltas recombine to the unsharded run's counts.
    CounterMap recombined;
    obs::mergeCounters(recombined, halves[0].counters);
    obs::mergeCounters(recombined, halves[1].counters);
    EXPECT_EQ(recombined, whole.counters);

    // Counters survive the shard-file round trip byte-stably.
    std::ostringstream os;
    writeShardJson(os, halves[0]);
    std::string err;
    const auto back = readShardJson(os.str(), &err);
    ASSERT_TRUE(back.has_value()) << err;
    EXPECT_EQ(back->counters, halves[0].counters);
    std::ostringstream os2;
    writeShardJson(os2, *back);
    EXPECT_EQ(os.str(), os2.str());

    // And mergeShards folds them into the campaign aggregates.
    std::string merr;
    const auto merged = mergeShards(halves, nullptr, &merr);
    ASSERT_TRUE(merged.has_value()) << merr;
    EXPECT_EQ(merged->counters, whole.counters);
}

TEST(ShardCounters, AbsentWhenObservabilityIsDisabled)
{
    AnnualCampaignSpec spec;
    spec.profile = specJbbProfile();
    spec.nServers = 4;
    spec.technique = {TechniqueKind::Throttle, 5, 0, 0, false};
    spec.config = noDgConfig();

    ASSERT_FALSE(obs::enabled());
    const ShardResult shard =
        runAnnualShard(spec, shardOf(99, 8, 0, 1), {});
    EXPECT_TRUE(shard.counters.empty());

    // ...and the shard file then has no "counters" member at all, so
    // uninstrumented files keep the exact schema-v1 bytes.
    std::ostringstream os;
    writeShardJson(os, shard);
    EXPECT_EQ(os.str().find("\"counters\""), std::string::npos);
}

} // namespace
} // namespace bpsim
