/**
 * @file
 * Incident-engine tests: synthetic event streams pin the attribution
 * semantics (zero-downtime outages, back-to-back episodes, incidents
 * truncated by the trial horizon, cause classification, recompute
 * debt), and fixed-seed campaigns pin the determinism contract — the
 * merged IncidentAggregate is bit-identical for any worker thread
 * count and any shard partition, frozen by the committed golden
 * fixture tests/obs/fixtures/incidents_v1.json.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/json.hh"
#include "campaign/shard.hh"
#include "core/backup_config.hh"
#include "obs/incident.hh"
#include "obs/obs.hh"
#include "sim/logging.hh"
#include "workload/profile.hh"

namespace bpsim
{
namespace
{

constexpr std::uint64_t kSeed = 2014;
constexpr std::uint64_t kTrials = 8;
/** The annual-trial horizon (same constant the shard runner uses). */
constexpr Time kYear = 365LL * 24 * kHour;

/** A downtime-heavy scenario so attribution has real minutes to
 *  bucket (the MinCost configuration loses power most years). */
AnnualCampaignSpec
lossySpec()
{
    AnnualCampaignSpec spec;
    spec.profile = specJbbProfile();
    spec.nServers = 4;
    spec.technique = {TechniqueKind::ThrottleSleep, 5, 0, fromMinutes(4.0),
                      true};
    spec.config = minCostConfig();
    return spec;
}

/** Arm tracing for one test; restore a clean disabled state after. */
struct TracingOn
{
    TracingOn()
    {
        obs::TraceSink::instance().clear();
        obs::setEnabled(true);
    }
    ~TracingOn()
    {
        obs::setEnabled(false);
        obs::TraceSink::instance().clear();
    }
};

/** Build one synthetic event (trial 0 unless overridden). */
obs::TraceEvent
ev(std::uint32_t seq, obs::EventKind kind, Time t, double a = 0.0,
   double b = 0.0, std::uint32_t incident = 0,
   std::uint64_t trial = 0)
{
    obs::TraceEvent e;
    e.trial = trial;
    e.seq = seq;
    e.incident = incident;
    e.kind = kind;
    e.simTime = t;
    e.a = a;
    e.b = b;
    return e;
}

/** Canonical JSON bytes of an aggregate (the bit-identity probe). */
std::string
aggregateJson(const obs::IncidentAggregate &a)
{
    std::ostringstream os;
    JsonWriter w(os);
    a.writeJson(w);
    return os.str();
}

double
causeMin(const obs::CauseMinutes &m, obs::RootCause c)
{
    return m[static_cast<std::size_t>(c)];
}

TEST(IncidentEngine, ZeroDowntimeOutageStillReconstructs)
{
    using obs::EventKind;
    std::vector<obs::TraceEvent> events = {
        ev(0, EventKind::TrialStart, 0),
        ev(1, EventKind::Availability, 0, 1.0),
        ev(2, EventKind::OutageStart, fromMinutes(10.0), 5000.0, 0.0, 1),
        ev(3, EventKind::UpsDischarge, fromMinutes(10.0), 5000.0, 0.0, 1),
        ev(4, EventKind::OutageEnd, fromMinutes(12.0), 0.0, 0.0, 1),
        ev(5, EventKind::TrialEnd, kYear, 0.0, 0.0),
    };
    const auto report = obs::buildIncidentReport(events);

    ASSERT_EQ(report.incidents.size(), 1u);
    const obs::Incident &inc = report.incidents[0];
    EXPECT_EQ(inc.id, 1u);
    EXPECT_EQ(inc.outageStart, fromMinutes(10.0));
    EXPECT_EQ(inc.outageEnd, fromMinutes(12.0));
    EXPECT_EQ(inc.windowEnd, kYear);
    EXPECT_FALSE(inc.truncated);
    EXPECT_TRUE(inc.upsDischarged);
    EXPECT_EQ(inc.powerLosses, 0u);
    EXPECT_DOUBLE_EQ(inc.downtimeMin(), 0.0);

    ASSERT_EQ(report.trials.size(), 1u);
    EXPECT_DOUBLE_EQ(report.trials[0].attributedTotalMin(), 0.0);
    EXPECT_DOUBLE_EQ(report.trials[0].residualMin(), 0.0);
    EXPECT_EQ(report.aggregate.incidents(), 1u);
    EXPECT_EQ(report.aggregate.lossIncidents(), 0u);
}

TEST(IncidentEngine, BackToBackOutagesSplitTheWindow)
{
    using obs::EventKind;
    // Episode 1: powered but half-degraded for 20 min (a technique
    // gap straddling restoration). Episode 2: fully dark for 10 min
    // with no DG in play (capacity shortfall).
    std::vector<obs::TraceEvent> events = {
        ev(0, EventKind::Availability, 0, 1.0),
        ev(1, EventKind::OutageStart, fromMinutes(60.0), 1000.0, 0.0, 1),
        ev(2, EventKind::Availability, fromMinutes(60.0), 0.5, 0.0, 1),
        ev(3, EventKind::OutageEnd, fromMinutes(70.0), 0.0, 0.0, 1),
        ev(4, EventKind::Availability, fromMinutes(80.0), 1.0),
        ev(5, EventKind::OutageStart, fromMinutes(100.0), 1000.0, 0.0, 2),
        ev(6, EventKind::PowerLost, fromMinutes(100.0), 1000.0, 0.0, 2),
        ev(7, EventKind::Availability, fromMinutes(100.0), 0.0, 0.0, 2),
        ev(8, EventKind::OutageEnd, fromMinutes(110.0), 0.0, 0.0, 2),
        ev(9, EventKind::Availability, fromMinutes(110.0), 1.0, 0.0, 2),
        ev(10, EventKind::TrialEnd, kYear, 20.0, 0.0),
    };
    const auto report = obs::buildIncidentReport(events);

    ASSERT_EQ(report.incidents.size(), 2u);
    const obs::Incident &first = report.incidents[0];
    const obs::Incident &second = report.incidents[1];

    EXPECT_EQ(first.id, 1u);
    // The first window ends where the second outage begins.
    EXPECT_EQ(first.windowEnd, fromMinutes(100.0));
    EXPECT_NEAR(causeMin(first.attributedMin,
                         obs::RootCause::TechniqueTransitionGap),
                10.0, 1e-9);
    EXPECT_EQ(first.primaryCause(),
              obs::RootCause::TechniqueTransitionGap);

    EXPECT_EQ(second.id, 2u);
    EXPECT_EQ(second.powerLosses, 1u);
    EXPECT_EQ(second.firstPowerLostAt, fromMinutes(100.0));
    EXPECT_EQ(second.darkTime, fromMinutes(10.0));
    EXPECT_NEAR(causeMin(second.attributedMin,
                         obs::RootCause::CapacityShortfall),
                10.0, 1e-9);

    ASSERT_EQ(report.trials.size(), 1u);
    const obs::TrialForensics &t = report.trials[0];
    EXPECT_EQ(t.incidents, 2u);
    EXPECT_NEAR(t.attributedTotalMin(), 20.0, 1e-9);
    EXPECT_NEAR(t.residualMin(), 0.0, 1e-9);
}

TEST(IncidentEngine, OpenIncidentAtTrialEndIsTruncated)
{
    using obs::EventKind;
    const Time start = kYear - fromMinutes(30.0);
    std::vector<obs::TraceEvent> events = {
        ev(0, EventKind::Availability, 0, 1.0),
        ev(1, EventKind::OutageStart, start, 1000.0, 0.0, 1),
        ev(2, EventKind::PowerLost, start, 1000.0, 0.0, 1),
        ev(3, EventKind::Availability, start, 0.0, 0.0, 1),
        ev(4, EventKind::TrialEnd, kYear, 30.0, 0.0),
    };
    const auto report = obs::buildIncidentReport(events);

    ASSERT_EQ(report.incidents.size(), 1u);
    const obs::Incident &inc = report.incidents[0];
    EXPECT_TRUE(inc.truncated);
    EXPECT_EQ(inc.outageEnd, kTimeNever);
    EXPECT_EQ(inc.windowEnd, kYear);
    EXPECT_EQ(inc.darkTime, fromMinutes(30.0));
    // The elapsed dark time still attributes, horizon-clipped.
    EXPECT_NEAR(causeMin(inc.attributedMin,
                         obs::RootCause::CapacityShortfall),
                30.0, 1e-9);
    EXPECT_NEAR(report.trials[0].residualMin(), 0.0, 1e-9);
    EXPECT_EQ(report.aggregate.truncatedIncidents(), 1u);
}

TEST(IncidentEngine, DarkCauseClassification)
{
    using obs::EventKind;
    // Trial 0: a DG start fails outright before the lights go out.
    // Trial 1: the DG is cranking but the battery dies first.
    std::vector<obs::TraceEvent> events = {
        ev(0, EventKind::Availability, 0, 1.0),
        ev(1, EventKind::OutageStart, fromMinutes(10.0), 1.0, 0.0, 1),
        ev(2, EventKind::DgStart, fromMinutes(10.0), 0.0, 0.0, 1),
        ev(3, EventKind::DgStartFailed, fromMinutes(10.0), 0.0, 0.0, 1),
        ev(4, EventKind::PowerLost, fromMinutes(15.0), 1.0, 0.0, 1),
        ev(5, EventKind::Availability, fromMinutes(15.0), 0.0, 0.0, 1),
        ev(6, EventKind::OutageEnd, fromMinutes(25.0), 0.0, 0.0, 1),
        ev(7, EventKind::Availability, fromMinutes(25.0), 1.0, 0.0, 1),
        ev(8, EventKind::TrialEnd, kYear, 10.0, 0.0),

        ev(0, EventKind::Availability, 0, 1.0, 0.0, 0, 1),
        ev(1, EventKind::OutageStart, fromMinutes(10.0), 1.0, 0.0, 1, 1),
        ev(2, EventKind::UpsDischarge, fromMinutes(10.0), 1.0, 0.0, 1, 1),
        ev(3, EventKind::DgStart, fromMinutes(10.0), 0.0, 0.0, 1, 1),
        ev(4, EventKind::BackupDepleted, fromMinutes(12.0), 0.0, 0.0, 1,
           1),
        ev(5, EventKind::PowerLost, fromMinutes(12.0), 1.0, 0.0, 1, 1),
        ev(6, EventKind::Availability, fromMinutes(12.0), 0.0, 0.0, 1, 1),
        ev(7, EventKind::OutageEnd, fromMinutes(20.0), 0.0, 0.0, 1, 1),
        ev(8, EventKind::Availability, fromMinutes(20.0), 1.0, 0.0, 1, 1),
        ev(9, EventKind::TrialEnd, kYear, 8.0, 0.0, 0, 1),
    };
    const auto report = obs::buildIncidentReport(events);

    ASSERT_EQ(report.incidents.size(), 2u);
    EXPECT_EQ(report.incidents[0].primaryCause(),
              obs::RootCause::DgStartFailure);
    EXPECT_NEAR(causeMin(report.incidents[0].attributedMin,
                         obs::RootCause::DgStartFailure),
                10.0, 1e-9);

    EXPECT_TRUE(report.incidents[1].backupDepleted);
    EXPECT_EQ(report.incidents[1].primaryCause(),
              obs::RootCause::UpsExhaustedBeforeDg);
    EXPECT_NEAR(causeMin(report.incidents[1].attributedMin,
                         obs::RootCause::UpsExhaustedBeforeDg),
                8.0, 1e-9);

    EXPECT_EQ(report.aggregate.incidentsByPrimaryCause(
                  obs::RootCause::DgStartFailure),
              1u);
    EXPECT_EQ(report.aggregate.incidentsByPrimaryCause(
                  obs::RootCause::UpsExhaustedBeforeDg),
              1u);
}

TEST(IncidentEngine, RecomputeDebtLandsInThePrevailingCause)
{
    using obs::EventKind;
    std::vector<obs::TraceEvent> events = {
        ev(0, EventKind::Availability, 0, 1.0),
        ev(1, EventKind::OutageStart, fromMinutes(10.0), 1.0, 0.0, 1),
        ev(2, EventKind::PowerLost, fromMinutes(10.0), 1.0, 0.0, 1),
        ev(3, EventKind::Availability, fromMinutes(10.0), 0.0, 0.0, 1),
        // 120 s of recompute debt charged while the floor is dark.
        ev(4, EventKind::Recompute, fromMinutes(10.0), 120.0, 0.0, 1),
        ev(5, EventKind::OutageEnd, fromMinutes(15.0), 0.0, 0.0, 1),
        ev(6, EventKind::Availability, fromMinutes(15.0), 1.0, 0.0, 1),
        ev(7, EventKind::TrialEnd, kYear, 7.0, 0.0),
    };
    const auto report = obs::buildIncidentReport(events);
    ASSERT_EQ(report.incidents.size(), 1u);
    // 5 dark minutes + 2 minutes of recompute debt, same bucket.
    EXPECT_NEAR(causeMin(report.incidents[0].attributedMin,
                         obs::RootCause::CapacityShortfall),
                7.0, 1e-9);
    EXPECT_NEAR(report.trials[0].residualMin(), 0.0, 1e-9);
}

TEST(IncidentEngine, AggregateJsonRoundTrips)
{
    const TracingOn guard;
    ShardOptions opts;
    opts.threads = 1;
    const ShardResult shard =
        runAnnualShard(lossySpec(), shardOf(kSeed, kTrials, 0, 1), opts);
    ASSERT_FALSE(shard.incidents.empty());

    const std::string first = aggregateJson(shard.incidents);
    std::string err;
    const auto doc = parseJson(first, &err);
    ASSERT_TRUE(doc.has_value()) << err;
    const auto rebuilt = obs::IncidentAggregate::fromJson(*doc);
    EXPECT_EQ(aggregateJson(rebuilt), first);
}

TEST(IncidentForensics, PerCauseMinutesSumExactlyToTrialTotal)
{
    const TracingOn guard;
    ShardOptions opts;
    opts.threads = 1;
    runAnnualShard(lossySpec(), shardOf(kSeed, kTrials, 0, 1), opts);
    const auto report =
        obs::buildIncidentReport(obs::TraceSink::instance().drain());

    ASSERT_EQ(report.trials.size(), kTrials);
    double attributed_any = 0.0;
    for (const auto &t : report.trials) {
        ASSERT_TRUE(t.hasTrialEnd);
        // The per-cause buckets ARE the total: summing them in enum
        // order reproduces attributedTotalMin() bit for bit.
        double sum = 0.0;
        for (const double m : t.attributedMin)
            sum += m;
        EXPECT_EQ(sum, t.attributedTotalMin());
        // And the engine's integral reconciles with the simulator's
        // own downtime accounting to float noise.
        EXPECT_NEAR(t.residualMin(), 0.0,
                    1e-6 * std::max(1.0, t.reportedDowntimeMin));
        attributed_any += sum;
    }
    EXPECT_GT(attributed_any, 0.0)
        << "the lossy scenario must produce downtime to attribute";
}

TEST(IncidentForensics, IncidentIdsAreSequentialPerTrial)
{
    const TracingOn guard;
    ShardOptions opts;
    opts.threads = 1;
    runAnnualShard(lossySpec(), shardOf(kSeed, kTrials, 0, 1), opts);
    const auto events = obs::TraceSink::instance().drain();

    std::uint64_t trial = ~0ull;
    std::uint32_t last = 0, outages = 0;
    for (const auto &e : events) {
        if (e.trial != trial) {
            trial = e.trial;
            last = 0;
        }
        if (e.kind == obs::EventKind::OutageStart) {
            ++outages;
            EXPECT_EQ(e.incident, last + 1)
                << "trial " << trial << " outage ids must be dense";
            last = e.incident;
        }
    }
    EXPECT_GT(outages, 0u);
}

TEST(IncidentForensics, AggregateBitIdenticalForAnyThreadCount)
{
    const auto run = [](int threads) {
        const TracingOn guard;
        ShardOptions opts;
        opts.threads = threads;
        return aggregateJson(
            runAnnualShard(lossySpec(), shardOf(kSeed, kTrials, 0, 1),
                           opts)
                .incidents);
    };
    const std::string serial = run(1);
    EXPECT_FALSE(serial.empty());
    for (const int threads : {4, 16})
        EXPECT_EQ(serial, run(threads))
            << "aggregate differs at " << threads << " threads";
}

TEST(IncidentForensics, AggregateBitIdenticalForAnyShardPartition)
{
    const auto merged = [](std::uint64_t shards) {
        const TracingOn guard;
        std::vector<ShardResult> parts;
        for (std::uint64_t i = 0; i < shards; ++i) {
            ShardOptions opts;
            opts.threads = 1;
            parts.push_back(runAnnualShard(
                lossySpec(), shardOf(kSeed, kTrials, i, shards), opts));
        }
        std::string err;
        const auto m = mergeShards(std::move(parts), nullptr, &err);
        EXPECT_TRUE(m.has_value()) << err;
        return aggregateJson(m->incidents);
    };
    const std::string whole = merged(1);
    EXPECT_FALSE(whole.empty());
    for (const std::uint64_t shards : {2ull, 7ull})
        EXPECT_EQ(whole, merged(shards))
            << "merged aggregate differs at " << shards << " shards";
}

TEST(IncidentForensics, AggregateByteStableAgainstFixture)
{
    const std::string path =
        std::string(BPSIM_FIXTURE_DIR) + "/incidents_v1.json";

    const TracingOn guard;
    ShardOptions opts;
    opts.threads = 1;
    const ShardResult shard =
        runAnnualShard(lossySpec(), shardOf(kSeed, kTrials, 0, 1), opts);
    std::string got = aggregateJson(shard.incidents);
    got += '\n';

    if (std::getenv("BPSIM_WRITE_FIXTURES") != nullptr) {
        std::ofstream f(path);
        ASSERT_TRUE(f.good()) << path;
        f << got;
        GTEST_SKIP() << "fixture regenerated: " << path;
    }

    std::ifstream f(path);
    ASSERT_TRUE(f.good()) << "missing fixture " << path;
    std::ostringstream want;
    want << f.rdbuf();
    EXPECT_EQ(got, want.str())
        << "incident aggregate drifted from the golden fixture: "
           "regenerate with BPSIM_WRITE_FIXTURES=1 if intentional";
}

TEST(IncidentForensics, ShardFileCarriesIncidentsAndRoundTrips)
{
    const TracingOn guard;
    ShardOptions opts;
    opts.threads = 1;
    const ShardResult shard =
        runAnnualShard(lossySpec(), shardOf(kSeed, kTrials, 0, 1), opts);
    ASSERT_FALSE(shard.incidents.empty());

    std::ostringstream os;
    writeShardJson(os, shard);
    EXPECT_NE(os.str().find("\"incidents\""), std::string::npos);

    std::string err;
    const auto back = readShardJson(os.str(), &err);
    ASSERT_TRUE(back.has_value()) << err;
    EXPECT_EQ(aggregateJson(back->incidents),
              aggregateJson(shard.incidents));
}

} // namespace
} // namespace bpsim
