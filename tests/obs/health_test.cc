/**
 * @file
 * Health-engine tests: every declared rule is provoked by a synthetic
 * violation and verified silent on legal input, and a fixed-seed
 * campaign (trace + sampled signals + incident report) must come back
 * fully healthy — the rules exist to catch simulator defects, not to
 * second-guess correct physics.
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/shard.hh"
#include "core/backup_config.hh"
#include "obs/health.hh"
#include "obs/obs.hh"
#include "sim/logging.hh"
#include "workload/profile.hh"

namespace bpsim
{
namespace
{

/** The annual-trial horizon (same constant the shard runner uses). */
constexpr Time kYear = 365LL * 24 * kHour;

/** Build one synthetic event on trial 0. */
obs::TraceEvent
ev(std::uint32_t seq, obs::EventKind kind, Time t, double a = 0.0,
   double b = 0.0, std::uint32_t incident = 0)
{
    obs::TraceEvent e;
    e.trial = 0;
    e.seq = seq;
    e.incident = incident;
    e.kind = kind;
    e.simTime = t;
    e.a = a;
    e.b = b;
    return e;
}

/** Count findings for @p rule in @p report. */
std::uint64_t
count(const obs::HealthReport &report, const std::string &rule)
{
    const auto it = report.byRule.find(rule);
    return it == report.byRule.end() ? 0 : it->second;
}

TEST(HealthRules, TableIsDeclaredOnceAndWellFormed)
{
    const auto &rules = obs::healthRules();
    EXPECT_EQ(rules.size(), 8u);
    std::set<std::string> names;
    for (const auto &r : rules) {
        ASSERT_NE(r.name, nullptr);
        ASSERT_NE(r.description, nullptr);
        EXPECT_NE(std::string(r.name), "");
        EXPECT_NE(std::string(r.description), "");
        names.insert(r.name);
    }
    EXPECT_EQ(names.size(), rules.size()) << "rule names must be unique";
}

TEST(HealthChecks, SocOutOfBoundsIsCritical)
{
    const std::vector<obs::TraceEvent> events = {
        ev(0, obs::EventKind::BatterySoc, fromMinutes(1.0), 1.5, 1.0),
    };
    const auto report = obs::checkHealth(events);
    EXPECT_FALSE(report.healthy());
    EXPECT_EQ(count(report, "soc-bounds"), 1u);
    ASSERT_EQ(report.findings.size(), 1u);
    EXPECT_EQ(report.findings[0].severity, obs::Severity::Critical);
    EXPECT_DOUBLE_EQ(report.findings[0].value, 1.5);
}

TEST(HealthChecks, SocRisingOnBatteryIsAWarning)
{
    const std::vector<obs::TraceEvent> events = {
        ev(0, obs::EventKind::OutageStart, 0, 1.0, 0.0, 1),
        ev(1, obs::EventKind::UpsDischarge, 0, 1.0, 0.0, 1),
        ev(2, obs::EventKind::BatterySoc, fromMinutes(1.0), 0.5, 0.5, 1),
        ev(3, obs::EventKind::BatterySoc, fromMinutes(2.0), 0.6, 0.6, 1),
    };
    const auto report = obs::checkHealth(events);
    EXPECT_EQ(count(report, "soc-monotone-on-battery"), 1u);
    // A falling SoC on battery is legal and stays silent.
    const std::vector<obs::TraceEvent> falling = {
        ev(0, obs::EventKind::OutageStart, 0, 1.0, 0.0, 1),
        ev(1, obs::EventKind::UpsDischarge, 0, 1.0, 0.0, 1),
        ev(2, obs::EventKind::BatterySoc, fromMinutes(1.0), 0.5, 0.5, 1),
        ev(3, obs::EventKind::BatterySoc, fromMinutes(2.0), 0.4, 0.4, 1),
    };
    EXPECT_EQ(count(obs::checkHealth(falling),
                    "soc-monotone-on-battery"),
              0u);
}

TEST(HealthChecks, IllegalDgTransitionIsCritical)
{
    const std::vector<obs::TraceEvent> events = {
        ev(0, obs::EventKind::OutageStart, 0, 1.0, 0.0, 1),
        ev(1, obs::EventKind::DgOnline, fromMinutes(1.0), 0.0, 0.0, 1),
    };
    const auto report = obs::checkHealth(events);
    EXPECT_EQ(count(report, "dg-state-machine"), 1u);
    EXPECT_FALSE(report.healthy());

    // The legal sequence stays silent.
    const std::vector<obs::TraceEvent> legal = {
        ev(0, obs::EventKind::OutageStart, 0, 1.0, 0.0, 1),
        ev(1, obs::EventKind::DgStart, 0, 0.0, 0.0, 1),
        ev(2, obs::EventKind::DgOnline, fromMinutes(1.0), 0.0, 0.0, 1),
        ev(3, obs::EventKind::DgCarrying, fromMinutes(2.0), 0.0, 0.0, 1),
        ev(4, obs::EventKind::OutageEnd, fromMinutes(9.0), 0.0, 0.0, 1),
    };
    EXPECT_TRUE(obs::checkHealth(legal).healthy());
}

TEST(HealthChecks, UnpairedOutageEventsAreCritical)
{
    const std::vector<obs::TraceEvent> events = {
        ev(0, obs::EventKind::OutageEnd, fromMinutes(1.0)),
        ev(1, obs::EventKind::PowerLost, fromMinutes(2.0), 1.0),
    };
    const auto report = obs::checkHealth(events);
    EXPECT_EQ(count(report, "outage-pairing"), 2u);
}

TEST(HealthChecks, NonSequentialIncidentIdsAreCritical)
{
    const std::vector<obs::TraceEvent> events = {
        ev(0, obs::EventKind::OutageStart, fromMinutes(1.0), 1.0, 0.0, 1),
        ev(1, obs::EventKind::OutageEnd, fromMinutes(2.0), 0.0, 0.0, 1),
        ev(2, obs::EventKind::OutageStart, fromMinutes(3.0), 1.0, 0.0, 3),
    };
    const auto report = obs::checkHealth(events);
    EXPECT_EQ(count(report, "incident-ids"), 1u);
}

TEST(HealthChecks, UnphysicalTrialTotalsAreWarnings)
{
    const std::vector<obs::TraceEvent> events = {
        ev(0, obs::EventKind::TrialEnd, kYear, -5.0, -1.0),
    };
    const auto report = obs::checkHealth(events);
    EXPECT_EQ(count(report, "trial-invariants"), 2u);
}

TEST(HealthChecks, PowerBalanceCatchesConjuredAndStarvedWatts)
{
    // Samples at two instants: t=1h conjures 100 W of surplus; t=2h
    // starves the load on healthy utility.
    std::vector<obs::SignalSample> rows;
    const auto add = [&](Time t, obs::SignalId sig, double v) {
        obs::SignalSample s;
        s.trial = 0;
        s.t = t;
        s.signal = sig;
        s.value = v;
        rows.push_back(s);
    };
    const Time t1 = fromSeconds(3600.0), t2 = fromSeconds(7200.0);
    add(t1, obs::SignalId::LoadW, 100.0);
    add(t1, obs::SignalId::UtilityW, 200.0);
    add(t1, obs::SignalId::BatteryW, 0.0);
    add(t1, obs::SignalId::DgW, 0.0);
    add(t2, obs::SignalId::LoadW, 100.0);
    add(t2, obs::SignalId::UtilityW, 0.0);
    add(t2, obs::SignalId::BatteryW, 0.0);
    add(t2, obs::SignalId::DgW, 0.0);
    const auto store = obs::TimeSeriesStore::fromSamples(rows);

    const std::vector<obs::TraceEvent> no_outage;
    const auto report = obs::checkHealth(no_outage, &store);
    EXPECT_EQ(count(report, "power-balance"), 2u);

    // The same starved sample inside an outage window is legal.
    const std::vector<obs::TraceEvent> outage = {
        ev(0, obs::EventKind::OutageStart, t2 - fromMinutes(5.0), 100.0,
           0.0, 1),
    };
    const auto in_outage = obs::checkHealth(outage, &store);
    EXPECT_EQ(count(in_outage, "power-balance"), 1u)
        << "only the surplus at t1 should remain";
}

TEST(HealthChecks, AttributionResidualIsAWarning)
{
    // The simulator claims 100 min of downtime but the trace shows a
    // perfectly available year: the books do not reconcile.
    const std::vector<obs::TraceEvent> events = {
        ev(0, obs::EventKind::Availability, 0, 1.0),
        ev(1, obs::EventKind::TrialEnd, kYear, 100.0, 0.0),
    };
    const auto forensics = obs::buildIncidentReport(events);
    const auto report =
        obs::checkHealth(events, nullptr, &forensics);
    EXPECT_EQ(count(report, "attribution-residual"), 1u);
    EXPECT_FALSE(report.healthy());
}

TEST(HealthChecks, FindingCapKeepsCountingPastIt)
{
    std::vector<obs::TraceEvent> events;
    for (std::uint32_t i = 0; i < 10; ++i)
        events.push_back(
            ev(i, obs::EventKind::BatterySoc, fromMinutes(i), 2.0, 0.0));
    obs::HealthOptions opts;
    opts.maxFindings = 3;
    const auto report = obs::checkHealth(events, nullptr, nullptr, opts);
    EXPECT_EQ(report.findings.size(), 3u);
    EXPECT_EQ(report.totalFindings, 10u);
    EXPECT_EQ(count(report, "soc-bounds"), 10u);
}

TEST(HealthChecks, CleanCampaignRunIsHealthy)
{
    obs::TraceSink::instance().clear();
    obs::TimeSeriesSink::instance().clear();
    obs::setEnabled(true);
    obs::setSampleCadence(fromSeconds(3600.0));

    AnnualCampaignSpec spec;
    spec.profile = specJbbProfile();
    spec.nServers = 4;
    spec.technique = {TechniqueKind::ThrottleSleep, 5, 0, fromMinutes(4.0),
                      true};
    spec.config = minCostConfig();
    ShardOptions opts;
    opts.threads = 1;
    runAnnualShard(spec, shardOf(2014, 8, 0, 1), opts);

    const auto events = obs::TraceSink::instance().drain();
    const auto store = obs::TimeSeriesStore::fromSamples(
        obs::TimeSeriesSink::instance().drain());
    obs::setSampleCadence(0);
    obs::setEnabled(false);

    ASSERT_FALSE(events.empty());
    ASSERT_FALSE(store.empty());
    const auto forensics = obs::buildIncidentReport(events);
    const auto report = obs::checkHealth(events, &store, &forensics);

    std::ostringstream why;
    for (const auto &f : report.findings)
        why << f.rule << " @ trial " << f.trial << ": " << f.message
            << "\n";
    EXPECT_TRUE(report.healthy()) << why.str();
    EXPECT_EQ(report.totalFindings, 0u) << why.str();
}

} // namespace
} // namespace bpsim
