/**
 * @file
 * Histogram layout, quantile and merge-algebra tests, plus the shard
 * integration invariants: per-shard histogram deltas ride the shard
 * aggregate file next to the counters sidecar, survive a JSON round
 * trip exactly, and merge bit-identically for any shard partition or
 * merge order.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/shard.hh"
#include "core/backup_config.hh"
#include "obs/obs.hh"
#include "sim/random.hh"
#include "workload/profile.hh"

namespace bpsim
{
namespace
{

using obs::Histogram;
using obs::HistogramSnapshot;

TEST(HistogramLayout, EdgeValuesLandInSentinelBuckets)
{
    EXPECT_EQ(Histogram::bucketIndex(0.0), 0u);
    EXPECT_EQ(Histogram::bucketIndex(-1.0), 0u);
    EXPECT_EQ(Histogram::bucketIndex(std::nan("")), 0u);
    EXPECT_EQ(Histogram::bucketIndex(1e-30), 0u); // below 2^kMinExp
    EXPECT_EQ(Histogram::bucketIndex(1e300),
              Histogram::kBuckets - 1); // overflow
    EXPECT_EQ(Histogram::bucketIndex(
                  std::numeric_limits<double>::infinity()),
              Histogram::kBuckets - 1);
}

TEST(HistogramLayout, BoundsContainTheirValues)
{
    Rng rng(11);
    for (int i = 0; i < 2000; ++i) {
        // Log-uniform across the whole representable range.
        const double v = std::exp(rng.uniform(std::log(2e-5),
                                              std::log(1e14)));
        const std::uint32_t b = Histogram::bucketIndex(v);
        ASSERT_GT(b, 0u) << v;
        ASSERT_LT(b, Histogram::kBuckets - 1) << v;
        EXPECT_GE(v, Histogram::bucketLowerBound(b)) << v;
        EXPECT_LT(v, Histogram::bucketUpperBound(b)) << v;
    }
}

TEST(HistogramLayout, IndexIsMonotoneAndBoundsTile)
{
    for (std::uint32_t b = 1; b + 1 < Histogram::kBuckets - 1; ++b) {
        // Consecutive buckets share an edge...
        EXPECT_DOUBLE_EQ(Histogram::bucketUpperBound(b),
                         Histogram::bucketLowerBound(b + 1));
        // ...and the lower bound maps back to its own bucket.
        EXPECT_EQ(Histogram::bucketIndex(Histogram::bucketLowerBound(b)),
                  b);
    }
}

TEST(HistogramLayout, RelativeBucketWidthIsBounded)
{
    // Log-linear promise: width / lower bound <= 1 / kSubBuckets
    // (with a little slack for the first sub-bucket of each octave).
    for (std::uint32_t b = 1; b < Histogram::kBuckets - 1; ++b) {
        const double lo = Histogram::bucketLowerBound(b);
        const double w = Histogram::bucketUpperBound(b) - lo;
        EXPECT_LE(w / lo, 1.0 / Histogram::kSubBuckets + 1e-12)
            << "bucket " << b;
    }
}

TEST(Histogram, QuantilesTrackTheSample)
{
    Histogram h;
    Rng rng(7);
    std::vector<double> xs(20000);
    for (auto &x : xs) {
        x = rng.exponential(90.0);
        h.record(x);
    }
    EXPECT_EQ(h.count(), xs.size());

    std::sort(xs.begin(), xs.end());
    for (const double q : {0.10, 0.50, 0.90, 0.99}) {
        const double exact =
            xs[static_cast<std::size_t>(q * (xs.size() - 1))];
        const double approx = h.quantile(q);
        // Bucket resolution: 1/kSubBuckets relative error.
        EXPECT_NEAR(approx, exact, exact / Histogram::kSubBuckets + 1e-9)
            << "q=" << q;
    }
}

TEST(Histogram, SnapshotSumIsDerivedFromBuckets)
{
    Histogram h;
    h.record(10.0);
    h.record(10.0);
    h.record(1000.0);
    const HistogramSnapshot s = h.snapshot();
    EXPECT_EQ(s.count(), 3u);
    // sum = counts x midpoints, within bucket resolution of the truth.
    EXPECT_NEAR(s.sum(), 1020.0, 1020.0 / Histogram::kSubBuckets);
}

HistogramSnapshot
randomSnapshot(Rng &rng, int n)
{
    Histogram h;
    for (int i = 0; i < n; ++i)
        h.record(rng.exponential(50.0));
    return h.snapshot();
}

TEST(HistogramMerge, AssociativeCommutativeWithIdentity)
{
    using Map = std::map<std::string, HistogramSnapshot>;
    Rng rng(3);
    const Map a = {{"m", randomSnapshot(rng, 100)},
                   {"only_a", randomSnapshot(rng, 10)}};
    const Map b = {{"m", randomSnapshot(rng, 200)}};
    const Map c = {{"m", randomSnapshot(rng, 50)},
                   {"only_c", randomSnapshot(rng, 5)}};

    // (a + b) + c == a + (b + c)
    Map left = a;
    obs::mergeHistograms(left, b);
    obs::mergeHistograms(left, c);
    Map bc = b;
    obs::mergeHistograms(bc, c);
    Map right = a;
    obs::mergeHistograms(right, bc);
    EXPECT_EQ(left, right);

    // a + b == b + a
    Map ab = a, ba = b;
    obs::mergeHistograms(ab, b);
    obs::mergeHistograms(ba, a);
    EXPECT_EQ(ab, ba);

    // a + {} == a
    Map id = a;
    obs::mergeHistograms(id, Map{});
    EXPECT_EQ(id, a);
}

TEST(HistogramMerge, SubtractInvertsMerge)
{
    using Map = std::map<std::string, HistogramSnapshot>;
    Rng rng(5);
    const Map before = {{"m", randomSnapshot(rng, 80)}};
    Map after = before;
    const Map delta = {{"m", randomSnapshot(rng, 40)},
                       {"new", randomSnapshot(rng, 7)}};
    obs::mergeHistograms(after, delta);
    EXPECT_EQ(obs::subtractHistograms(after, before), delta);
    // Zero delta vanishes entirely (omitted-when-empty contract).
    EXPECT_TRUE(obs::subtractHistograms(before, before).empty());
}

// ---------------------------------------------------------------------
// Shard integration: histogram deltas ride shard files and merge
// bit-identically for any partition.

constexpr std::uint64_t kSeed = 2014;
constexpr std::uint64_t kTrials = 8;

AnnualCampaignSpec
dgSpec()
{
    AnnualCampaignSpec spec;
    spec.profile = specJbbProfile();
    spec.nServers = 4;
    spec.technique = {TechniqueKind::ThrottleSleep, 5, 0, fromMinutes(4.0),
                      true};
    spec.config = dgSmallPUpsConfig();
    return spec;
}

struct ObsOn
{
    ObsOn() { obs::setEnabled(true); }
    ~ObsOn()
    {
        obs::setEnabled(false);
        obs::TraceSink::instance().clear();
    }
};

MergedCampaign
runPartitioned(std::uint64_t shard_count, bool reverse_merge)
{
    const ObsOn guard;
    std::vector<ShardResult> shards;
    for (std::uint64_t i = 0; i < shard_count; ++i)
        shards.push_back(
            runAnnualShard(dgSpec(), shardOf(kSeed, kTrials, i, shard_count)));
    if (reverse_merge)
        std::reverse(shards.begin(), shards.end());
    std::string err;
    auto merged = mergeShards(std::move(shards), nullptr, &err);
    EXPECT_TRUE(merged.has_value()) << err;
    return *merged;
}

TEST(ShardHistograms, RideTheShardFileExactly)
{
    const ObsOn guard;
    const ShardResult shard =
        runAnnualShard(dgSpec(), shardOf(kSeed, kTrials, 0, 1));
    ASSERT_FALSE(shard.histograms.empty());
    ASSERT_NE(shard.histograms.find("campaign.trial_downtime_min"),
              shard.histograms.end());
    EXPECT_EQ(shard.histograms.at("campaign.trial_downtime_min").count(),
              kTrials);

    std::ostringstream os;
    writeShardJson(os, shard);
    std::string err;
    const auto back = readShardJson(os.str(), &err);
    ASSERT_TRUE(back.has_value()) << err;
    EXPECT_EQ(back->histograms, shard.histograms);
}

TEST(ShardHistograms, BitIdenticalForAnyPartitionAndMergeOrder)
{
    const auto whole = runPartitioned(1, false);
    ASSERT_FALSE(whole.histograms.empty());
    for (const std::uint64_t parts : {2ull, 4ull}) {
        EXPECT_EQ(runPartitioned(parts, false).histograms,
                  whole.histograms)
            << parts << " shards";
        EXPECT_EQ(runPartitioned(parts, true).histograms,
                  whole.histograms)
            << parts << " shards, reversed merge";
    }
}

TEST(ShardHistograms, OmittedFromFileWhenObsDisabled)
{
    ASSERT_FALSE(obs::enabled());
    const ShardResult shard =
        runAnnualShard(dgSpec(), shardOf(kSeed, 2, 0, 1));
    EXPECT_TRUE(shard.histograms.empty());
    std::ostringstream os;
    writeShardJson(os, shard);
    // Schema v1 bytes: no "histograms" member at all.
    EXPECT_EQ(os.str().find("\"histograms\""), std::string::npos);
}

} // namespace
} // namespace bpsim
