/**
 * @file
 * Exporter tests: the OpenMetrics text exposition is byte-stable
 * against a checked-in golden fixture (regenerate with
 * BPSIM_WRITE_FIXTURES=1), structurally valid (cumulative buckets,
 * `# EOF` terminator), and the Chrome counter-track export re-parses
 * as JSON with one "ph":"C" sample per time-series row.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/json.hh"
#include "obs/obs.hh"

namespace bpsim
{
namespace
{

/**
 * A fully deterministic registry: every value is hand-placed, so the
 * exposition is a pure function of this function (timers included —
 * TimerStat::add takes nanoseconds directly, no wall clock involved).
 */
void
populateFixture(obs::Registry &reg)
{
    reg.counter("power.outages").add(42);
    reg.counter("dg.starts").add(7);
    reg.gauge("campaign.trials_per_sec").set(51234.5);
    reg.timer("campaign.run").add(1500000000); // 1.5 s
    reg.timer("campaign.run").add(500000000);  // +0.5 s
    auto &h = reg.histogram("power.outage_duration_s");
    for (const double v : {30.0, 30.0, 65.0, 120.0, 600.0, 1e9})
        h.record(v);
    reg.histogram("dg.start_to_carrying_s").record(12.5);
}

std::string
fixtureString()
{
    obs::Registry reg;
    populateFixture(reg);
    std::ostringstream os;
    writeOpenMetrics(os, reg, {{"build", "golden-fixture"}});
    return os.str();
}

TEST(OpenMetrics, ByteStableAgainstFixture)
{
    const std::string path =
        std::string(BPSIM_FIXTURE_DIR) + "/openmetrics_v1.txt";
    const std::string got = fixtureString();

    if (std::getenv("BPSIM_WRITE_FIXTURES") != nullptr) {
        std::ofstream f(path);
        ASSERT_TRUE(f.good()) << path;
        f << got;
        GTEST_SKIP() << "fixture regenerated: " << path;
    }

    std::ifstream f(path);
    ASSERT_TRUE(f.good()) << "missing fixture " << path;
    std::ostringstream want;
    want << f.rdbuf();
    EXPECT_EQ(got, want.str())
        << "OpenMetrics output drifted from the golden fixture: "
           "regenerate with BPSIM_WRITE_FIXTURES=1 if the change is "
           "intentional";
}

TEST(OpenMetrics, ExpositionIsStructurallyValid)
{
    const std::string text = fixtureString();

    // Terminated by exactly one "# EOF" line at the end.
    ASSERT_GE(text.size(), 6u);
    EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");

    // Counters carry the _total suffix and the label set.
    EXPECT_NE(text.find("# TYPE bpsim_power_outages counter\n"),
              std::string::npos);
    EXPECT_NE(
        text.find("bpsim_power_outages_total{build=\"golden-fixture\"}"
                  " 42\n"),
        std::string::npos);

    // Timers expose seconds summaries.
    EXPECT_NE(text.find("bpsim_campaign_run_seconds_sum"),
              std::string::npos);
    EXPECT_NE(text.find("bpsim_campaign_run_seconds_count"),
              std::string::npos);

    // Histogram: a +Inf bucket equal to _count, and no sample line
    // after # EOF.
    EXPECT_NE(text.find("le=\"+Inf\"} 6\n"), std::string::npos);
    EXPECT_NE(
        text.find("bpsim_power_outage_duration_s_count"
                  "{build=\"golden-fixture\"} 6\n"),
        std::string::npos);
}

TEST(OpenMetrics, HistogramBucketsAreCumulative)
{
    const std::string text = fixtureString();
    std::istringstream is(text);
    std::string line;
    double prev = 0.0;
    int bucket_lines = 0;
    while (std::getline(is, line)) {
        if (line.rfind("bpsim_power_outage_duration_s_bucket", 0) != 0)
            continue;
        ++bucket_lines;
        const auto space = line.rfind(' ');
        ASSERT_NE(space, std::string::npos);
        const double v = std::atof(line.c_str() + space + 1);
        EXPECT_GE(v, prev) << line;
        prev = v;
    }
    ASSERT_GT(bucket_lines, 1);
    EXPECT_EQ(prev, 6.0); // the +Inf bucket holds the total count
}

TEST(OpenMetrics, EmptyRegistryIsJustEof)
{
    const obs::Registry reg;
    std::ostringstream os;
    writeOpenMetrics(os, reg);
    EXPECT_EQ(os.str(), "# EOF\n");
}

// ---------------------------------------------------------------------
// Chrome counter tracks

TEST(CounterTracks, ReparseAsJsonWithOneSamplePerRow)
{
    std::vector<obs::SignalSample> rows = {
        {3, 0, obs::SignalId::LoadW, 1000.0},
        {3, 1000000, obs::SignalId::LoadW, 1500.0},
        {3, 0, obs::SignalId::BatterySoc, 1.0},
        {3, 1000000, obs::SignalId::BatterySoc, 0.75},
    };
    const auto store = obs::TimeSeriesStore::fromSamples(rows);

    std::ostringstream os;
    obs::TraceExportOptions opts;
    opts.metadata = {{"build", "test"}};
    writeChromeTrace(os, {}, store, opts);

    std::string err;
    const auto doc = parseJson(os.str(), &err);
    ASSERT_TRUE(doc.has_value()) << err;
    const JsonValue &events = doc->at("traceEvents");
    ASSERT_EQ(events.size(), rows.size());

    for (std::size_t i = 0; i < events.size(); ++i) {
        const JsonValue &ev = events.item(i);
        EXPECT_EQ(ev.at("ph").asString(), "C");
        EXPECT_EQ(ev.at("cat").asString(), "series");
        EXPECT_EQ(ev.at("pid").asInt(), 1);
        EXPECT_EQ(ev.at("tid").asUint(), 3u);
        // One counter value keyed by the signal name.
        const JsonValue &args = ev.at("args");
        ASSERT_EQ(args.size(), 1u);
    }
    // Single-trial store: lanes carry the bare signal name.
    EXPECT_EQ(events.item(0).at("name").asString(), "load_w");
    EXPECT_EQ(events.item(0).at("args").at("load_w").asDouble(), 1000.0);
    EXPECT_EQ(events.item(2).at("name").asString(), "battery_soc");
    EXPECT_EQ(events.item(3).at("args").at("battery_soc").asDouble(),
              0.75);
}

TEST(CounterTracks, MultiTrialStoresPrefixLanesWithTheTrial)
{
    std::vector<obs::SignalSample> rows = {
        {0, 0, obs::SignalId::LoadW, 1.0},
        {1, 0, obs::SignalId::LoadW, 2.0},
    };
    std::ostringstream os;
    writeChromeTrace(os, {}, obs::TimeSeriesStore::fromSamples(rows), {});
    std::string err;
    const auto doc = parseJson(os.str(), &err);
    ASSERT_TRUE(doc.has_value()) << err;
    const JsonValue &events = doc->at("traceEvents");
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events.item(0).at("name").asString(), "t0/load_w");
    EXPECT_EQ(events.item(1).at("name").asString(), "t1/load_w");
}

TEST(CounterTracks, LttbBudgetCapsSamplesDeterministically)
{
    std::vector<obs::SignalSample> rows;
    for (int i = 0; i < 1000; ++i)
        rows.push_back({0, static_cast<Time>(i) * 1000,
                        obs::SignalId::LoadW,
                        static_cast<double>(i % 97)});
    const auto store = obs::TimeSeriesStore::fromSamples(rows);

    obs::TraceExportOptions opts;
    opts.maxPointsPerSeries = 64;
    std::ostringstream a, b;
    writeChromeTrace(a, {}, store, opts);
    writeChromeTrace(b, {}, store, opts);
    EXPECT_EQ(a.str(), b.str());

    std::string err;
    const auto doc = parseJson(a.str(), &err);
    ASSERT_TRUE(doc.has_value()) << err;
    EXPECT_EQ(doc->at("traceEvents").size(), 64u);
}

} // namespace
} // namespace bpsim
