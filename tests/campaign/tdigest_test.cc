/**
 * @file
 * Property tests for the t-digest quantile sketch: rank-error bounds
 * against exact order statistics on uniform/lognormal/bimodal data,
 * merge associativity (approximate), determinism, and bitwise JSON
 * round-tripping — the guarantees the shard merge layer leans on.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "campaign/json.hh"
#include "campaign/tdigest.hh"
#include "sim/random.hh"

namespace bpsim
{
namespace
{

/** Exact quantile of a sorted sample (nearest-rank interpolation). */
double
exactQuantile(const std::vector<double> &sorted, double q)
{
    const double pos = q * (static_cast<double>(sorted.size()) - 1.0);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

/** Empirical rank of `x` in the sorted sample (mid-rank). */
double
rankOf(const std::vector<double> &sorted, double x)
{
    const auto lo = std::lower_bound(sorted.begin(), sorted.end(), x);
    const auto hi = std::upper_bound(sorted.begin(), sorted.end(), x);
    const double mid =
        0.5 * (static_cast<double>(lo - sorted.begin()) +
               static_cast<double>(hi - sorted.begin()));
    return mid / static_cast<double>(sorted.size());
}

std::vector<double>
sampleUniform(std::uint64_t seed, int n)
{
    Rng rng(seed);
    std::vector<double> xs(n);
    for (auto &x : xs)
        x = rng.uniform(-5.0, 12.0);
    return xs;
}

std::vector<double>
sampleLognormal(std::uint64_t seed, int n)
{
    Rng rng(seed);
    std::vector<double> xs(n);
    for (auto &x : xs)
        x = std::exp(rng.gaussian(0.0, 1.5));
    return xs;
}

std::vector<double>
sampleBimodal(std::uint64_t seed, int n)
{
    // Two well-separated modes — the shape annual downtime takes when
    // most years are loss-free and a few see multi-hour outages.
    Rng rng(seed);
    std::vector<double> xs(n);
    for (auto &x : xs)
        x = rng.nextDouble() < 0.8 ? rng.gaussian(2.0, 0.5)
                                   : rng.gaussian(400.0, 60.0);
    return xs;
}

/**
 * Assert the digest's quantile estimates stay within a rank-error
 * budget of the exact order statistics. The k1 scale function bounds
 * rank error by O(q(1-q)/delta); `budget` is the allowed |rank(est) -
 * q| at the checked quantiles, generous enough to be robust across
 * sample shapes yet far tighter than P² can promise.
 */
void
expectRankAccurate(const TDigest &td, std::vector<double> sorted,
                   double budget)
{
    std::sort(sorted.begin(), sorted.end());
    for (const double q :
         {0.01, 0.05, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99}) {
        const double est = td.quantile(q);
        const double r = rankOf(sorted, est);
        EXPECT_NEAR(r, q, budget)
            << "q=" << q << " est=" << est
            << " exact=" << exactQuantile(sorted, q);
    }
    // Extremes are anchored exactly.
    EXPECT_EQ(td.quantile(0.0), sorted.front());
    EXPECT_EQ(td.quantile(1.0), sorted.back());
}

TDigest
digestOf(const std::vector<double> &xs, double compression = 100.0)
{
    TDigest td(compression);
    for (const double x : xs)
        td.add(x);
    return td;
}

TEST(TDigest, EmptyAndSingleton)
{
    TDigest td;
    EXPECT_EQ(td.count(), 0u);
    EXPECT_EQ(td.quantile(0.5), 0.0); // documented empty behaviour
    td.add(7.25);
    EXPECT_EQ(td.count(), 1u);
    EXPECT_EQ(td.quantile(0.0), 7.25);
    EXPECT_EQ(td.quantile(0.5), 7.25);
    EXPECT_EQ(td.quantile(1.0), 7.25);
}

TEST(TDigest, SmallSamplesAreExact)
{
    // Fewer samples than centroids: every point is its own centroid,
    // so the median interpolates the true order statistics.
    TDigest td;
    for (const double x : {1.0, 2.0, 3.0, 4.0})
        td.add(x);
    EXPECT_EQ(td.quantile(0.0), 1.0);
    EXPECT_EQ(td.quantile(1.0), 4.0);
    EXPECT_NEAR(td.quantile(0.5), 2.5, 1e-12);
}

TEST(TDigest, RankErrorUniform)
{
    const auto xs = sampleUniform(21, 10000);
    auto sorted = xs;
    expectRankAccurate(digestOf(xs), sorted, 0.012);
}

TEST(TDigest, RankErrorLognormal)
{
    const auto xs = sampleLognormal(22, 10000);
    expectRankAccurate(digestOf(xs), xs, 0.012);
}

TEST(TDigest, RankErrorBimodal)
{
    const auto xs = sampleBimodal(23, 10000);
    expectRankAccurate(digestOf(xs), xs, 0.012);
}

TEST(TDigest, CompressionBoundsCentroidCount)
{
    const auto xs = sampleLognormal(3, 50000);
    for (const double delta : {50.0, 100.0, 200.0}) {
        const TDigest td = digestOf(xs, delta);
        // Dunning's bound: at most ~2*delta centroids after flush.
        EXPECT_LE(td.centroids().size(),
                  static_cast<std::size_t>(2.0 * delta) + 2)
            << "delta=" << delta;
        EXPECT_EQ(td.count(), xs.size());
    }
}

TEST(TDigest, DeterministicForSameSequence)
{
    const auto xs = sampleBimodal(5, 20000);
    const TDigest a = digestOf(xs);
    const TDigest b = digestOf(xs);
    ASSERT_EQ(a.centroids().size(), b.centroids().size());
    for (std::size_t i = 0; i < a.centroids().size(); ++i) {
        EXPECT_EQ(a.centroids()[i].mean, b.centroids()[i].mean);
        EXPECT_EQ(a.centroids()[i].weight, b.centroids()[i].weight);
    }
}

TEST(TDigest, MergePreservesCountMinMax)
{
    const auto xs = sampleLognormal(9, 6000);
    TDigest merged;
    // Merge in 6 uneven chunks.
    std::size_t i = 0;
    for (const std::size_t len : {100u, 900u, 2000u, 1500u, 1400u, 100u}) {
        TDigest part;
        for (std::size_t j = i; j < i + len; ++j)
            part.add(xs[j]);
        merged.merge(part);
        i += len;
    }
    ASSERT_EQ(i, xs.size());
    EXPECT_EQ(merged.count(), xs.size());
    auto sorted = xs;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(merged.min(), sorted.front());
    EXPECT_EQ(merged.max(), sorted.back());
}

TEST(TDigest, MergeIsRankAccurateForAnyPartitioning)
{
    // The sharding guarantee: whatever way trials are split across
    // shards, the merged digest answers quantiles within the same
    // rank-error budget as the unsharded one.
    const auto xs = sampleBimodal(31, 10000);
    for (const int shards : {1, 2, 7, 16}) {
        TDigest merged;
        const std::size_t per =
            (xs.size() + static_cast<std::size_t>(shards) - 1) /
            static_cast<std::size_t>(shards);
        for (int s = 0; s < shards; ++s) {
            TDigest part;
            const std::size_t lo = static_cast<std::size_t>(s) * per;
            const std::size_t hi = std::min(lo + per, xs.size());
            for (std::size_t j = lo; j < hi; ++j)
                part.add(xs[j]);
            merged.merge(part);
        }
        expectRankAccurate(merged, xs, 0.02);
    }
}

TEST(TDigest, MergeAssociativityApproximate)
{
    // (A + B) + C vs A + (B + C): centroids differ, but quantile
    // answers must agree to within the rank-error budget.
    const auto a_xs = sampleUniform(41, 4000);
    const auto b_xs = sampleLognormal(42, 4000);
    const auto c_xs = sampleBimodal(43, 4000);
    const TDigest a = digestOf(a_xs), b = digestOf(b_xs),
                  c = digestOf(c_xs);

    TDigest left = a;
    left.merge(b);
    left.merge(c);
    TDigest bc = b;
    bc.merge(c);
    TDigest right = a;
    right.merge(bc);

    std::vector<double> all;
    all.insert(all.end(), a_xs.begin(), a_xs.end());
    all.insert(all.end(), b_xs.begin(), b_xs.end());
    all.insert(all.end(), c_xs.begin(), c_xs.end());
    std::sort(all.begin(), all.end());

    EXPECT_EQ(left.count(), right.count());
    for (const double q : {0.05, 0.25, 0.5, 0.75, 0.95, 0.99}) {
        const double rl = rankOf(all, left.quantile(q));
        const double rr = rankOf(all, right.quantile(q));
        EXPECT_NEAR(rl, q, 0.02) << "left q=" << q;
        EXPECT_NEAR(rr, q, 0.02) << "right q=" << q;
    }
}

TEST(TDigest, JsonRoundTripIsBitwise)
{
    const auto xs = sampleLognormal(17, 8000);
    const TDigest td = digestOf(xs);

    std::ostringstream os;
    {
        JsonWriter w(os);
        td.writeJson(w);
    }
    const auto parsed = parseJson(os.str());
    ASSERT_TRUE(parsed.has_value());
    const TDigest back = TDigest::fromJson(*parsed);

    EXPECT_EQ(back.count(), td.count());
    EXPECT_EQ(back.compression(), td.compression());
    EXPECT_EQ(back.min(), td.min());
    EXPECT_EQ(back.max(), td.max());
    ASSERT_EQ(back.centroids().size(), td.centroids().size());
    for (std::size_t i = 0; i < td.centroids().size(); ++i) {
        EXPECT_EQ(back.centroids()[i].mean, td.centroids()[i].mean);
        EXPECT_EQ(back.centroids()[i].weight, td.centroids()[i].weight);
    }
    for (const double q : {0.01, 0.5, 0.95, 0.99})
        EXPECT_EQ(back.quantile(q), td.quantile(q));
}

TEST(TDigest, WeightedAdds)
{
    // add(x, w) counts w observations and stays rank-accurate against
    // the expanded sample (exact cluster boundaries may differ from w
    // singleton adds, so equivalence is statistical, not bitwise).
    Rng rng(55);
    TDigest td;
    std::vector<double> expanded;
    for (int i = 0; i < 3000; ++i) {
        const double x = rng.exponential(20.0);
        const double w = 1.0 + static_cast<double>(rng.nextU64() % 4);
        td.add(x, w);
        for (int j = 0; j < static_cast<int>(w); ++j)
            expanded.push_back(x);
    }
    EXPECT_EQ(td.count(), expanded.size());
    expectRankAccurate(td, expanded, 0.012);
}

} // namespace
} // namespace bpsim
