/**
 * @file
 * Campaign checkpoint tests: extending a checkpointed K-trial campaign
 * to M trials must be bit-identical to running M trials fresh — at the
 * summary-JSON layer, at the serialized-checkpoint layer (P² marker
 * state, t-digest centroids AND unflushed buffer, obs deltas), across
 * mismatched batch sizes and thread counts on either side of the
 * boundary, and through the early-stop rule including the masked
 * budget-boundary stop. The defensive reader must turn every malformed
 * document into nullopt, never an assert.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "campaign/annual_campaign.hh"
#include "campaign/checkpoint.hh"
#include "campaign/json.hh"
#include "core/backup_config.hh"
#include "obs/obs.hh"
#include "workload/profile.hh"

namespace bpsim
{
namespace
{

constexpr std::uint64_t kSeed = 2014;

AnnualCampaignSpec
testSpec()
{
    AnnualCampaignSpec spec;
    spec.profile = specJbbProfile();
    spec.nServers = 4;
    spec.technique = {TechniqueKind::Throttle, 5, 0, 0, false};
    spec.config = minCostConfig();
    return spec;
}

AnnualCampaignOptions
fixedOpts(std::uint64_t trials, std::uint64_t batch = 0, int threads = 1)
{
    AnnualCampaignOptions opts;
    opts.maxTrials = trials;
    opts.seed = kSeed;
    opts.threads = threads;
    opts.batch = batch;
    return opts;
}

std::string
summaryJson(const AnnualCampaignSummary &s)
{
    std::ostringstream os;
    CampaignJsonOptions jopts;
    jopts.includeTiming = false;
    writeCampaignJson(os, s, jopts);
    return os.str();
}

std::string
checkpointJson(const CampaignCheckpoint &c)
{
    std::ostringstream os;
    writeCheckpointJson(os, c);
    return os.str();
}

/** Arm tracing for one test; restore a clean disabled state after. */
struct TracingOn
{
    TracingOn()
    {
        obs::TraceSink::instance().clear();
        obs::setEnabled(true);
    }
    ~TracingOn()
    {
        obs::setEnabled(false);
        obs::TraceSink::instance().clear();
    }
};

TEST(CampaignCheckpoint, ExtensionMatchesFreshRunBitExactly)
{
    const auto spec = testSpec();
    constexpr std::uint64_t kK = 40, kM = 96;
    const std::string fresh =
        summaryJson(runAnnualCampaign(spec, fixedOpts(kM)));

    // Producing batch/threads and extending batch/threads are all
    // free parameters; every combination must land on the same bytes.
    for (const std::uint64_t b1 : {0ULL, 8ULL}) {
        for (const std::uint64_t b2 : {0ULL, 8ULL}) {
            for (const int threads : {1, 4}) {
                const auto base = runResumableCampaign(
                    spec, fixedOpts(kK, b1, threads), nullptr);
                EXPECT_EQ(base.executedTrials, kK);
                auto opts = fixedOpts(kM, b2, threads);
                const auto ext =
                    runResumableCampaign(spec, opts, &base.checkpoint);
                EXPECT_EQ(ext.executedTrials, kM - kK);
                EXPECT_EQ(summaryJson(ext.summary), fresh)
                    << "b1=" << b1 << " b2=" << b2
                    << " threads=" << threads;
            }
        }
    }
}

TEST(CampaignCheckpoint, CheckpointOfExtensionMatchesFreshCheckpoint)
{
    // The whole checkpoint document — metric internals, obs counter /
    // histogram / incident deltas — must be identical whether the M
    // trials ran in one go or as K + (M - K), so a checkpoint can be
    // extended any number of times without drift.
    const TracingOn tracing;
    const auto spec = testSpec();
    constexpr std::uint64_t kK = 24, kM = 64;
    const auto fresh = runResumableCampaign(spec, fixedOpts(kM), nullptr);
    ASSERT_FALSE(fresh.checkpoint.counters.empty());
    ASSERT_FALSE(fresh.checkpoint.histograms.empty());

    const auto base = runResumableCampaign(spec, fixedOpts(kK), nullptr);
    auto opts = fixedOpts(kM);
    const auto ext = runResumableCampaign(spec, opts, &base.checkpoint);
    EXPECT_EQ(checkpointJson(ext.checkpoint),
              checkpointJson(fresh.checkpoint));
}

TEST(CampaignCheckpoint, JsonRoundTripPreservesResumeTrajectory)
{
    const auto spec = testSpec();
    constexpr std::uint64_t kK = 32, kM = 80;
    const auto base = runResumableCampaign(spec, fixedOpts(kK), nullptr);

    const std::string bytes = checkpointJson(base.checkpoint);
    std::string err;
    const auto restored = readCheckpointJson(bytes, &err);
    ASSERT_TRUE(restored) << err;
    EXPECT_EQ(checkpointJson(*restored), bytes);

    const std::string fresh =
        summaryJson(runAnnualCampaign(spec, fixedOpts(kM)));
    const auto ext =
        runResumableCampaign(spec, fixedOpts(kM), &*restored);
    EXPECT_EQ(summaryJson(ext.summary), fresh);
}

TEST(CampaignCheckpoint, ExtendToSameBudgetIsAPureReplay)
{
    const auto spec = testSpec();
    constexpr std::uint64_t kK = 48;
    const auto base = runResumableCampaign(spec, fixedOpts(kK), nullptr);
    const auto same =
        runResumableCampaign(spec, fixedOpts(kK), &base.checkpoint);
    EXPECT_EQ(same.executedTrials, 0u);
    EXPECT_EQ(summaryJson(same.summary), summaryJson(base.summary));
}

AnnualCampaignOptions
earlyStopOpts(std::uint64_t trials)
{
    auto opts = fixedOpts(trials);
    opts.minTrials = 16;
    opts.ciRelTol = 0.30;
    return opts;
}

TEST(CampaignCheckpoint, EarlyStopTrajectorySurvivesResume)
{
    const auto spec = testSpec();
    const auto fresh = runAnnualCampaign(spec, earlyStopOpts(400));
    ASSERT_TRUE(fresh.stoppedEarly)
        << "fixture tolerance never fired; tighten ciRelTol";
    const std::uint64_t stop = fresh.trials;
    ASSERT_GT(stop, 16u);
    const std::string want = summaryJson(fresh);

    // Checkpoint strictly before the stop: the extension must stop at
    // the very same trial.
    const auto before = runResumableCampaign(
        spec, earlyStopOpts(stop / 2), nullptr);
    ASSERT_FALSE(before.summary.stoppedEarly);
    const auto resumed = runResumableCampaign(spec, earlyStopOpts(400),
                                              &before.checkpoint);
    EXPECT_EQ(summaryJson(resumed.summary), want);

    // Checkpoint of a run that already stopped early: pure replay with
    // the planned budget rewritten.
    const auto after =
        runResumableCampaign(spec, earlyStopOpts(400), nullptr);
    ASSERT_TRUE(after.summary.stoppedEarly);
    const auto replay = runResumableCampaign(spec, earlyStopOpts(400),
                                             &after.checkpoint);
    EXPECT_EQ(replay.executedTrials, 0u);
    EXPECT_EQ(summaryJson(replay.summary), want);
}

TEST(CampaignCheckpoint, MaskedBudgetBoundaryStopIsReDerived)
{
    // A campaign whose budget is exactly its stopping point records
    // stoppedEarly == false (the stop is masked at the boundary). A
    // longer fresh run stops right there with stoppedEarly == true;
    // the resume path must re-derive that decision from the restored
    // state instead of running more trials.
    const auto spec = testSpec();
    const auto fresh = runAnnualCampaign(spec, earlyStopOpts(400));
    ASSERT_TRUE(fresh.stoppedEarly);
    const std::uint64_t stop = fresh.trials;

    const auto boundary =
        runResumableCampaign(spec, earlyStopOpts(stop), nullptr);
    ASSERT_FALSE(boundary.summary.stoppedEarly);
    ASSERT_EQ(boundary.summary.trials, stop);

    const auto resumed = runResumableCampaign(spec, earlyStopOpts(400),
                                              &boundary.checkpoint);
    EXPECT_EQ(resumed.executedTrials, 0u);
    EXPECT_EQ(summaryJson(resumed.summary), summaryJson(fresh));
}

TEST(CampaignCheckpointReader, RejectsMalformedDocumentsWithoutAsserting)
{
    const auto spec = testSpec();
    const auto base = runResumableCampaign(spec, fixedOpts(16), nullptr);
    const std::string good = checkpointJson(base.checkpoint);
    ASSERT_TRUE(readCheckpointJson(good));

    // Truncations at every eighth byte: parse errors or missing
    // members, never a crash.
    for (std::size_t len = 0; len < good.size(); len += 8)
        EXPECT_FALSE(readCheckpointJson(good.substr(0, len)));

    EXPECT_FALSE(readCheckpointJson("{}"));
    EXPECT_FALSE(readCheckpointJson(
        R"({"schema":"bpsim.campaign.shard","schema_version":1})"));

    // Field-level corruption that stays valid JSON.
    const auto corrupt = [&good](const std::string &from,
                                 const std::string &to) {
        std::string s = good;
        const auto pos = s.find(from);
        EXPECT_NE(pos, std::string::npos) << from;
        s.replace(pos, from.size(), to);
        return s;
    };
    EXPECT_FALSE(
        readCheckpointJson(corrupt("\"schema_version\":1", // version bump
                                   "\"schema_version\":999")));
    EXPECT_FALSE(readCheckpointJson(
        corrupt("\"trials\":16", "\"trials\":16.5"))); // non-integral
    EXPECT_FALSE(readCheckpointJson(
        corrupt("\"trials\":16", "\"trials\":0"))); // empty checkpoint
    EXPECT_FALSE(readCheckpointJson(
        corrupt("\"m2\":", "\"m2\":-1,\"x\":"))); // negative variance
    EXPECT_FALSE(readCheckpointJson(
        corrupt("\"stopped_early\":false", "\"stopped_early\":0")));
}

} // namespace
} // namespace bpsim
