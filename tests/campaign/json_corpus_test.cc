/**
 * @file
 * Malformed-input corpus for parseJson(): every entry must produce
 * an error, never a crash or an accept — the parser fronts the
 * what-if server, so its inputs are untrusted network bytes. Also
 * pins the recursion depth limit that keeps a nesting bomb from
 * overflowing the parser's stack.
 */

#include "campaign/json.hh"

#include <string>

#include <gtest/gtest.h>

using namespace bpsim;

namespace
{

/** Nested arrays: depth 3 -> "[[[]]]". */
std::string
nestedArrays(int depth)
{
    return std::string(depth, '[') + std::string(depth, ']');
}

} // namespace

TEST(JsonCorpus, MalformedInputsErrorCleanly)
{
    const char *const corpus[] = {
        "",
        "   ",
        "{",
        "[",
        "}",
        "]",
        "[1,2",
        "[1,,2]",
        "{\"a\":}",
        "{\"a\" 1}",
        "{\"a\":1",
        "{1:2}",
        "\"unterminated",
        "\"bad \\q escape\"",
        "\"trunc \\u12\"",
        "\"bad \\uZZZZ\"",
        "nul",
        "tru",
        "falsehood",
        "+1",
        ".5",
        "-.5",
        "1.2.3",
        "1e",
        "--5",
        "{} trailing",
        "[1] [2]",
        "{\"a\":1}{",
    };
    for (const char *text : corpus) {
        std::string err;
        const auto v = parseJson(text, &err);
        EXPECT_FALSE(v.has_value())
            << "accepted malformed input: " << text;
        EXPECT_FALSE(err.empty()) << text;
    }
}

TEST(JsonCorpus, ValidInputsStillParse)
{
    for (const char *text :
         {"null", "true", "false", "0", "-1.5e3", "\"s\"", "[]", "{}",
          "[1,2,3]", "{\"a\":{\"b\":[1,\"two\",null]}}",
          " { \"k\" : 1 } "}) {
        std::string err;
        EXPECT_TRUE(parseJson(text, &err).has_value())
            << text << ": " << err;
    }
}

TEST(JsonCorpus, NestingDepthIsBounded)
{
    // At the limit: fine.
    EXPECT_TRUE(parseJson(nestedArrays(kJsonMaxDepth)).has_value());
    // One past: a clean error, not a stack overflow.
    std::string err;
    EXPECT_FALSE(
        parseJson(nestedArrays(kJsonMaxDepth + 1), &err).has_value());
    EXPECT_NE(err.find("nesting too deep"), std::string::npos);
    // A serious bomb still answers promptly.
    EXPECT_FALSE(parseJson(nestedArrays(100000), &err).has_value());
    // Mixed object/array nesting counts every level.
    std::string mixed;
    for (int i = 0; i < kJsonMaxDepth; ++i)
        mixed += "{\"a\":[";
    EXPECT_FALSE(parseJson(mixed, &err).has_value());
}

TEST(JsonCorpus, DepthErrorsSurfaceThroughObjects)
{
    std::string deep = "{\"payload\":";
    deep += nestedArrays(kJsonMaxDepth);
    deep += "}";
    std::string err;
    // The object itself consumes one level, pushing the arrays over.
    EXPECT_FALSE(parseJson(deep, &err).has_value());
    EXPECT_NE(err.find("nesting too deep"), std::string::npos);
}
