/**
 * @file
 * Tests for the ExactSum superaccumulator: the merge layer's claim of
 * bit-identical statistics for any shard partitioning rests entirely
 * on addition here being exact and associative.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <vector>

#include "campaign/exact_sum.hh"
#include "campaign/json.hh"
#include "sim/random.hh"

namespace bpsim
{
namespace
{

TEST(ExactSum, EmptyIsZero)
{
    ExactSum s;
    EXPECT_EQ(s.value(), 0.0);
}

TEST(ExactSum, SingleValueRoundTrips)
{
    for (const double x : {1.0, -1.0, 0.1, -1e300, 1e-300, 1e308,
                           5e-324, -5e-324, 123456.789}) {
        ExactSum s;
        s.add(x);
        EXPECT_EQ(s.value(), x) << "x = " << x;
    }
}

TEST(ExactSum, CancellationIsExact)
{
    // Classic float failure: (1e16 + 1) - 1e16 == 0 in double chains.
    ExactSum s;
    s.add(1e16);
    s.add(1.0);
    s.add(-1e16);
    EXPECT_EQ(s.value(), 1.0);

    // Huge magnitudes cancelling to a tiny residue.
    ExactSum t;
    t.add(1e300);
    t.add(1e-300);
    t.add(-1e300);
    EXPECT_EQ(t.value(), 1e-300);
}

TEST(ExactSum, KahanKillerSeries)
{
    // Alternating large/small values whose naive double sum drifts:
    // the ulp at 1e16 is 2.0, so every +0.25 near the big magnitude
    // is rounded away.
    ExactSum s;
    double naive = 0.0;
    for (int i = 0; i < 1000; ++i) {
        const double big = (i % 2 == 0) ? 1e16 : -1e16;
        s.add(big);
        s.add(0.25);
        naive += big;
        naive += 0.25;
    }
    EXPECT_EQ(s.value(), 250.0);
    EXPECT_NE(naive, 250.0); // the whole point of ExactSum
}

TEST(ExactSum, AssociativeUnderRandomPartitioning)
{
    // Sum a fixed stream serially, then as randomly-sized chunks
    // merged in random-ish orders. Bitwise equality required.
    Rng rng(2014);
    std::vector<double> xs;
    for (int i = 0; i < 5000; ++i) {
        // Mix magnitudes and signs aggressively.
        const double mag = std::ldexp(rng.nextDouble(),
                                      static_cast<int>(rng.nextU64() % 600) - 300);
        xs.push_back(rng.nextDouble() < 0.5 ? mag : -mag);
    }

    ExactSum serial;
    for (const double x : xs)
        serial.add(x);
    const double expect = serial.value();

    for (int trial = 0; trial < 10; ++trial) {
        Rng part(100 + trial);
        std::vector<ExactSum> chunks;
        std::size_t i = 0;
        while (i < xs.size()) {
            const std::size_t len =
                1 + static_cast<std::size_t>(part.nextU64() % 700);
            ExactSum c;
            for (std::size_t j = i; j < std::min(i + len, xs.size()); ++j)
                c.add(xs[j]);
            chunks.push_back(c);
            i += len;
        }
        // Merge back-to-front to exercise a different order than the
        // serial pass.
        ExactSum merged;
        for (auto it = chunks.rbegin(); it != chunks.rend(); ++it)
            merged.merge(*it);
        EXPECT_EQ(merged.value(), expect) << "trial " << trial;
    }
}

TEST(ExactSum, SubnormalsAccumulateExactly)
{
    const double tiny = std::numeric_limits<double>::denorm_min();
    ExactSum s;
    for (int i = 0; i < 1000; ++i)
        s.add(tiny);
    EXPECT_EQ(s.value(), 1000 * tiny);
}

TEST(ExactSum, ManyLargeValuesDoNotOverflow)
{
    // 1e6 copies of the largest finite double exceeds double range in
    // the accumulator but value() saturates sensibly only when asked;
    // here we cancel back down before reading.
    const double big = std::numeric_limits<double>::max();
    ExactSum s;
    for (int i = 0; i < 64; ++i)
        s.add(big);
    for (int i = 0; i < 64; ++i)
        s.add(-big);
    s.add(3.5);
    EXPECT_EQ(s.value(), 3.5);
}

TEST(ExactSum, JsonRoundTripIsBitwise)
{
    Rng rng(7);
    ExactSum s;
    for (int i = 0; i < 300; ++i)
        s.add((rng.nextDouble() - 0.5) * std::ldexp(1.0, i % 120 - 60));

    std::ostringstream os;
    {
        JsonWriter w(os);
        s.writeJson(w);
    }
    const auto parsed = parseJson(os.str());
    ASSERT_TRUE(parsed.has_value());
    const ExactSum back = ExactSum::fromJson(*parsed);
    EXPECT_EQ(back.value(), s.value());

    // And the re-serialization is byte-identical (canonical form).
    std::ostringstream os2;
    {
        JsonWriter w(os2);
        back.writeJson(w);
    }
    EXPECT_EQ(os.str(), os2.str());
}

TEST(ExactSum, ZeroQuery)
{
    ExactSum s;
    EXPECT_TRUE(s.zero());
    s.add(42.0);
    EXPECT_FALSE(s.zero());
    s.add(-42.0);
    EXPECT_TRUE(s.zero()); // exact cancellation is recognized
}

} // namespace
} // namespace bpsim
