/**
 * @file
 * Seed/stream audit for the batched kernel's randomness contract:
 * trial t's randomness is `Rng::stream(seed, t)` — a pure function of
 * (seed, trial id) — so HOW trials are grouped into batches, threads,
 * or shards can never change WHAT any trial draws. The property tests
 * here pin that contract directly (stream draws and generated outage
 * traces are invariant under every partitioning and evaluation order),
 * and the replay regression pins the early-stop corner: a stopped
 * campaign re-run from the same seed must consume the exact same
 * streams and reproduce itself byte for byte, scalar or batched.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/annual_campaign.hh"
#include "campaign/batch_kernel.hh"
#include "core/backup_config.hh"
#include "outage/trace.hh"
#include "sim/random.hh"
#include "workload/profile.hh"

namespace bpsim
{
namespace
{

constexpr Time kYear = 365LL * 24 * kHour;
constexpr std::uint64_t kSeed = 77;
constexpr std::uint64_t kTrials = 96;

/** First draws of every trial stream, instantiated in trial order. */
std::vector<std::uint64_t>
sequentialDraws(std::uint64_t seed, std::uint64_t trials,
                int draws_per_trial)
{
    std::vector<std::uint64_t> out;
    for (std::uint64_t id = 0; id < trials; ++id) {
        Rng rng = Rng::stream(seed, id);
        for (int i = 0; i < draws_per_trial; ++i)
            out.push_back(rng.nextU64());
    }
    return out;
}

TEST(RngStreamAudit, DrawsIndependentOfPartitioningAndOrder)
{
    constexpr int kDraws = 16;
    const auto want = sequentialDraws(kSeed, kTrials, kDraws);

    // Chunked instantiation (every batch size the kernel uses).
    for (const std::uint64_t batch : {1ull, 3ull, 8ull, 64ull, 1000ull}) {
        std::vector<std::uint64_t> got;
        for (std::uint64_t lo = 0; lo < kTrials;) {
            const std::uint64_t hi = std::min(lo + batch, kTrials);
            for (std::uint64_t id = lo; id < hi; ++id) {
                Rng rng = Rng::stream(kSeed, id);
                for (int i = 0; i < kDraws; ++i)
                    got.push_back(rng.nextU64());
            }
            lo = hi;
        }
        EXPECT_EQ(got, want) << "batch " << batch;
    }

    // Reverse evaluation order: stream(seed, id) must not depend on
    // any hidden shared state advanced by earlier instantiations.
    std::vector<std::uint64_t> reversed(want.size());
    for (std::uint64_t id = kTrials; id-- > 0;) {
        Rng rng = Rng::stream(kSeed, id);
        for (int i = 0; i < kDraws; ++i)
            reversed[id * kDraws + i] = rng.nextU64();
    }
    EXPECT_EQ(reversed, want);

    // Different seeds and different trials give different streams.
    EXPECT_NE(sequentialDraws(kSeed + 1, kTrials, kDraws), want);
    EXPECT_NE(Rng::stream(kSeed, 0).nextU64(),
              Rng::stream(kSeed, 1).nextU64());
}

TEST(RngStreamAudit, OutageTracesInvariantUnderBatchPartitioning)
{
    // The kernel's only per-trial randomness is trace generation;
    // assert the generated schedules themselves (not just derived
    // statistics) are identical however trials are grouped.
    const auto gen = OutageTraceGenerator::figure1();
    const auto traceOf = [&](std::uint64_t id) {
        Rng rng = Rng::stream(kSeed, id);
        return gen.generate(rng, kYear);
    };

    std::vector<std::vector<OutageEvent>> want;
    for (std::uint64_t id = 0; id < kTrials; ++id)
        want.push_back(traceOf(id));

    for (const std::uint64_t batch : {3ull, 17ull}) {
        for (std::uint64_t lo = 0; lo < kTrials;) {
            const std::uint64_t hi = std::min(lo + batch, kTrials);
            // Generate the chunk back to front: still identical.
            for (std::uint64_t id = hi; id-- > lo;) {
                const auto events = traceOf(id);
                ASSERT_EQ(events.size(), want[id].size())
                    << "trial " << id;
                for (std::size_t i = 0; i < events.size(); ++i) {
                    EXPECT_EQ(events[i].start, want[id][i].start);
                    EXPECT_EQ(events[i].duration, want[id][i].duration);
                }
            }
            lo = hi;
        }
    }
}

TEST(RngStreamAudit, EarlyStopReplayReusesTheSameStreams)
{
    // Regression: re-running a campaign that stopped early must
    // consume the exact same per-trial streams (no generator state
    // carried across runs or leaked between lanes), so the summary —
    // including the stop trial — reproduces byte for byte, and the
    // batched driver agrees with the scalar one on the replay.
    AnnualCampaignSpec spec;
    spec.profile = specJbbProfile();
    spec.nServers = 4;
    spec.technique = {TechniqueKind::Throttle, 5, 0, 0, false};
    spec.config = noDgConfig();

    const auto run = [&](std::uint64_t batch) {
        AnnualCampaignOptions opts;
        opts.maxTrials = 400;
        opts.seed = kSeed;
        opts.threads = 4;
        opts.batch = batch;
        opts.minTrials = 8;
        opts.ciRelTol = 0.25;
        const auto s = runAnnualCampaign(spec, opts);
        std::ostringstream os;
        CampaignJsonOptions jopts;
        jopts.includeTiming = false;
        writeCampaignJson(os, s, jopts);
        return os.str();
    };

    const std::string scalar_first = run(0);
    EXPECT_EQ(run(0), scalar_first) << "scalar replay drifted";
    const std::string batched_first = run(8);
    EXPECT_EQ(batched_first, scalar_first)
        << "batched driver consumed different streams";
    EXPECT_EQ(run(8), batched_first) << "batched replay drifted";
}

} // namespace
} // namespace bpsim
