/**
 * @file
 * Tests for the campaign runner: strict in-order consumption,
 * deterministic early stop, bit-identical aggregates across thread
 * counts (the acceptance gate for the parallel engine), and — on
 * machines with enough cores — parallel speedup.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "campaign/annual_campaign.hh"
#include "campaign/runner.hh"
#include "sim/logging.hh"

namespace bpsim
{
namespace
{

TEST(CampaignRunner, ConsumesInStrictTrialOrder)
{
    constexpr std::uint64_t kN = 500;
    std::uint64_t expected = 0;
    CampaignOptions opts;
    opts.threads = 4;
    const auto oc = runCampaign<std::uint64_t>(
        kN, [](std::uint64_t id) { return id * 3; },
        [&](std::uint64_t id, std::uint64_t &&r) {
            EXPECT_EQ(id, expected++);
            EXPECT_EQ(r, id * 3);
            return true;
        },
        opts);
    EXPECT_EQ(oc.consumed, kN);
    EXPECT_FALSE(oc.stoppedEarly);
}

TEST(CampaignRunner, EarlyStopIsDeterministicAcrossThreadCounts)
{
    for (int threads : {1, 2, 4, 8}) {
        std::vector<std::uint64_t> seen;
        CampaignOptions opts;
        opts.threads = threads;
        const auto oc = runCampaign<std::uint64_t>(
            10000, [](std::uint64_t id) { return id; },
            [&](std::uint64_t id, std::uint64_t &&) {
                seen.push_back(id);
                return id != 37; // stop after consuming trial 37
            },
            opts);
        ASSERT_EQ(oc.consumed, 38u) << "threads=" << threads;
        ASSERT_TRUE(oc.stoppedEarly);
        ASSERT_EQ(seen.size(), 38u);
        for (std::uint64_t i = 0; i < seen.size(); ++i)
            ASSERT_EQ(seen[i], i);
    }
}

TEST(CampaignRunner, ProgressCallbacksAreInOrderAndSerialized)
{
    CampaignOptions opts;
    opts.threads = 4;
    opts.progressEvery = 10;
    std::vector<std::uint64_t> ticks;
    opts.progress = [&](const CampaignProgress &p) {
        EXPECT_EQ(p.total, 95u);
        ticks.push_back(p.consumed);
    };
    runCampaign<int>(
        95, [](std::uint64_t) { return 0; },
        [](std::uint64_t, int &&) { return true; }, opts);
    // Every multiple of 10, plus the final 95.
    const std::vector<std::uint64_t> expect{10, 20, 30, 40, 50,
                                            60, 70, 80, 90, 95};
    EXPECT_EQ(ticks, expect);
}

TEST(ParallelMap, PreservesOrder)
{
    const auto out = parallelMap<double>(
        1000, [](std::uint64_t i) { return static_cast<double>(i) * 0.5; },
        4);
    ASSERT_EQ(out.size(), 1000u);
    for (std::uint64_t i = 0; i < out.size(); ++i)
        ASSERT_DOUBLE_EQ(out[i], static_cast<double>(i) * 0.5);
}

/** Cheap standing scenario for the real-simulation campaigns. */
AnnualCampaignSpec
testSpec()
{
    AnnualCampaignSpec spec;
    spec.profile = specJbbProfile();
    spec.nServers = 4;
    spec.technique = {TechniqueKind::Throttle, 5, 0, 0, false};
    spec.config = noDgConfig();
    return spec;
}

/** All deterministic aggregate state, for bitwise comparison. */
std::vector<double>
fingerprint(const AnnualCampaignSummary &s)
{
    std::vector<double> v;
    const auto metric = [&v](const MetricStats &m) {
        v.push_back(static_cast<double>(m.summary().count()));
        v.push_back(m.summary().mean());
        v.push_back(m.summary().variance());
        v.push_back(m.summary().min());
        v.push_back(m.summary().max());
        v.push_back(m.summary().sum());
        v.push_back(m.p50());
        v.push_back(m.p95());
        v.push_back(m.p99());
    };
    metric(s.downtimeMin);
    metric(s.lossesPerYear);
    metric(s.meanPerf);
    metric(s.batteryKwh);
    metric(s.worstGapMin);
    v.push_back(static_cast<double>(s.trials));
    v.push_back(static_cast<double>(s.lossFreeTrials));
    v.push_back(s.lossFree.fraction);
    v.push_back(s.lossFree.lo);
    v.push_back(s.lossFree.hi);
    return v;
}

// The acceptance gate: a >= 64-trial campaign aggregated with 1, 4,
// and hardware_concurrency() threads is byte-identical per seed.
TEST(AnnualCampaign, BitIdenticalAcrossThreadCounts)
{
    AnnualCampaignOptions opts;
    opts.maxTrials = 64;
    opts.seed = 20140301;

    opts.threads = 1;
    const auto serial = fingerprint(runAnnualCampaign(testSpec(), opts));
    ASSERT_FALSE(serial.empty());

    for (int threads : {4, WorkStealingPool::hardwareThreads()}) {
        opts.threads = threads;
        const auto par = fingerprint(runAnnualCampaign(testSpec(), opts));
        ASSERT_EQ(par.size(), serial.size());
        for (std::size_t i = 0; i < serial.size(); ++i) {
            ASSERT_EQ(par[i], serial[i])
                << "field " << i << " differs at threads=" << threads;
        }
    }
}

TEST(AnnualCampaign, SameSeedSameResultsSameThreads)
{
    AnnualCampaignOptions opts;
    opts.maxTrials = 16;
    opts.seed = 99;
    opts.threads = 4;
    const auto a = fingerprint(runAnnualCampaign(testSpec(), opts));
    const auto b = fingerprint(runAnnualCampaign(testSpec(), opts));
    EXPECT_EQ(a, b);
}

TEST(AnnualCampaign, DifferentSeedsDiverge)
{
    AnnualCampaignOptions opts;
    opts.maxTrials = 16;
    opts.threads = 2;
    opts.seed = 1;
    const auto a = runAnnualCampaign(testSpec(), opts);
    opts.seed = 2;
    const auto b = runAnnualCampaign(testSpec(), opts);
    EXPECT_NE(a.downtimeMin.summary().sum(),
              b.downtimeMin.summary().sum());
}

TEST(AnnualCampaign, EarlyStopRespectsMinTrialsAndTolerance)
{
    AnnualCampaignOptions opts;
    opts.maxTrials = 200;
    opts.seed = 5;
    opts.threads = 2;
    opts.minTrials = 16;
    opts.ciRelTol = 1e9; // absurdly loose: stop at exactly minTrials
    const auto s = runAnnualCampaign(testSpec(), opts);
    EXPECT_EQ(s.trials, 16u);
    EXPECT_TRUE(s.stoppedEarly);
    EXPECT_EQ(s.planned, 200u);

    // And the early-stopped prefix matches a straight 16-trial run.
    AnnualCampaignOptions full;
    full.maxTrials = 16;
    full.seed = 5;
    full.threads = 1;
    const auto prefix = runAnnualCampaign(testSpec(), full);
    EXPECT_EQ(fingerprint(s), fingerprint(prefix));
}

TEST(AnnualCampaign, MatchesAnnualSimulatorSummary)
{
    // The re-platformed AnnualSimulator::runYears and the campaign
    // engine draw identical per-year streams, so their Welford
    // moments agree exactly.
    const auto spec = testSpec();
    AnnualCampaignOptions opts;
    opts.maxTrials = 12;
    opts.seed = 77;
    opts.threads = 2;
    const auto campaign = runAnnualCampaign(spec, opts);

    AnnualSimulator sim;
    const auto years =
        sim.runYears(spec.profile, spec.nServers, spec.technique,
                     spec.config, 12, 77);
    EXPECT_EQ(campaign.downtimeMin.summary().mean(),
              years.downtimeMin.mean());
    EXPECT_EQ(campaign.batteryKwh.summary().sum(),
              years.batteryKwh.sum());
    EXPECT_EQ(campaign.worstGapMin.summary().max(),
              years.worstGapMin.max());
    EXPECT_EQ(campaign.lossFree.fraction, years.lossFreeYears);
}

TEST(AnnualCampaign, CustomTrialBodies)
{
    AnnualCampaignOptions opts;
    opts.maxTrials = 32;
    opts.seed = 3;
    opts.threads = 2;
    const auto s = runAnnualCampaign(
        [](std::uint64_t id, Rng &rng) {
            AnnualResult r;
            r.downtimeMin = rng.nextDouble();
            r.losses = id % 4 == 0 ? 1 : 0;
            return r;
        },
        opts);
    EXPECT_EQ(s.trials, 32u);
    EXPECT_EQ(s.lossFreeTrials, 24u);
    EXPECT_DOUBLE_EQ(s.lossFree.fraction, 0.75);
    EXPECT_GT(s.downtimeMin.summary().mean(), 0.0);
    EXPECT_LT(s.downtimeMin.summary().mean(), 1.0);
}

// Scaling check for many-core machines. On 8+ cores the 200-trial
// campaign must beat the serial baseline by >= 4x (the acceptance
// bar); 4-7 cores get a proportionally lower bar; below 4 cores the
// measurement is meaningless and the test skips.
TEST(AnnualCampaign, ParallelSpeedupOnManyCoreHosts)
{
    const int hw = WorkStealingPool::hardwareThreads();
    if (hw < 4)
        GTEST_SKIP() << "only " << hw << " hardware threads";

    AnnualCampaignOptions opts;
    opts.maxTrials = 200;
    opts.seed = 2014;

    opts.threads = 1;
    const auto serial = runAnnualCampaign(testSpec(), opts);
    opts.threads = hw;
    const auto parallel = runAnnualCampaign(testSpec(), opts);

    ASSERT_GT(serial.wallSeconds, 0.0);
    ASSERT_GT(parallel.wallSeconds, 0.0);
    const double speedup = serial.wallSeconds / parallel.wallSeconds;
    const double bar = hw >= 8 ? 4.0 : 2.0;
    EXPECT_GE(speedup, bar)
        << "serial " << serial.wallSeconds << " s vs parallel "
        << parallel.wallSeconds << " s on " << hw << " threads";
    EXPECT_EQ(fingerprint(serial), fingerprint(parallel));
}

} // namespace
} // namespace bpsim
