/**
 * @file
 * Tests for the work-stealing thread pool: exactly-once execution,
 * stealing under skew, cancellation, and nesting.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "campaign/thread_pool.hh"

namespace bpsim
{
namespace
{

TEST(WorkStealingPool, RunsEveryIndexExactlyOnce)
{
    constexpr std::uint64_t kN = 20000;
    WorkStealingPool pool(4);
    std::vector<std::atomic<int>> hits(kN);
    pool.parallelFor(kN, [&](std::uint64_t i) { ++hits[i]; });
    for (std::uint64_t i = 0; i < kN; ++i)
        ASSERT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(WorkStealingPool, ExactlyOnceUnderSkewedWork)
{
    // Front-loaded cost forces thieves to rebalance.
    constexpr std::uint64_t kN = 256;
    WorkStealingPool pool(4);
    std::vector<std::atomic<int>> hits(kN);
    pool.parallelFor(kN, [&](std::uint64_t i) {
        if (i < 8)
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
        ++hits[i];
    });
    for (std::uint64_t i = 0; i < kN; ++i)
        ASSERT_EQ(hits[i].load(), 1);
}

TEST(WorkStealingPool, SingleWorkerRunsAll)
{
    constexpr std::uint64_t kN = 1000;
    WorkStealingPool pool(1);
    std::atomic<std::uint64_t> sum{0};
    pool.parallelFor(kN, [&](std::uint64_t i) { sum += i; });
    EXPECT_EQ(sum.load(), kN * (kN - 1) / 2);
}

TEST(WorkStealingPool, ZeroItemsReturnsImmediately)
{
    WorkStealingPool pool(2);
    bool ran = false;
    pool.parallelFor(0, [&](std::uint64_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(WorkStealingPool, CancellationDiscardsRemainingItems)
{
    constexpr std::uint64_t kN = 100000;
    WorkStealingPool pool(4);
    std::atomic<std::uint64_t> processed{0};
    pool.parallelFor(
        kN, [&](std::uint64_t) { ++processed; },
        [&] { return processed.load() >= 100; });
    // Must return (all items accounted for) having run only a sliver.
    EXPECT_GE(processed.load(), 100u);
    EXPECT_LT(processed.load(), kN / 2);
}

TEST(WorkStealingPool, NestedCallsRunInlineWithoutDeadlock)
{
    WorkStealingPool pool(2);
    std::atomic<int> inner_total{0};
    pool.parallelFor(4, [&](std::uint64_t) {
        pool.parallelFor(8, [&](std::uint64_t) { ++inner_total; });
    });
    EXPECT_EQ(inner_total.load(), 4 * 8);
}

TEST(WorkStealingPool, ReusableAcrossJobs)
{
    WorkStealingPool pool(3);
    for (int round = 0; round < 20; ++round) {
        std::atomic<std::uint64_t> sum{0};
        pool.parallelFor(round + 1,
                         [&](std::uint64_t i) { sum += i + 1; });
        const std::uint64_t n = static_cast<std::uint64_t>(round) + 1;
        ASSERT_EQ(sum.load(), n * (n + 1) / 2);
    }
}

TEST(WorkStealingPool, DefaultsToHardwareThreads)
{
    WorkStealingPool pool;
    EXPECT_EQ(pool.threadCount(), WorkStealingPool::hardwareThreads());
    EXPECT_GE(WorkStealingPool::hardwareThreads(), 1);
}

} // namespace
} // namespace bpsim
