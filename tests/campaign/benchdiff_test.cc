/**
 * @file
 * Perf-gate tests: readBenchmarkJson understands the google-benchmark
 * --benchmark_out format (aggregate preference, repetition averaging,
 * time-unit normalization) and compareBenchRuns applies the
 * warn/fail thresholds — including the --inject-regression self-test
 * path CI uses to prove the gate can actually fail.
 */

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>

#include "campaign/benchdiff.hh"

namespace bpsim
{
namespace
{

std::map<std::string, BenchRun>
parseBenches(const std::string &benchmarks_json)
{
    const std::string text =
        "{\"context\": {\"date\": \"x\"}, \"benchmarks\": [" +
        benchmarks_json + "]}";
    std::string err;
    const auto doc = parseJson(text, &err);
    EXPECT_TRUE(doc.has_value()) << err;
    const auto runs = readBenchmarkJson(*doc, &err);
    EXPECT_TRUE(runs.has_value()) << err;
    return *runs;
}

std::string
entry(const std::string &name, const std::string &run_type,
      const std::string &aggregate, double real, double cpu,
      const std::string &unit = "ns")
{
    std::ostringstream os;
    os << "{\"name\": \"" << name << (aggregate.empty() ? "" : "_")
       << aggregate << "\", \"run_name\": \"" << name
       << "\", \"run_type\": \"" << run_type << "\"";
    if (!aggregate.empty())
        os << ", \"aggregate_name\": \"" << aggregate << "\"";
    os << ", \"real_time\": " << real << ", \"cpu_time\": " << cpu
       << ", \"time_unit\": \"" << unit << "\"}";
    return os.str();
}

TEST(ReadBenchmarkJson, PlainIterationRows)
{
    const auto runs = parseBenches(
        entry("BM_A", "iteration", "", 120.0, 100.0) + "," +
        entry("BM_B/1000", "iteration", "", 3.5, 3.0, "us"));
    ASSERT_EQ(runs.size(), 2u);
    EXPECT_EQ(runs.at("BM_A").cpuTimeNs, 100.0);
    EXPECT_EQ(runs.at("BM_A").realTimeNs, 120.0);
    // us rows normalize to ns.
    EXPECT_EQ(runs.at("BM_B/1000").cpuTimeNs, 3000.0);
}

TEST(ReadBenchmarkJson, RepetitionsAverage)
{
    const auto runs =
        parseBenches(entry("BM_A", "iteration", "", 100.0, 90.0) + "," +
                     entry("BM_A", "iteration", "", 110.0, 110.0));
    ASSERT_EQ(runs.size(), 1u);
    EXPECT_EQ(runs.at("BM_A").cpuTimeNs, 100.0);
    EXPECT_EQ(runs.at("BM_A").realTimeNs, 105.0);
}

TEST(ReadBenchmarkJson, AggregatesBeatIterationsMedianBeatsMean)
{
    const auto runs = parseBenches(
        entry("BM_A", "iteration", "", 1.0, 500.0) + "," +
        entry("BM_A", "aggregate", "mean", 1.0, 105.0) + "," +
        entry("BM_A", "aggregate", "median", 1.0, 100.0) + "," +
        entry("BM_A", "aggregate", "stddev", 1.0, 9999.0));
    ASSERT_EQ(runs.size(), 1u);
    // median wins; stddev is not a timing and is ignored.
    EXPECT_EQ(runs.at("BM_A").cpuTimeNs, 100.0);
}

TEST(ReadBenchmarkJson, RejectsNonBenchmarkDocuments)
{
    std::string err;
    const auto doc = parseJson("{\"foo\": 1}", &err);
    ASSERT_TRUE(doc.has_value()) << err;
    EXPECT_FALSE(readBenchmarkJson(*doc, &err).has_value());
    EXPECT_NE(err.find("benchmarks"), std::string::npos);
}

std::map<std::string, BenchRun>
runsOf(std::initializer_list<std::pair<const char *, double>> items)
{
    std::map<std::string, BenchRun> out;
    for (const auto &[name, cpu] : items) {
        BenchRun r;
        r.name = name;
        r.cpuTimeNs = cpu;
        out.emplace(name, r);
    }
    return out;
}

TEST(CompareBenchRuns, VerdictsFollowTheThresholds)
{
    const auto baseline = runsOf(
        {{"ok", 100.0}, {"warn", 100.0}, {"fail", 100.0}, {"fast", 100.0}});
    const auto current = runsOf(
        {{"ok", 105.0}, {"warn", 115.0}, {"fail", 130.0}, {"fast", 60.0}});
    const auto report = compareBenchRuns(baseline, current);

    ASSERT_EQ(report.deltas.size(), 4u);
    std::map<std::string, BenchVerdict> verdicts;
    for (const auto &d : report.deltas)
        verdicts[d.name] = d.verdict;
    EXPECT_EQ(verdicts.at("ok"), BenchVerdict::Ok);
    EXPECT_EQ(verdicts.at("warn"), BenchVerdict::Warn);
    EXPECT_EQ(verdicts.at("fail"), BenchVerdict::Fail);
    // Speedups never warn.
    EXPECT_EQ(verdicts.at("fast"), BenchVerdict::Ok);
    EXPECT_TRUE(report.anyWarn);
    EXPECT_TRUE(report.anyFail);
}

TEST(CompareBenchRuns, MissingBenchmarksWarnInsteadOfFailing)
{
    const auto baseline = runsOf({{"renamed_away", 100.0}, {"ok", 100.0}});
    const auto current = runsOf({{"renamed_to", 100.0}, {"ok", 100.0}});
    const auto report = compareBenchRuns(baseline, current);

    ASSERT_EQ(report.deltas.size(), 3u);
    int missing = 0;
    for (const auto &d : report.deltas)
        if (d.verdict == BenchVerdict::Missing)
            ++missing;
    EXPECT_EQ(missing, 2);
    EXPECT_TRUE(report.anyWarn);
    EXPECT_FALSE(report.anyFail);
}

TEST(CompareBenchRuns, InjectedRegressionFailsTheGate)
{
    // The CI self-test path: identical runs pass clean, and the same
    // runs with a +50% synthetic regression must fail.
    const auto runs = runsOf({{"BM_A", 100.0}, {"BM_B", 2000.0}});
    EXPECT_FALSE(compareBenchRuns(runs, runs).anyFail);

    BenchCompareOptions opts;
    opts.injectRegression = 0.50;
    const auto report = compareBenchRuns(runs, runs, opts);
    EXPECT_TRUE(report.anyFail);
    for (const auto &d : report.deltas) {
        EXPECT_EQ(d.verdict, BenchVerdict::Fail) << d.name;
        EXPECT_NEAR(d.change, 0.50, 1e-12);
    }
}

TEST(CompareBenchRuns, CustomThresholds)
{
    const auto baseline = runsOf({{"a", 100.0}});
    const auto current = runsOf({{"a", 108.0}});
    BenchCompareOptions strict;
    strict.warnOver = 0.02;
    strict.failOver = 0.05;
    const auto report = compareBenchRuns(baseline, current, strict);
    ASSERT_EQ(report.deltas.size(), 1u);
    EXPECT_EQ(report.deltas[0].verdict, BenchVerdict::Fail);
}

TEST(WriteBenchCompareReport, OneLinePerBenchmark)
{
    const auto baseline = runsOf({{"a", 100.0}, {"gone", 5.0}});
    const auto current = runsOf({{"a", 130.0}});
    std::ostringstream os;
    writeBenchCompareReport(os, compareBenchRuns(baseline, current));
    const std::string text = os.str();
    EXPECT_NE(text.find("FAIL"), std::string::npos);
    EXPECT_NE(text.find("missing"), std::string::npos);
    EXPECT_NE(text.find("+30.0%"), std::string::npos);
}

} // namespace
} // namespace bpsim
