/**
 * @file
 * Tests for the distributed sharding layer: the acceptance gate is
 * that merging 1, 2, 7 or 16 shard runs of the same campaign yields
 * bit-identical counts, means, CIs and Wilson intervals, quantiles
 * within the t-digest rank-error budget, an identical early-stop
 * replay, and a byte-stable on-disk format (golden fixture).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/annual_campaign.hh"
#include "campaign/shard.hh"
#include "core/backup_config.hh"
#include "sim/logging.hh"
#include "workload/profile.hh"

namespace bpsim
{
namespace
{

/** Same cheap scenario campaign_test.cc uses. */
AnnualCampaignSpec
testSpec()
{
    AnnualCampaignSpec spec;
    spec.profile = specJbbProfile();
    spec.nServers = 4;
    spec.technique = {TechniqueKind::Throttle, 5, 0, 0, false};
    spec.config = noDgConfig();
    return spec;
}

constexpr std::uint64_t kSeed = 99;
constexpr std::uint64_t kTrials = 64;

/** Run the test campaign as @p count shards and merge. */
MergedCampaign
runSharded(std::uint64_t count, std::uint64_t checkpoint_every = 0,
           const EarlyStopRule *rule = nullptr)
{
    std::vector<ShardResult> shards;
    ShardOptions opts;
    opts.checkpointEvery = checkpoint_every;
    for (std::uint64_t i = 0; i < count; ++i)
        shards.push_back(runAnnualShard(
            testSpec(), shardOf(kSeed, kTrials, i, count), opts));
    // Merge in reverse order: the result must not care.
    std::reverse(shards.begin(), shards.end());
    std::string err;
    const auto merged = mergeShards(std::move(shards), rule, &err);
    EXPECT_TRUE(merged.has_value()) << err;
    return *merged;
}

/** Every merged field that must be bitwise shard-count invariant. */
std::vector<double>
fingerprint(const MergedCampaign &m)
{
    std::vector<double> f;
    f.push_back(static_cast<double>(m.trials));
    f.push_back(static_cast<double>(m.lossFreeTrials));
    for (const MergingMetric *metric :
         {&m.downtimeMin, &m.lossesPerYear, &m.meanPerf, &m.batteryKwh,
          &m.worstGapMin}) {
        f.push_back(static_cast<double>(metric->count()));
        f.push_back(metric->mean());
        f.push_back(metric->variance());
        f.push_back(metric->meanCiHalfWidth());
        f.push_back(metric->min());
        f.push_back(metric->max());
    }
    f.push_back(m.lossFree.fraction);
    f.push_back(m.lossFree.lo);
    f.push_back(m.lossFree.hi);
    return f;
}

TEST(ShardSpec, BalancedContiguousPartition)
{
    for (const std::uint64_t count : {1u, 2u, 7u, 16u, 63u, 64u}) {
        std::uint64_t next = 0;
        for (std::uint64_t i = 0; i < count; ++i) {
            const ShardSpec s = shardOf(kSeed, kTrials, i, count);
            EXPECT_EQ(s.lo, next);
            EXPECT_GE(s.width(), kTrials / count);
            EXPECT_LE(s.width(), kTrials / count + 1);
            EXPECT_EQ(s.seed, kSeed);
            EXPECT_EQ(s.campaignTrials, kTrials);
            EXPECT_EQ(s.shardIndex, i);
            EXPECT_EQ(s.shardCount, count);
            next = s.hi;
        }
        EXPECT_EQ(next, kTrials);
    }
}

TEST(ShardMerge, BitIdenticalForAnyShardCount)
{
    const auto baseline = fingerprint(runSharded(1));
    ASSERT_FALSE(baseline.empty());
    EXPECT_GT(baseline[0], 0.0);
    for (const std::uint64_t count : {2u, 7u, 16u}) {
        const auto f = fingerprint(runSharded(count));
        ASSERT_EQ(f.size(), baseline.size());
        for (std::size_t i = 0; i < f.size(); ++i)
            EXPECT_EQ(f[i], baseline[i])
                << "field " << i << " differs at " << count << " shards";
    }
}

TEST(ShardMerge, QuantilesWithinDigestToleranceOfExact)
{
    // Width-1 shards expose the exact per-trial downtime values
    // (each singleton's mean IS the trial's observation).
    std::vector<double> exact;
    for (std::uint64_t i = 0; i < kTrials; ++i) {
        const auto s =
            runAnnualShard(testSpec(), shardOf(kSeed, kTrials, i, kTrials));
        EXPECT_EQ(s.trials, 1u);
        exact.push_back(s.downtimeMin.mean());
    }
    std::sort(exact.begin(), exact.end());

    for (const std::uint64_t count : {1u, 16u}) {
        const MergedCampaign m = runSharded(count);
        for (const double q : {0.50, 0.95, 0.99}) {
            const double est = m.downtimeMin.quantile(q);
            // Empirical rank of the estimate (mid-rank for ties).
            const double lo = static_cast<double>(
                std::lower_bound(exact.begin(), exact.end(), est) -
                exact.begin());
            const double hi = static_cast<double>(
                std::upper_bound(exact.begin(), exact.end(), est) -
                exact.begin());
            const double rank =
                0.5 * (lo + hi) / static_cast<double>(exact.size());
            // n=64 with delta=100 keeps every point its own centroid,
            // so rank error is dominated by interpolation: allow one
            // rank position either way.
            EXPECT_NEAR(rank, q, 1.5 / static_cast<double>(kTrials))
                << "q=" << q << " at " << count << " shards";
        }
        EXPECT_EQ(m.downtimeMin.quantile(0.0), exact.front());
        EXPECT_EQ(m.downtimeMin.quantile(1.0), exact.back());
    }
}

TEST(ShardMerge, EarlyStopReplayIsShardCountInvariant)
{
    EarlyStopRule rule;
    rule.minTrials = 16;
    rule.ciRelTol = 0.25; // loose enough to fire inside 64 trials
    const MergedCampaign base = runSharded(1, 1, &rule);
    for (const std::uint64_t count : {2u, 7u, 16u}) {
        const MergedCampaign m = runSharded(count, 1, &rule);
        EXPECT_EQ(m.earlyStop.fired, base.earlyStop.fired);
        EXPECT_EQ(m.earlyStop.stopTrial, base.earlyStop.stopTrial);
        EXPECT_EQ(m.earlyStop.halfWidth, base.earlyStop.halfWidth);
        EXPECT_EQ(m.earlyStop.mean, base.earlyStop.mean);
    }
}

TEST(ShardMerge, EarlyStopReplayMatchesSingleMachineRule)
{
    // The coordinator replay at checkpointEvery=1 must agree with the
    // live single-machine early stop on where to cut the campaign.
    EarlyStopRule rule;
    rule.minTrials = 16;
    rule.ciRelTol = 0.25;

    AnnualCampaignOptions opts;
    opts.maxTrials = kTrials;
    opts.seed = kSeed;
    opts.minTrials = rule.minTrials;
    opts.ciRelTol = rule.ciRelTol;
    const auto live = runAnnualCampaign(testSpec(), opts);

    const MergedCampaign replay = runSharded(4, 1, &rule);
    EXPECT_EQ(replay.earlyStop.fired, live.stoppedEarly);
    if (live.stoppedEarly) {
        EXPECT_EQ(replay.earlyStop.stopTrial, live.trials);
    }
}

TEST(ShardIo, RoundTripIsLossless)
{
    ShardOptions opts;
    opts.checkpointEvery = 4;
    const ShardResult out =
        runAnnualShard(testSpec(), shardOf(kSeed, kTrials, 1, 7), opts);

    std::ostringstream os;
    writeShardJson(os, out);
    std::string err;
    const auto back = readShardJson(os.str(), &err);
    ASSERT_TRUE(back.has_value()) << err;

    // Re-serialization must be byte-identical (canonical format).
    std::ostringstream os2;
    writeShardJson(os2, *back);
    EXPECT_EQ(os.str(), os2.str());

    EXPECT_EQ(back->spec.lo, out.spec.lo);
    EXPECT_EQ(back->spec.hi, out.spec.hi);
    EXPECT_EQ(back->trials, out.trials);
    EXPECT_EQ(back->lossFreeTrials, out.lossFreeTrials);
    EXPECT_EQ(back->checkpoints.size(), out.checkpoints.size());
    EXPECT_EQ(back->downtimeMin.mean(), out.downtimeMin.mean());
    EXPECT_EQ(back->downtimeMin.meanCiHalfWidth(),
              out.downtimeMin.meanCiHalfWidth());
    EXPECT_EQ(back->downtimeMin.p99(), out.downtimeMin.p99());
}

/**
 * The golden shard: synthetic, with dyadic-rational observations (so
 * every double prints exactly) and a pinned build string — any change
 * to the serialized bytes is a schema change and must bump
 * kShardSchemaVersion plus regenerate the fixture
 * (BPSIM_WRITE_FIXTURES=1 ./shard_test).
 */
ShardResult
goldenShard()
{
    ShardResult r;
    r.spec.seed = 7;
    r.spec.campaignTrials = 4;
    r.spec.lo = 0;
    r.spec.hi = 2;
    r.spec.shardIndex = 0;
    r.spec.shardCount = 2;
    r.trials = 2;
    const double d0 = 1.5, d1 = 2.25;
    r.downtimeMin.add(d0);
    r.downtimeMin.add(d1);
    r.lossesPerYear.add(0.0);
    r.lossesPerYear.add(1.0);
    r.meanPerf.add(0.875);
    r.meanPerf.add(0.75);
    r.batteryKwh.add(12.5);
    r.batteryKwh.add(0.0);
    r.worstGapMin.add(0.0);
    r.worstGapMin.add(8.125);
    r.lossFreeTrials = 1;
    ShardCheckpoint c0;
    c0.trials = 1;
    c0.sum.add(d0);
    c0.sumSq.add(d0 * d0);
    ShardCheckpoint c1;
    c1.trials = 2;
    c1.sum.add(d0);
    c1.sum.add(d1);
    c1.sumSq.add(d0 * d0);
    c1.sumSq.add(d1 * d1);
    r.checkpoints = {c0, c1};
    r.build = "golden-fixture";
    r.wallSeconds = 0.25;
    return r;
}

TEST(ShardIo, GoldenFileIsByteStable)
{
    const std::string path =
        std::string(BPSIM_FIXTURE_DIR) + "/shard_v1.json";
    std::ostringstream os;
    writeShardJson(os, goldenShard());

    if (std::getenv("BPSIM_WRITE_FIXTURES") != nullptr) {
        std::ofstream f(path);
        ASSERT_TRUE(f.good()) << path;
        f << os.str();
        GTEST_SKIP() << "fixture regenerated: " << path;
    }

    std::ifstream f(path);
    ASSERT_TRUE(f.good()) << "missing fixture " << path;
    std::ostringstream want;
    want << f.rdbuf();
    EXPECT_EQ(os.str(), want.str())
        << "shard schema drifted: bump kShardSchemaVersion and "
           "regenerate with BPSIM_WRITE_FIXTURES=1";

    // And the committed fixture parses back to the same aggregates.
    std::string err;
    const auto back = readShardJson(want.str(), &err);
    ASSERT_TRUE(back.has_value()) << err;
    EXPECT_EQ(back->downtimeMin.mean(), goldenShard().downtimeMin.mean());
    EXPECT_EQ(back->build, "golden-fixture");
}

TEST(ShardIo, LegacyFileWithoutIncidentsParsesAndMerges)
{
    // Shard files written before the incident-forensics rollup carry
    // no "incidents" key. They must keep their schema-v1 bytes (the
    // golden test above pins that), parse back with an empty
    // aggregate, and merge cleanly with newer shards that do carry
    // forensics.
    std::ostringstream os;
    writeShardJson(os, goldenShard());
    const std::string text = os.str();
    ASSERT_EQ(text.find("\"incidents\""), std::string::npos)
        << "uninstrumented shard files must not grow an incidents key";

    std::string err;
    const auto legacy = readShardJson(text, &err);
    ASSERT_TRUE(legacy.has_value()) << err;
    EXPECT_TRUE(legacy->incidents.empty());

    // The other half of the same campaign, written by a newer binary
    // with forensics enabled.
    ShardResult upper = goldenShard();
    upper.spec.lo = 2;
    upper.spec.hi = 4;
    upper.spec.shardIndex = 1;
    upper.checkpoints.clear();
    obs::TrialForensics t;
    t.trial = 2;
    t.reportedDowntimeMin = 1.5;
    t.attributedMin[static_cast<std::size_t>(
        obs::RootCause::CapacityShortfall)] = 1.5;
    t.hasTrialEnd = true;
    upper.incidents.addTrial(t);

    std::ostringstream os2;
    writeShardJson(os2, upper);
    EXPECT_NE(os2.str().find("\"incidents\""), std::string::npos);
    const auto newer = readShardJson(os2.str(), &err);
    ASSERT_TRUE(newer.has_value()) << err;

    const auto merged = mergeShards({*legacy, *newer}, nullptr, &err);
    ASSERT_TRUE(merged.has_value()) << err;
    EXPECT_EQ(merged->trials, 4u);
    EXPECT_EQ(merged->incidents.trials(), 1u);
    EXPECT_DOUBLE_EQ(merged->incidents.attributedTotalMin(), 1.5);
}

TEST(ShardIo, RejectsForeignSchema)
{
    std::ostringstream os;
    writeShardJson(os, goldenShard());
    std::string text = os.str();

    // Not JSON at all.
    std::string err;
    EXPECT_FALSE(readShardJson("{oops", &err).has_value());
    EXPECT_FALSE(err.empty());

    // Wrong schema name.
    std::string renamed = text;
    const auto name_at = renamed.find(kShardSchemaName);
    ASSERT_NE(name_at, std::string::npos);
    renamed.replace(name_at, std::string(kShardSchemaName).size(),
                    "someone.elses.schema");
    EXPECT_FALSE(readShardJson(renamed, &err).has_value());

    // Future schema version.
    std::string bumped = text;
    const std::string ver = "\"schema_version\":1";
    const auto ver_at = bumped.find(ver);
    ASSERT_NE(ver_at, std::string::npos);
    bumped.replace(ver_at, ver.size(), "\"schema_version\":999");
    EXPECT_FALSE(readShardJson(bumped, &err).has_value());
    EXPECT_NE(err.find("version"), std::string::npos);
}

TEST(ShardMerge, RejectsInconsistentShardSets)
{
    auto run = [](std::uint64_t seed, std::uint64_t trials,
                  std::uint64_t i, std::uint64_t n) {
        return runAnnualShard(testSpec(), shardOf(seed, trials, i, n));
    };
    const auto a = run(kSeed, 8, 0, 2);
    const auto b = run(kSeed, 8, 1, 2);

    std::string err;
    // Complete set is fine.
    EXPECT_TRUE(mergeShards({a, b}, nullptr, &err).has_value()) << err;
    // Missing shard -> gap.
    EXPECT_FALSE(mergeShards({a}, nullptr, &err).has_value());
    // Duplicate shard -> overlap.
    EXPECT_FALSE(mergeShards({a, a, b}, nullptr, &err).has_value());
    // Seed mismatch.
    const auto foreign = run(kSeed + 1, 8, 1, 2);
    EXPECT_FALSE(mergeShards({a, foreign}, nullptr, &err).has_value());
    EXPECT_FALSE(err.empty());
    // Campaign-size mismatch.
    const auto other_n = run(kSeed, 12, 1, 2);
    EXPECT_FALSE(mergeShards({a, other_n}, nullptr, &err).has_value());
    // Empty input.
    EXPECT_FALSE(mergeShards({}, nullptr, &err).has_value());
}

TEST(ShardRun, ThreadCountDoesNotChangeAggregates)
{
    ShardOptions serial;
    serial.threads = 1;
    ShardOptions wide;
    wide.threads = 8;
    const auto spec = shardOf(kSeed, 32, 0, 1);
    const auto a = runAnnualShard(testSpec(), spec, serial);
    const auto b = runAnnualShard(testSpec(), spec, wide);
    EXPECT_EQ(a.downtimeMin.mean(), b.downtimeMin.mean());
    EXPECT_EQ(a.downtimeMin.variance(), b.downtimeMin.variance());
    EXPECT_EQ(a.downtimeMin.p99(), b.downtimeMin.p99());
    EXPECT_EQ(a.lossFreeTrials, b.lossFreeTrials);
}

} // namespace
} // namespace bpsim
