/**
 * @file
 * Differential equivalence harness for the batched SoA trial kernel
 * (campaign/batch_kernel): the scalar event-driven AnnualSimulator is
 * the reference, and every batched result must match it BIT FOR BIT.
 * The sweeps cover Table 3 configurations x technique kinds x batch
 * sizes (1, 3, 8, 64, and one larger than the campaign, exercising
 * the remainder chunk) x thread counts, and assert equality at every
 * layer a consumer can observe: per-trial AnnualResults, campaign
 * summary JSON (means, CIs, P^2 and t-digest quantiles), shard file
 * bytes, obs histograms, and incident aggregates. The golden-fixture
 * replays prove the obs-enabled fallback path reproduces the exact
 * committed trace and incident bytes.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/annual_campaign.hh"
#include "campaign/batch_kernel.hh"
#include "campaign/json.hh"
#include "campaign/shard.hh"
#include "core/backup_config.hh"
#include "obs/obs.hh"
#include "outage/trace.hh"
#include "sim/logging.hh"
#include "workload/profile.hh"

namespace bpsim
{
namespace
{

constexpr Time kYear = 365LL * 24 * kHour;
constexpr std::uint64_t kSeed = 2014;

/** Bit pattern of a double: stricter than == (distinguishes -0.0). */
std::uint64_t
bits(double x)
{
    std::uint64_t u;
    std::memcpy(&u, &x, sizeof u);
    return u;
}

#define EXPECT_BITEQ(a, b) EXPECT_EQ(bits(a), bits(b))

void
expectResultBitEqual(const AnnualResult &got, const AnnualResult &want,
                     const std::string &context)
{
    EXPECT_EQ(got.outages, want.outages) << context;
    EXPECT_EQ(got.losses, want.losses) << context;
    EXPECT_BITEQ(got.downtimeMin, want.downtimeMin) << context;
    EXPECT_BITEQ(got.meanPerf, want.meanPerf) << context;
    EXPECT_BITEQ(got.batteryKwh, want.batteryKwh) << context;
    EXPECT_BITEQ(got.worstGapMin, want.worstGapMin) << context;
}

/** The cheap fast-path scenario the micro benchmarks also use. */
AnnualCampaignSpec
throttleSpec(const BackupConfigSpec &config)
{
    AnnualCampaignSpec spec;
    spec.profile = specJbbProfile();
    spec.nServers = 4;
    spec.technique = {TechniqueKind::Throttle, 5, 0, 0, false};
    spec.config = config;
    return spec;
}

/** One TechniqueSpec per kind, matching the sweeps' standing defenses. */
std::vector<TechniqueSpec>
allTechniqueKinds()
{
    std::vector<TechniqueSpec> specs;
    for (const TechniqueKind kind :
         {TechniqueKind::None, TechniqueKind::Throttle,
          TechniqueKind::Sleep, TechniqueKind::Hibernate,
          TechniqueKind::ProactiveHibernate, TechniqueKind::Migration,
          TechniqueKind::ProactiveMigration,
          TechniqueKind::MigrationSleep, TechniqueKind::ThrottleSleep,
          TechniqueKind::ThrottleHibernate, TechniqueKind::GeoFailover,
          TechniqueKind::Adaptive}) {
        specs.push_back({kind, 5, 0, fromMinutes(4.0), false});
    }
    return specs;
}

/** Deterministic summary serialization (timing fields omitted). */
std::string
summaryJson(const AnnualCampaignSummary &s)
{
    std::ostringstream os;
    CampaignJsonOptions jopts;
    jopts.includeTiming = false;
    writeCampaignJson(os, s, jopts);
    return os.str();
}

std::string
runCampaignJson(const AnnualCampaignSpec &spec,
                std::uint64_t trials, std::uint64_t batch, int threads,
                double ci_rel_tol = 0.0)
{
    AnnualCampaignOptions opts;
    opts.maxTrials = trials;
    opts.seed = kSeed;
    opts.threads = threads;
    opts.batch = batch;
    opts.minTrials = 8;
    opts.ciRelTol = ci_rel_tol;
    return summaryJson(runAnnualCampaign(spec, opts));
}

/** Shard file bytes with the wall clock (the one nondeterministic
 * field) normalized out. */
std::string
shardJson(ShardResult shard)
{
    shard.wallSeconds = 0.0;
    std::ostringstream os;
    writeShardJson(os, shard);
    return os.str();
}

/** Arm tracing for one test; restore a clean disabled state after. */
struct TracingOn
{
    TracingOn()
    {
        obs::TraceSink::instance().clear();
        obs::setEnabled(true);
    }
    ~TracingOn()
    {
        obs::setEnabled(false);
        obs::TraceSink::instance().clear();
    }
};

TEST(BatchKernelEligibility, FastPathCoversTheCommonCampaignShapes)
{
    const auto eligible = [](const AnnualCampaignSpec &spec) {
        return BatchAnnualKernel(spec.profile, spec.nServers,
                                 spec.technique, spec.config)
            .fastPathEligible();
    };

    // UPS-less and offline-UPS configs under None/Throttle: fast path.
    EXPECT_TRUE(eligible(throttleSpec(noDgConfig())));
    EXPECT_TRUE(eligible(throttleSpec(minCostConfig())));
    AnnualCampaignSpec none = throttleSpec(noDgConfig());
    none.technique = {};
    EXPECT_TRUE(eligible(none));

    // Diesel generators need the event-driven start/transfer chain.
    EXPECT_FALSE(eligible(throttleSpec(noUpsConfig())));
    EXPECT_FALSE(eligible(throttleSpec(dgSmallPUpsConfig())));

    // Stateful techniques (sleep timers, migration) stay scalar.
    AnnualCampaignSpec sleeper = throttleSpec(noDgConfig());
    sleeper.technique = {TechniqueKind::ThrottleSleep, 5, 0,
                         fromMinutes(4.0), false};
    EXPECT_FALSE(eligible(sleeper));
}

TEST(BatchKernelEligibility, TraceEligibilityGuardsTheReplayWindow)
{
    const auto spec = throttleSpec(noDgConfig());
    const BatchAnnualKernel kernel(spec.profile, spec.nServers,
                                   spec.technique, spec.config);
    ASSERT_TRUE(kernel.fastPathEligible());

    EXPECT_TRUE(kernel.traceEligible({}));
    EXPECT_TRUE(kernel.traceEligible({{kHour, kMinute}}));
    // Outage running past the horizon.
    EXPECT_FALSE(kernel.traceEligible({{kYear - kMinute, kHour}}));
    // Zero-length outage.
    EXPECT_FALSE(kernel.traceEligible({{kHour, 0}}));
    // Outage at t=0: no settled steady state before it.
    EXPECT_FALSE(kernel.traceEligible({{0, kMinute}}));
    // Second outage inside the first one's recovery window.
    EXPECT_FALSE(kernel.traceEligible(
        {{kHour, kMinute}, {kHour + kMinute + fromSeconds(1.0), kMinute}}));

    // The Figure 1 generator's minimum gap (1 h) keeps every sampled
    // trace inside the replay window.
    const auto gen = OutageTraceGenerator::figure1();
    for (std::uint64_t id = 0; id < 256; ++id) {
        Rng rng = Rng::stream(kSeed, id);
        EXPECT_TRUE(kernel.traceEligible(gen.generate(rng, kYear)))
            << "trial " << id;
    }
}

TEST(BatchKernelPerTrial, FastReplayBitEqualsScalarSimulator)
{
    const auto gen = OutageTraceGenerator::figure1();
    const AnnualSimulator sim;
    for (const auto &config : table3Configs()) {
        const auto spec = throttleSpec(config);
        const BatchAnnualKernel kernel(spec.profile, spec.nServers,
                                       spec.technique, spec.config);
        if (!kernel.fastPathEligible())
            continue;
        for (std::uint64_t id = 0; id < 64; ++id) {
            Rng rng = Rng::stream(kSeed, id);
            const auto events = gen.generate(rng, kYear);
            ASSERT_TRUE(kernel.traceEligible(events));
            expectResultBitEqual(
                kernel.runFastTrace(events),
                sim.runYear(spec.profile, spec.nServers, spec.technique,
                            spec.config, events),
                config.name + " trial " + std::to_string(id));
        }
    }
}

TEST(BatchKernelPerTrial, RunBatchBitEqualsScalarForEveryPartition)
{
    constexpr std::uint64_t kTrials = 64;
    const auto gen = OutageTraceGenerator::figure1();
    const AnnualSimulator sim;
    const auto spec = throttleSpec(noDgConfig());
    const BatchAnnualKernel kernel(spec.profile, spec.nServers,
                                   spec.technique, spec.config);

    std::vector<AnnualResult> want(kTrials);
    for (std::uint64_t id = 0; id < kTrials; ++id) {
        Rng rng = Rng::stream(kSeed, id);
        want[id] = sim.runYear(spec.profile, spec.nServers,
                               spec.technique, spec.config,
                               gen.generate(rng, kYear));
    }

    for (const std::uint64_t batch : {1ull, 3ull, 8ull, 64ull, 1000ull}) {
        std::vector<AnnualResult> got(kTrials);
        for (std::uint64_t lo = 0; lo < kTrials;) {
            const std::uint64_t hi = std::min(lo + batch, kTrials);
            kernel.runBatch(kSeed, lo, hi, got.data() + lo);
            lo = hi;
        }
        for (std::uint64_t id = 0; id < kTrials; ++id)
            expectResultBitEqual(got[id], want[id],
                                 "batch " + std::to_string(batch) +
                                     " trial " + std::to_string(id));
    }
}

TEST(BatchCampaign, SummaryBytesInvariantAcrossBatchAndThreads)
{
    constexpr std::uint64_t kTrials = 64;
    for (const auto &config : table3Configs()) {
        const auto spec = throttleSpec(config);
        const std::string want = runCampaignJson(spec, kTrials, 0, 1);
        for (const std::uint64_t batch : {1ull, 3ull, 8ull, 64ull, 1000ull})
            for (const int threads : {1, 4, 16})
                EXPECT_EQ(runCampaignJson(spec, kTrials, batch, threads),
                          want)
                    << config.name << " batch " << batch << " threads "
                    << threads;
    }
}

TEST(BatchCampaign, AllTechniqueKindsMatchScalar)
{
    // Non-fast-path kinds exercise the lane-by-lane scalar fallback
    // through the batched chunk driver; the summary must still be
    // byte-identical for any batch and thread count.
    constexpr std::uint64_t kTrials = 24;
    for (const auto &technique : allTechniqueKinds()) {
        AnnualCampaignSpec spec = throttleSpec(noDgConfig());
        spec.technique = technique;
        const std::string want = runCampaignJson(spec, kTrials, 0, 1);
        for (const int threads : {1, 4})
            EXPECT_EQ(runCampaignJson(spec, kTrials, 7, threads), want)
                << "kind " << static_cast<int>(technique.kind)
                << " threads " << threads;
    }
}

TEST(BatchCampaign, EarlyStopFiresAtTheSameTrial)
{
    // A loose CI tolerance stops the campaign mid-flight; the batched
    // driver must stop after the SAME in-order trial prefix, for any
    // chunking, so trials/stopped_early/aggregates all serialize
    // identically.
    const auto spec = throttleSpec(noDgConfig());
    const std::string want = runCampaignJson(spec, 400, 0, 1, 0.25);
    {
        std::string err;
        const auto doc = parseJson(want, &err);
        ASSERT_TRUE(doc.has_value()) << err;
        ASSERT_TRUE(doc->at("stopped_early").asBool())
            << "tolerance did not trigger an early stop; sweep "
               "parameters need retuning: "
            << want;
    }
    for (const std::uint64_t batch : {1ull, 3ull, 8ull, 64ull})
        for (const int threads : {1, 4, 16})
            EXPECT_EQ(runCampaignJson(spec, 400, batch, threads, 0.25),
                      want)
                << "batch " << batch << " threads " << threads;
}

TEST(BatchShard, ShardFileBytesInvariantAcrossBatchAndThreads)
{
    constexpr std::uint64_t kTrials = 48;
    const auto spec = throttleSpec(noDgConfig());
    for (std::uint64_t index = 0; index < 3; ++index) {
        const ShardSpec sspec = shardOf(kSeed, kTrials, index, 3);
        ShardOptions base;
        base.threads = 1;
        base.checkpointEvery = 5;
        const std::string want =
            shardJson(runAnnualShard(spec, sspec, base));
        for (const std::uint64_t batch : {1ull, 3ull, 8ull, 64ull})
            for (const int threads : {1, 4, 16}) {
                ShardOptions opts = base;
                opts.threads = threads;
                opts.batch = batch;
                EXPECT_EQ(shardJson(runAnnualShard(spec, sspec, opts)),
                          want)
                    << "shard " << index << " batch " << batch
                    << " threads " << threads;
            }
    }
}

TEST(BatchShard, ObsHistogramsAndIncidentsMatchScalar)
{
    // With observability armed the shard file also carries counters,
    // histogram buckets, and the incident-forensics rollup; the
    // batched driver (which runs every lane through the scalar
    // fallback precisely so the trace stays identical) must reproduce
    // all of them byte for byte.
    constexpr std::uint64_t kTrials = 8;
    AnnualCampaignSpec spec = throttleSpec(minCostConfig());
    spec.technique = {TechniqueKind::ThrottleSleep, 5, 0,
                      fromMinutes(4.0), true};

    const auto run = [&](std::uint64_t batch, int threads) {
        const TracingOn guard;
        ShardOptions opts;
        opts.threads = threads;
        opts.batch = batch;
        return shardJson(
            runAnnualShard(spec, shardOf(kSeed, kTrials, 0, 1), opts));
    };

    const std::string want = run(0, 1);
    EXPECT_NE(want.find("histograms"), std::string::npos);
    EXPECT_NE(want.find("incidents"), std::string::npos);
    for (const std::uint64_t batch : {1ull, 3ull, 8ull})
        for (const int threads : {1, 4})
            EXPECT_EQ(run(batch, threads), want)
                << "batch " << batch << " threads " << threads;
}

/**
 * @name Golden-fixture replays
 * The obs golden fixtures (tests/obs/fixtures/) pin the exact trace
 * and incident bytes of two reference shard runs. Re-running them
 * through the batched driver must reproduce the committed bytes —
 * the strongest possible statement that batching changed nothing a
 * consumer can see.
 */
///@{

std::string
readFixture(const std::string &name)
{
    const std::string path = std::string(BPSIM_OBS_FIXTURE_DIR) + "/" +
                             name;
    std::ifstream f(path);
    EXPECT_TRUE(f.good()) << "missing fixture " << path;
    std::ostringstream os;
    os << f.rdbuf();
    return os.str();
}

TEST(BatchGolden, TraceFixtureReproducedThroughBatchedDriver)
{
    AnnualCampaignSpec spec;
    spec.profile = specJbbProfile();
    spec.nServers = 4;
    spec.technique = {TechniqueKind::ThrottleSleep, 5, 0,
                      fromMinutes(4.0), true};
    spec.config = dgSmallPUpsConfig();

    const TracingOn guard;
    ShardOptions opts;
    opts.threads = 1;
    opts.batch = 3;
    runAnnualShard(spec, shardOf(2014, 8, 0, 1), opts);

    std::ostringstream os;
    obs::TraceExportOptions topts;
    topts.metadata = {{"build", "golden-fixture"}, {"seed", "2014"}};
    writeChromeTrace(os, obs::TraceSink::instance().drain(), topts);
    EXPECT_EQ(os.str(), readFixture("trace_v1.json"))
        << "batched driver diverged from the committed golden trace";
}

TEST(BatchGolden, IncidentFixtureReproducedThroughBatchedDriver)
{
    AnnualCampaignSpec spec;
    spec.profile = specJbbProfile();
    spec.nServers = 4;
    spec.technique = {TechniqueKind::ThrottleSleep, 5, 0,
                      fromMinutes(4.0), true};
    spec.config = minCostConfig();

    const TracingOn guard;
    ShardOptions opts;
    opts.threads = 1;
    opts.batch = 3;
    const ShardResult shard =
        runAnnualShard(spec, shardOf(2014, 8, 0, 1), opts);

    std::ostringstream os;
    JsonWriter w(os);
    shard.incidents.writeJson(w);
    os << '\n';
    EXPECT_EQ(os.str(), readFixture("incidents_v1.json"))
        << "batched driver diverged from the committed incident "
           "aggregate";
}

///@}

} // namespace
} // namespace bpsim
