/**
 * @file
 * Tests for the online campaign statistics: P² quantile sketch,
 * Wilson binomial intervals, and the per-metric aggregate.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "campaign/online_stats.hh"
#include "sim/random.hh"

namespace bpsim
{
namespace
{

TEST(P2Quantile, ExactForSmallSamples)
{
    P2Quantile q(0.5);
    q.add(3.0);
    EXPECT_DOUBLE_EQ(q.value(), 3.0);
    q.add(1.0);
    EXPECT_DOUBLE_EQ(q.value(), 2.0); // interpolated median of {1, 3}
    q.add(2.0);
    EXPECT_DOUBLE_EQ(q.value(), 2.0);
}

TEST(P2Quantile, MedianOfUniformStream)
{
    P2Quantile q(0.5);
    Rng rng(42);
    for (int i = 0; i < 100000; ++i)
        q.add(rng.nextDouble());
    EXPECT_NEAR(q.value(), 0.5, 0.01);
}

TEST(P2Quantile, TailQuantilesOfUniformStream)
{
    P2Quantile q95(0.95), q99(0.99);
    Rng rng(7);
    for (int i = 0; i < 100000; ++i) {
        const double x = rng.nextDouble();
        q95.add(x);
        q99.add(x);
    }
    EXPECT_NEAR(q95.value(), 0.95, 0.01);
    EXPECT_NEAR(q99.value(), 0.99, 0.01);
}

TEST(P2Quantile, TracksExponentialTail)
{
    // Heavy-tailed input: P95 of Exp(mean=10) is -10 ln(0.05) ~= 30.
    P2Quantile q(0.95);
    Rng rng(11);
    for (int i = 0; i < 200000; ++i)
        q.add(rng.exponential(10.0));
    EXPECT_NEAR(q.value(), 29.96, 1.0);
}

TEST(P2Quantile, DeterministicForSameSequence)
{
    P2Quantile a(0.95), b(0.95);
    Rng ra(3), rb(3);
    for (int i = 0; i < 10000; ++i) {
        a.add(ra.nextDouble());
        b.add(rb.nextDouble());
    }
    EXPECT_EQ(a.value(), b.value()); // bitwise
}

TEST(Wilson, BracketsTheObservedFraction)
{
    const auto ci = wilsonInterval(90, 100);
    EXPECT_DOUBLE_EQ(ci.fraction, 0.9);
    EXPECT_LT(ci.lo, 0.9);
    EXPECT_GT(ci.hi, 0.9);
    EXPECT_NEAR(ci.lo, 0.825, 0.01); // textbook value for 90/100 @95%
    EXPECT_NEAR(ci.hi, 0.944, 0.01);
}

TEST(Wilson, BehavesAtTheBoundaries)
{
    const auto all = wilsonInterval(50, 50);
    EXPECT_DOUBLE_EQ(all.fraction, 1.0);
    EXPECT_DOUBLE_EQ(all.hi, 1.0);
    EXPECT_LT(all.lo, 1.0);
    EXPECT_GT(all.lo, 0.9); // 50/50 is strong evidence

    const auto none = wilsonInterval(0, 50);
    EXPECT_DOUBLE_EQ(none.fraction, 0.0);
    EXPECT_DOUBLE_EQ(none.lo, 0.0);
    EXPECT_GT(none.hi, 0.0);
    EXPECT_LT(none.hi, 0.1);

    const auto empty = wilsonInterval(0, 0);
    EXPECT_DOUBLE_EQ(empty.fraction, 0.0);
    EXPECT_DOUBLE_EQ(empty.lo, 0.0);
    EXPECT_DOUBLE_EQ(empty.hi, 0.0);
}

TEST(Wilson, NarrowsWithMoreTrials)
{
    const auto small = wilsonInterval(9, 10);
    const auto large = wilsonInterval(900, 1000);
    EXPECT_LT(large.hi - large.lo, small.hi - small.lo);
}

TEST(MetricStats, CombinesMomentsAndQuantiles)
{
    MetricStats m;
    for (int i = 1; i <= 1000; ++i)
        m.add(static_cast<double>(i));
    EXPECT_EQ(m.summary().count(), 1000u);
    EXPECT_DOUBLE_EQ(m.summary().mean(), 500.5);
    EXPECT_DOUBLE_EQ(m.summary().min(), 1.0);
    EXPECT_DOUBLE_EQ(m.summary().max(), 1000.0);
    EXPECT_NEAR(m.p50(), 500.5, 15.0);
    EXPECT_NEAR(m.p95(), 950.0, 15.0);
    EXPECT_NEAR(m.p99(), 990.0, 15.0);
}

TEST(MetricStats, MeanCiHalfWidthMatchesFormula)
{
    MetricStats m;
    for (int i = 0; i < 100; ++i)
        m.add(i % 2 == 0 ? 0.0 : 1.0);
    const double expect = 1.96 * m.summary().stddev() / 10.0;
    EXPECT_DOUBLE_EQ(m.meanCiHalfWidth(), expect);

    MetricStats one;
    one.add(5.0);
    EXPECT_DOUBLE_EQ(one.meanCiHalfWidth(), 0.0);
}

} // namespace
} // namespace bpsim
