/**
 * @file
 * Tests for heterogeneous clusters (Section 7's "how do we provision
 * for heterogeneous applications?"): mixed workloads on one rack, with
 * per-server profiles flowing through techniques.
 */

#include <gtest/gtest.h>

#include "technique/catalog.hh"
#include "technique/hibernate.hh"
#include "technique/migration.hh"
#include "technique/sleep.hh"
#include "workload/cluster.hh"

namespace bpsim
{
namespace
{

std::vector<WorkloadProfile>
mixedRack()
{
    // Pairs, so consolidation pairs stay type-aligned.
    return {specJbbProfile(),   specJbbProfile(),
            webSearchProfile(), webSearchProfile(),
            memcachedProfile(), memcachedProfile()};
}

struct Fixture
{
    explicit Fixture(std::unique_ptr<Technique> t = nullptr)
        : utility(sim), hierarchy(sim, utility, bigUps()),
          cluster(sim, hierarchy, ServerModel{}, mixedRack()),
          technique(std::move(t))
    {
        if (technique)
            technique->attach(sim, cluster, hierarchy);
        cluster.primeSteadyState();
    }

    static PowerHierarchy::Config
    bigUps()
    {
        PowerHierarchy::Config c;
        c.hasDg = false;
        c.hasUps = true;
        c.ups.powerCapacityW = 6 * 250.0 * 1.01;
        c.ups.runtimeAtRatedSec = 24 * 3600.0;
        return c;
    }

    Simulator sim;
    Utility utility;
    PowerHierarchy hierarchy;
    Cluster cluster;
    std::unique_ptr<Technique> technique;
};

TEST(Heterogeneous, PerServerProfilesAreWired)
{
    Fixture f;
    EXPECT_FALSE(f.cluster.homogeneous());
    EXPECT_EQ(f.cluster.profileOf(0).name, "specjbb");
    EXPECT_EQ(f.cluster.profileOf(2).name, "web-search");
    EXPECT_EQ(f.cluster.profileOf(4).name, "memcached");
    EXPECT_EQ(f.cluster.app(3).profile().name, "web-search");
}

TEST(Heterogeneous, HomogeneousClusterReportsSo)
{
    Simulator sim;
    Utility u(sim);
    PowerHierarchy h(sim, u, Fixture::bigUps());
    Cluster c(sim, h, ServerModel{}, specJbbProfile(), 4);
    EXPECT_TRUE(c.homogeneous());
}

TEST(Heterogeneous, ThrottlingHitsWorkloadsDifferently)
{
    auto spec = TechniqueSpec{TechniqueKind::Throttle, 6, 0, 0, false};
    Fixture f(makeTechnique(spec));
    f.utility.scheduleOutage(kMinute, 10 * kMinute);
    f.sim.runUntil(5 * kMinute);
    // Same P-state, different perf: memcached >> specjbb.
    EXPECT_GT(f.cluster.app(4).perf(), f.cluster.app(0).perf() + 0.2);
    // Cluster aggregate sits between them.
    const double agg = f.cluster.aggregatePerf();
    EXPECT_GT(agg, f.cluster.app(0).perf());
    EXPECT_LT(agg, f.cluster.app(4).perf());
}

TEST(Heterogeneous, HibernateSaveTimesDifferPerServer)
{
    HibernationTechnique hib(false, false);
    Fixture f;
    // Specjbb: 18 GB full image (~225 s); web-search: 6 GB (~75 s);
    // memcached: 20 GB at pathological efficiency (~758 s).
    EXPECT_NEAR(toSeconds(hib.saveTimeFor(f.cluster, 0)), 225.0, 15.0);
    EXPECT_NEAR(toSeconds(hib.saveTimeFor(f.cluster, 2)), 75.0, 10.0);
    EXPECT_GT(toSeconds(hib.saveTimeFor(f.cluster, 4)), 600.0);
    // takeEffectTime is the slowest of them.
    EXPECT_EQ(hib.takeEffectTime(f.cluster),
              hib.saveTimeFor(f.cluster, 4));
}

TEST(Heterogeneous, HibernateCycleRecoversEveryWorkload)
{
    auto spec = TechniqueSpec{TechniqueKind::Hibernate, 0, 0, 0, false};
    Fixture f(makeTechnique(spec));
    f.utility.scheduleOutage(kMinute, kHour);
    f.sim.runUntil(4 * kHour);
    EXPECT_EQ(f.hierarchy.powerLossCount(), 0);
    for (int i = 0; i < f.cluster.size(); ++i) {
        EXPECT_EQ(f.cluster.app(i).stateLosses(), 0) << i;
        EXPECT_EQ(f.cluster.server(i).state(), ServerState::Active) << i;
    }
    EXPECT_DOUBLE_EQ(f.cluster.aggregatePerf(), 1.0);
}

TEST(Heterogeneous, MigrationPlansPerPair)
{
    MigrationTechnique mig{MigrationTechnique::Options{}};
    Fixture f;
    const auto jbb = mig.migrationPlanFor(f.cluster, 1);
    const auto ws = mig.migrationPlanFor(f.cluster, 3);
    const auto mc = mig.migrationPlanFor(f.cluster, 5);
    // Specjbb's aggressive dirtying makes its copy the longest per GB;
    // memcached is a clean 20 GB stream; web-search's 40 GB dominates
    // by size.
    EXPECT_GT(ws.bytesMoved, mc.bytesMoved);
    EXPECT_GT(jbb.precopy + jbb.blackout, mc.precopy + mc.blackout);
}

TEST(Heterogeneous, ConsolidationCycleWorksOnMixedRack)
{
    auto spec = TechniqueSpec{TechniqueKind::Migration, 0, 0, 0, false};
    Fixture f(makeTechnique(spec));
    f.utility.scheduleOutage(kMinute, 2 * kHour);
    f.sim.runUntil(6 * kHour);
    EXPECT_EQ(f.hierarchy.powerLossCount(), 0);
    for (int i = 0; i < f.cluster.size(); ++i) {
        EXPECT_EQ(f.cluster.app(i).host(), f.cluster.app(i).home());
        EXPECT_EQ(f.cluster.app(i).stateLosses(), 0);
    }
    EXPECT_DOUBLE_EQ(f.cluster.perfTimeline().valueAt(6 * kHour - kSecond),
                     1.0);
}

TEST(Heterogeneous, AvailabilityBlendsMetricSemantics)
{
    // During a post-crash warm-up, memcached (throughput metric)
    // counts as up while web-search (latency SLO) counts as down.
    Fixture f;
    for (int i = 0; i < f.cluster.size(); ++i)
        f.cluster.server(i).crash();
    for (int i = 0; i < f.cluster.size(); ++i)
        f.cluster.server(i).boot(fromSeconds(120.0));
    // Run to a point where both are warming up: boot 120 + start ~60 +
    // preload: memcached at 300 s preload ends 480; websearch preload
    // ends 330, warm-up until 600.
    f.sim.runUntil(fromSeconds(500.0));
    EXPECT_EQ(f.cluster.app(4).phase(), AppPhase::Warmup);
    EXPECT_TRUE(f.cluster.app(4).available());
    EXPECT_EQ(f.cluster.app(2).phase(), AppPhase::Warmup);
    EXPECT_FALSE(f.cluster.app(2).available());
}

} // namespace
} // namespace bpsim
