/**
 * @file
 * Tests for the Application phase machine: recovery pipeline after
 * crashes, pausing on sleep/hibernate, migration states and the
 * availability predicate.
 */

#include <gtest/gtest.h>

#include "workload/application.hh"

namespace bpsim
{
namespace
{

struct Fixture
{
    Fixture() : Fixture(specJbbProfile()) {}

    explicit Fixture(const WorkloadProfile &w)
        : prof(w), srv(sim, model, 0), app(sim, prof, srv)
    {
        srv.onChange([this] { app.noteHostState(); });
        srv.primeActive();
        app.primeServing();
    }

    Simulator sim;
    ServerModel model;
    WorkloadProfile prof;
    Server srv;
    Application app;
};

TEST(Application, ServesAtFullPerfInSteadyState)
{
    Fixture f;
    EXPECT_EQ(f.app.phase(), AppPhase::Serving);
    EXPECT_DOUBLE_EQ(f.app.perf(), 1.0);
    EXPECT_TRUE(f.app.available());
}

TEST(Application, ThrottlingScalesPerf)
{
    Fixture f;
    f.srv.setPState(6);
    const double expected =
        f.prof.throttledPerf(f.model, 6, 0);
    EXPECT_DOUBLE_EQ(f.app.perf(), expected);
    EXPECT_TRUE(f.app.available()); // throttled serving is not downtime
}

TEST(Application, CrashEntersLostAndPerfZero)
{
    Fixture f;
    f.srv.crash();
    EXPECT_EQ(f.app.phase(), AppPhase::Lost);
    EXPECT_DOUBLE_EQ(f.app.perf(), 0.0);
    EXPECT_FALSE(f.app.available());
    EXPECT_EQ(f.app.stateLosses(), 1);
}

TEST(Application, RecoveryPipelineAfterCrash)
{
    Fixture f;
    f.srv.crash();
    f.srv.boot(fromSeconds(120.0));
    f.sim.runUntil(fromSeconds(121.0));
    EXPECT_EQ(f.app.phase(), AppPhase::Starting);
    // processStartSec = 60 for Specjbb; no preload.
    f.sim.runUntil(fromSeconds(182.0));
    EXPECT_EQ(f.app.phase(), AppPhase::Warmup);
    EXPECT_DOUBLE_EQ(f.app.perf(), f.prof.warmupPerf);
    // warmupSec = 220.
    f.sim.runUntil(fromSeconds(403.0));
    EXPECT_EQ(f.app.phase(), AppPhase::Serving);
    EXPECT_DOUBLE_EQ(f.app.perf(), 1.0);
}

TEST(Application, PreloadPhaseForDiskBackedWorkloads)
{
    Fixture f{webSearchProfile()};
    f.srv.crash();
    f.srv.boot(fromSeconds(120.0));
    // boot 120 + start 30 -> Preloading.
    f.sim.runUntil(fromSeconds(151.0));
    EXPECT_EQ(f.app.phase(), AppPhase::Preloading);
    EXPECT_FALSE(f.app.available());
    // + preload 180 -> Warmup.
    f.sim.runUntil(fromSeconds(332.0));
    EXPECT_EQ(f.app.phase(), AppPhase::Warmup);
    // Web-search warm-up is below SLO: still counted down.
    EXPECT_FALSE(f.app.available());
    f.sim.runUntil(fromSeconds(610.0));
    EXPECT_TRUE(f.app.available());
}

TEST(Application, MemcachedWarmupCountsAsAvailable)
{
    Fixture f{memcachedProfile()};
    f.srv.crash();
    f.srv.boot(fromSeconds(120.0));
    f.sim.runUntil(fromSeconds(120.0 + 60.0 + 300.0 + 10.0));
    ASSERT_EQ(f.app.phase(), AppPhase::Warmup);
    // Pure-throughput metric: degraded warm-up still "up".
    EXPECT_TRUE(f.app.available());
}

TEST(Application, SleepCyclePausesAndResumes)
{
    Fixture f;
    f.srv.enterSleep(fromSeconds(6.0));
    EXPECT_EQ(f.app.phase(), AppPhase::Paused);
    EXPECT_DOUBLE_EQ(f.app.perf(), 0.0);
    f.sim.runUntil(fromSeconds(7.0));
    EXPECT_EQ(f.app.phase(), AppPhase::Paused);
    f.srv.wake(fromSeconds(8.0));
    f.sim.runUntil(fromSeconds(16.0));
    EXPECT_EQ(f.app.phase(), AppPhase::Serving);
    EXPECT_DOUBLE_EQ(f.app.perf(), 1.0);
    EXPECT_EQ(f.app.stateLosses(), 0);
}

TEST(Application, HibernateResumeSkipsRecoveryWhenImageComplete)
{
    Fixture f; // Specjbb: full image
    f.srv.saveToDisk(fromSeconds(230.0));
    f.sim.runUntil(fromSeconds(231.0));
    f.srv.resumeFromDisk(fromSeconds(157.0));
    f.sim.runUntil(fromSeconds(400.0));
    EXPECT_EQ(f.app.phase(), AppPhase::Serving);
    EXPECT_EQ(f.app.stateLosses(), 0);
}

TEST(Application, HibernateResumeRewarmsDroppedCache)
{
    Fixture f{webSearchProfile()};
    f.srv.saveToDisk(fromSeconds(75.0));
    f.sim.runUntil(fromSeconds(76.0));
    f.srv.resumeFromDisk(fromSeconds(52.0));
    f.sim.runUntil(fromSeconds(130.0));
    // Image dropped the clean index cache: warm-up follows resume.
    EXPECT_EQ(f.app.phase(), AppPhase::Warmup);
    f.sim.runUntil(fromSeconds(130.0 + 271.0));
    EXPECT_EQ(f.app.phase(), AppPhase::Serving);
}

TEST(Application, CrashDuringSleepLosesState)
{
    Fixture f;
    f.srv.enterSleep(fromSeconds(6.0));
    f.sim.runUntil(fromSeconds(7.0));
    f.srv.crash();
    EXPECT_EQ(f.app.phase(), AppPhase::Lost);
    EXPECT_EQ(f.app.stateLosses(), 1);
}

TEST(Application, MigrationDegradesThenMovesHost)
{
    Fixture f;
    Server dst(f.sim, f.model, 1);
    dst.primeActive();
    f.app.beginMigration();
    EXPECT_TRUE(f.app.migrating());
    EXPECT_DOUBLE_EQ(f.app.perf(), f.prof.migrationDegradation);
    f.app.setMigrationBlackout(true);
    EXPECT_DOUBLE_EQ(f.app.perf(), 0.0);
    EXPECT_FALSE(f.app.available());
    f.app.completeMigration(&dst, 0.5);
    EXPECT_EQ(f.app.host(), &dst);
    EXPECT_FALSE(f.app.migrating());
    EXPECT_DOUBLE_EQ(f.app.perf(), 0.5);
    EXPECT_TRUE(f.app.available()); // consolidated serving is up
}

TEST(Application, AbortMigrationRestoresFullService)
{
    Fixture f;
    f.app.beginMigration();
    f.app.setMigrationBlackout(true);
    f.app.abortMigration();
    EXPECT_FALSE(f.app.migrating());
    EXPECT_DOUBLE_EQ(f.app.perf(), 1.0);
}

TEST(Application, HostCrashWhileConsolidatedLosesApp)
{
    Fixture f;
    Server dst(f.sim, f.model, 1);
    dst.onChange([&f] { f.app.noteHostState(); });
    dst.primeActive();
    f.app.completeMigration(&dst, 0.5);
    dst.crash();
    EXPECT_EQ(f.app.phase(), AppPhase::Lost);
}

TEST(Application, HomeCrashDoesNotAffectMigratedApp)
{
    Fixture f;
    Server dst(f.sim, f.model, 1);
    dst.primeActive();
    f.app.completeMigration(&dst, 0.5);
    // The old home crashing is irrelevant now. (The fixture's onChange
    // routes home-server events to the app; noteHostState must see the
    // *host* unchanged and keep serving.)
    f.srv.crash();
    EXPECT_EQ(f.app.phase(), AppPhase::Serving);
    EXPECT_EQ(f.app.stateLosses(), 0);
}

TEST(Application, BatchRecomputeChargedOnCrash)
{
    Fixture f{specCpuMcfProfile()};
    f.app.setRecomputeFraction(0.5);
    f.srv.crash();
    const auto &w = f.prof;
    EXPECT_DOUBLE_EQ(f.app.extraDowntimeSec(),
                     w.recomputeMinSec +
                         0.5 * (w.recomputeMaxSec - w.recomputeMinSec));
}

TEST(Application, RecomputeFractionBoundsTheBand)
{
    Fixture lo{specCpuMcfProfile()};
    lo.app.setRecomputeFraction(0.0);
    lo.srv.crash();
    EXPECT_DOUBLE_EQ(lo.app.extraDowntimeSec(),
                     lo.prof.recomputeMinSec);

    Fixture hi{specCpuMcfProfile()};
    hi.app.setRecomputeFraction(1.0);
    hi.srv.crash();
    EXPECT_DOUBLE_EQ(hi.app.extraDowntimeSec(),
                     hi.prof.recomputeMaxSec);
}

TEST(Application, InteractiveWorkloadsHaveNoRecomputePenalty)
{
    Fixture f; // Specjbb
    f.srv.crash();
    EXPECT_DOUBLE_EQ(f.app.extraDowntimeSec(), 0.0);
}

TEST(Application, DoubleCrashChargesOnce)
{
    Fixture f{specCpuMcfProfile()};
    f.srv.crash();
    const double first = f.app.extraDowntimeSec();
    f.srv.crash(); // no-op: already crashed
    f.app.noteHostState();
    EXPECT_DOUBLE_EQ(f.app.extraDowntimeSec(), first);
    EXPECT_EQ(f.app.stateLosses(), 1);
}

TEST(Application, CheckpointingBoundsRecompute)
{
    auto w = specCpuMcfProfile();
    w.checkpointIntervalSec = 300.0;
    Fixture f{w};
    f.app.setRecomputeFraction(1.0);
    f.srv.crash();
    // Without checkpoints the worst case is 3600 s; with a 5-minute
    // interval at most one interval of work is lost.
    EXPECT_DOUBLE_EQ(f.app.extraDowntimeSec(), 300.0);
}

TEST(Application, CheckpointingNeverIncreasesThePenalty)
{
    auto w = specCpuMcfProfile();
    w.checkpointIntervalSec = 3.0 * 3600.0; // longer than the band
    Fixture f{w};
    f.app.setRecomputeFraction(0.5);
    f.srv.crash();
    const double unchecked = w.recomputeMinSec +
                             0.5 * (w.recomputeMaxSec - w.recomputeMinSec);
    EXPECT_DOUBLE_EQ(f.app.extraDowntimeSec(), unchecked);
}

} // namespace
} // namespace bpsim
