/**
 * @file
 * Tests for the Cluster: aggregation, crash/reboot behaviour and the
 * power/performance timelines.
 */

#include <gtest/gtest.h>

#include "workload/cluster.hh"

namespace bpsim
{
namespace
{

struct Fixture
{
    explicit Fixture(int n = 4,
                     const WorkloadProfile &w = specJbbProfile())
        : utility(sim), hierarchy(sim, utility, upsConfig()),
          cluster(sim, hierarchy, ServerModel{}, w, n)
    {
        cluster.primeSteadyState();
    }

    static PowerHierarchy::Config
    upsConfig()
    {
        PowerHierarchy::Config c;
        c.hasDg = false;
        c.hasUps = true;
        c.ups.powerCapacityW = 4 * 250.0;
        c.ups.runtimeAtRatedSec = 600.0;
        return c;
    }

    Simulator sim;
    Utility utility;
    PowerHierarchy hierarchy;
    Cluster cluster;
};

TEST(Cluster, SteadyStateFullPowerFullPerf)
{
    Fixture f;
    EXPECT_DOUBLE_EQ(f.cluster.totalPowerW(), 1000.0);
    EXPECT_DOUBLE_EQ(f.cluster.aggregatePerf(), 1.0);
    EXPECT_DOUBLE_EQ(f.cluster.availability(), 1.0);
    EXPECT_DOUBLE_EQ(f.hierarchy.load(), 1000.0);
}

TEST(Cluster, PeakPowerIsSkuPeakTimesSize)
{
    Fixture f;
    EXPECT_DOUBLE_EQ(f.cluster.peakPowerW(), 1000.0);
}

TEST(Cluster, LoadFollowsServerKnobs)
{
    Fixture f;
    f.cluster.server(0).setPState(6);
    EXPECT_LT(f.hierarchy.load(), 1000.0);
    EXPECT_LT(f.cluster.aggregatePerf(), 1.0);
}

TEST(Cluster, PerfTimelineRecordsChanges)
{
    Fixture f;
    f.sim.runUntil(kMinute);
    for (int i = 0; i < f.cluster.size(); ++i)
        f.cluster.server(i).setPState(6);
    f.sim.runUntil(2 * kMinute);
    const auto &tl = f.cluster.perfTimeline();
    EXPECT_DOUBLE_EQ(tl.valueAt(30 * kSecond), 1.0);
    EXPECT_LT(tl.valueAt(90 * kSecond), 0.6);
}

TEST(Cluster, PowerLossCrashesEverything)
{
    Fixture f;
    f.utility.scheduleOutage(kMinute, kHour); // battery dies mid-outage
    f.sim.runUntil(30 * kMinute);
    EXPECT_EQ(f.hierarchy.powerLossCount(), 1);
    EXPECT_DOUBLE_EQ(f.cluster.aggregatePerf(), 0.0);
    for (int i = 0; i < f.cluster.size(); ++i)
        EXPECT_EQ(f.cluster.server(i).state(), ServerState::Crashed);
    EXPECT_DOUBLE_EQ(f.hierarchy.load(), 0.0);
}

TEST(Cluster, AutoRebootAfterRestore)
{
    Fixture f;
    f.utility.scheduleOutage(kMinute, kHour);
    f.sim.runUntil(3 * kHour);
    EXPECT_DOUBLE_EQ(f.cluster.aggregatePerf(), 1.0);
    EXPECT_DOUBLE_EQ(f.cluster.availability(), 1.0);
}

TEST(Cluster, AutoRebootCanBeDisabled)
{
    Fixture f;
    f.cluster.setAutoReboot(false);
    f.utility.scheduleOutage(kMinute, kHour);
    f.sim.runUntil(3 * kHour);
    EXPECT_DOUBLE_EQ(f.cluster.aggregatePerf(), 0.0);
    for (int i = 0; i < f.cluster.size(); ++i)
        EXPECT_EQ(f.cluster.server(i).state(), ServerState::Crashed);
}

TEST(Cluster, AvailabilityTimelineTracksDowntime)
{
    Fixture f;
    f.utility.scheduleOutage(kMinute, kHour);
    f.sim.runUntil(3 * kHour);
    const auto &avail = f.cluster.availabilityTimeline();
    // Down from battery depletion (~10+ min into the outage, Peukert)
    // until boot + recovery completes after restore.
    const Time down = avail.timeBelow(kMinute, 3 * kHour, 0.5);
    EXPECT_GT(down, 45 * kMinute);
    EXPECT_LT(down, 75 * kMinute);
}

TEST(Cluster, ShortOutageWithinBatteryIsSeamless)
{
    Fixture f;
    f.utility.scheduleOutage(kMinute, 5 * kMinute);
    f.sim.runUntil(kHour);
    EXPECT_EQ(f.hierarchy.powerLossCount(), 0);
    EXPECT_DOUBLE_EQ(
        f.cluster.availabilityTimeline().average(0, kHour), 1.0);
}

TEST(Cluster, ExtraDowntimeAveragesAcrossApps)
{
    Fixture f(4, specCpuMcfProfile());
    for (int i = 0; i < f.cluster.size(); ++i)
        f.cluster.app(i).setRecomputeFraction(0.0);
    f.utility.scheduleOutage(kMinute, kHour);
    f.sim.runUntil(2 * kHour);
    // Every app lost state once: min recompute each.
    EXPECT_DOUBLE_EQ(f.cluster.extraDowntimeSec(),
                     specCpuMcfProfile().recomputeMinSec);
}

TEST(Cluster, SingleServerClusterWorks)
{
    Fixture f(1);
    EXPECT_DOUBLE_EQ(f.cluster.totalPowerW(), 250.0);
    f.cluster.server(0).setPState(6);
    EXPECT_LT(f.cluster.aggregatePerf(), 1.0);
}

TEST(Cluster, RejectsEmptyCluster)
{
    Simulator sim;
    Utility u(sim);
    PowerHierarchy h(sim, u, Fixture::upsConfig());
    EXPECT_DEATH(Cluster(sim, h, ServerModel{}, specJbbProfile(), 0),
                 "at least one server");
}

} // namespace
} // namespace bpsim
