/**
 * @file
 * Tests for NVDIMM-equipped clusters (Section 7): abrupt power loss
 * persists volatile state instead of destroying it, and restoration is
 * a fast flash read-back rather than a cold recovery.
 */

#include <gtest/gtest.h>

#include "workload/cluster.hh"

namespace bpsim
{
namespace
{

ServerModel::Params
nvdimmServer()
{
    ServerModel::Params p;
    p.nvdimm = true;
    return p;
}

struct Fixture
{
    explicit Fixture(bool nvdimm,
                     const WorkloadProfile &w = specJbbProfile())
        : utility(sim), hierarchy(sim, utility, noBackup()),
          cluster(sim, hierarchy,
                  ServerModel{nvdimm ? nvdimmServer()
                                     : ServerModel::Params{}},
                  w, 4)
    {
        cluster.primeSteadyState();
    }

    static PowerHierarchy::Config
    noBackup()
    {
        PowerHierarchy::Config c;
        c.hasDg = false;
        c.hasUps = false;
        return c;
    }

    Simulator sim;
    Utility utility;
    PowerHierarchy hierarchy;
    Cluster cluster;
};

TEST(Nvdimm, PowerLossPersistsInsteadOfCrashing)
{
    Fixture f(true);
    f.utility.scheduleOutage(kMinute, 5 * kMinute);
    f.sim.runUntil(2 * kMinute);
    for (int i = 0; i < f.cluster.size(); ++i) {
        EXPECT_EQ(f.cluster.server(i).state(), ServerState::Hibernated);
        EXPECT_EQ(f.cluster.app(i).stateLosses(), 0);
        EXPECT_EQ(f.cluster.app(i).phase(), AppPhase::Paused);
    }
}

TEST(Nvdimm, WithoutNvdimmSameLossCrashes)
{
    Fixture f(false);
    f.utility.scheduleOutage(kMinute, 5 * kMinute);
    f.sim.runUntil(2 * kMinute);
    for (int i = 0; i < f.cluster.size(); ++i) {
        EXPECT_EQ(f.cluster.server(i).state(), ServerState::Crashed);
        EXPECT_EQ(f.cluster.app(i).stateLosses(), 1);
    }
}

TEST(Nvdimm, ZeroDrawDuringTheOutage)
{
    Fixture f(true);
    f.utility.scheduleOutage(kMinute, 30 * kMinute);
    f.sim.runUntil(10 * kMinute);
    EXPECT_DOUBLE_EQ(f.hierarchy.load(), 0.0);
}

TEST(Nvdimm, FastRestoreWithoutColdRecovery)
{
    Fixture f(true);
    f.utility.scheduleOutage(kMinute, 5 * kMinute);
    f.sim.runUntil(kHour);
    // Restore = 18 GB / 1 GB/s + 5 s kernel resume ~ 23 s; no process
    // restart, no warm-up.
    EXPECT_DOUBLE_EQ(f.cluster.aggregatePerf(), 1.0);
    const Time down = f.cluster.availabilityTimeline().timeBelow(
        kMinute, kHour, 0.5);
    EXPECT_NEAR(toSeconds(down), 5.0 * 60.0 + 23.0, 5.0);
}

TEST(Nvdimm, MuchFasterRecoveryThanCrash)
{
    Fixture with(true), without(false);
    for (Fixture *f : {&with, &without}) {
        f->utility.scheduleOutage(kMinute, 5 * kMinute);
        f->sim.runUntil(kHour);
    }
    const Time down_nv = with.cluster.availabilityTimeline().timeBelow(
        kMinute, kHour, 0.5);
    const Time down_crash =
        without.cluster.availabilityTimeline().timeBelow(kMinute, kHour,
                                                         0.5);
    // Crash pays boot + restart + warm-up (~400 s) on top of the
    // outage; NVDIMM pays ~23 s.
    EXPECT_GT(down_crash - down_nv, fromSeconds(300.0));
}

TEST(Nvdimm, WebSearchSkipsResumeWarmup)
{
    // NVDIMM restores the complete DRAM image, including the page
    // cache a hibernation image would drop: no post-resume warm-up.
    Fixture f(true, webSearchProfile());
    f.utility.scheduleOutage(kMinute, 5 * kMinute);
    f.sim.runUntil(kHour);
    const Time down = f.cluster.availabilityTimeline().timeBelow(
        kMinute, kHour, 0.5);
    // ~outage + 40 GB / 1 GB/s + 5 s.
    EXPECT_NEAR(toSeconds(down), 300.0 + 45.0, 8.0);
}

TEST(Nvdimm, WorksWithZeroBackupCost)
{
    // The headline: with NVDIMM, state preservation needs *no* UPS and
    // *no* DG at all.
    Fixture f(true);
    f.utility.scheduleOutage(kMinute, 2 * kHour);
    f.sim.runUntil(4 * kHour);
    EXPECT_DOUBLE_EQ(f.cluster.aggregatePerf(), 1.0);
    for (int i = 0; i < f.cluster.size(); ++i)
        EXPECT_EQ(f.cluster.app(i).stateLosses(), 0);
}

} // namespace
} // namespace bpsim
