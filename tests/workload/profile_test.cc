/**
 * @file
 * Tests for the workload profiles, including the Table 7 / Table 8 /
 * Section 6.2 calibration anchors.
 */

#include <gtest/gtest.h>

#include "workload/profile.hh"

namespace bpsim
{
namespace
{

const ServerModel kModel{};

TEST(Profiles, Table7MemoryFootprints)
{
    EXPECT_DOUBLE_EQ(specJbbProfile().memoryGb, 18.0);
    EXPECT_DOUBLE_EQ(webSearchProfile().memoryGb, 40.0);
    EXPECT_DOUBLE_EQ(memcachedProfile().memoryGb, 20.0);
    EXPECT_DOUBLE_EQ(specCpuMcfProfile().memoryGb, 16.0);
}

TEST(Profiles, Table7Metrics)
{
    EXPECT_EQ(specJbbProfile().metric,
              PerfMetric::LatencyConstrainedThroughput);
    EXPECT_EQ(webSearchProfile().metric,
              PerfMetric::LatencyConstrainedThroughput);
    EXPECT_EQ(memcachedProfile().metric, PerfMetric::Throughput);
    EXPECT_EQ(specCpuMcfProfile().metric, PerfMetric::CompletionTime);
}

TEST(Profiles, AllPaperWorkloadsInOrder)
{
    const auto all = allPaperWorkloads();
    ASSERT_EQ(all.size(), 4u);
    EXPECT_EQ(all[0].name, "specjbb");
    EXPECT_EQ(all[1].name, "web-search");
    EXPECT_EQ(all[2].name, "memcached");
    EXPECT_EQ(all[3].name, "speccpu-mcf8");
}

TEST(Profiles, SpecjbbHibernateMatchesTable8)
{
    // Table 8: save 230 s, resume 157 s.
    const auto w = specJbbProfile();
    EXPECT_NEAR(toSeconds(w.hibernateSaveTime(kModel)), 230.0, 10.0);
    EXPECT_NEAR(toSeconds(w.hibernateResumeTime(kModel)), 157.0, 5.0);
}

TEST(Profiles, SpecjbbSleepMatchesTable8)
{
    const auto w = specJbbProfile();
    EXPECT_DOUBLE_EQ(w.sleepSaveSec, 6.0);
    EXPECT_DOUBLE_EQ(w.sleepResumeSec, 8.0);
}

TEST(Profiles, MemcachedHibernateIsPathologicallySlow)
{
    // Section 6.2: hibernation (1140 s of downtime) is worse than
    // simply reloading (480 s) for Memcached.
    const auto w = memcachedProfile();
    const double cycle_sec = toSeconds(w.hibernateSaveTime(kModel)) +
                             toSeconds(w.hibernateResumeTime(kModel));
    EXPECT_NEAR(cycle_sec, 1140.0, 120.0);
    const double reload_sec =
        120.0 + toSeconds(w.crashRestartTime()); // boot + restart
    EXPECT_GT(cycle_sec, reload_sec);
}

TEST(Profiles, WebSearchHibernateImageDropsCleanCache)
{
    const auto w = webSearchProfile();
    EXPECT_LT(w.hibernateImageGb, w.memoryGb / 2.0);
    EXPECT_GT(w.resumeWarmupSec, 0.0);
}

TEST(Profiles, WebSearchCrashRecoveryMatchesPaper)
{
    // ~600 s total: 120 boot + 30 restart + 180 preload + 270 warm-up
    // below SLO.
    const auto w = webSearchProfile();
    const double total = 120.0 + w.processStartSec + w.statePreloadSec +
                         w.warmupSec;
    EXPECT_NEAR(total, 600.0, 30.0);
    EXPECT_LT(w.warmupPerf, 0.7); // warm-up counts as downtime
}

TEST(Profiles, SpecjbbCrashRecoveryMatchesPaper)
{
    // ~400 s for MinCost after a short outage.
    const auto w = specJbbProfile();
    const double total = 120.0 + w.processStartSec + w.statePreloadSec +
                         w.warmupSec;
    EXPECT_NEAR(total, 400.0, 30.0);
}

TEST(Profiles, MemcachedCrashRecoveryMatchesPaper)
{
    // ~480 s for MinCost after a short outage.
    const auto w = memcachedProfile();
    const double total = 120.0 + w.processStartSec + w.statePreloadSec;
    EXPECT_NEAR(total, 480.0, 30.0);
}

TEST(Profiles, SpecCpuHasRecomputeBand)
{
    const auto w = specCpuMcfProfile();
    EXPECT_GT(w.recomputeMaxSec, w.recomputeMinSec);
    EXPECT_GT(w.recomputeMaxSec, 600.0); // a wide Figure 9 band
}

TEST(Profiles, ThrottledPerfFullSpeedIsOne)
{
    for (const auto &w : allPaperWorkloads())
        EXPECT_DOUBLE_EQ(w.throttledPerf(kModel, 0, 0), 1.0);
}

TEST(Profiles, MemcachedTolerantOfThrottlingSpecjbbNot)
{
    // Section 6.2: memory-stalled Memcached barely notices DVFS, the
    // compute-heavy Specjbb takes the full frequency hit.
    const int p_min = kModel.params().pStates - 1;
    const double mc = memcachedProfile().throttledPerf(kModel, p_min, 0);
    const double jbb = specJbbProfile().throttledPerf(kModel, p_min, 0);
    EXPECT_GT(mc, 0.75);
    EXPECT_LT(jbb, 0.6);
    EXPECT_GT(mc, jbb + 0.2);
}

TEST(Profiles, ThrottledPerfMonotoneInPState)
{
    for (const auto &w : allPaperWorkloads()) {
        for (int p = 1; p < kModel.params().pStates; ++p) {
            EXPECT_LE(w.throttledPerf(kModel, p, 0),
                      w.throttledPerf(kModel, p - 1, 0))
                << w.name << " p" << p;
        }
    }
}

TEST(Profiles, TStatesGateAllWorkloadsLinearly)
{
    for (const auto &w : allPaperWorkloads()) {
        EXPECT_NEAR(w.throttledPerf(kModel, 0, 7), 1.0 / 8.0, 1e-9)
            << w.name;
    }
}

TEST(Profiles, DirtyParamsDeriveFromProfile)
{
    const auto w = specJbbProfile();
    const auto dp = w.dirtyParams();
    EXPECT_DOUBLE_EQ(dp.totalStateBytes, 18e9);
    EXPECT_DOUBLE_EQ(dp.hotSetBytes, 14e9);
    EXPECT_DOUBLE_EQ(dp.dirtyRateBytesPerSec, 250e6);
}

TEST(Profiles, HibernateImageDefaultsToFullMemory)
{
    WorkloadProfile w;
    w.memoryGb = 12.0;
    EXPECT_DOUBLE_EQ(w.hibernateImageBytes(), 12e9);
}

} // namespace
} // namespace bpsim
