/**
 * @file
 * Tests for the diurnal load driver and battery peak shaving.
 */

#include <gtest/gtest.h>

#include "workload/load_profile.hh"

namespace bpsim
{
namespace
{

struct Fixture
{
    explicit Fixture(PowerHierarchy::Config cfg = plainUps())
        : utility(sim), hierarchy(sim, utility, cfg),
          cluster(sim, hierarchy, ServerModel{}, memcachedProfile(), 4)
    {
        cluster.primeSteadyState();
    }

    static PowerHierarchy::Config
    plainUps()
    {
        PowerHierarchy::Config c;
        c.hasDg = false;
        c.hasUps = true;
        c.ups.powerCapacityW = 1000.0;
        c.ups.runtimeAtRatedSec = 600.0;
        return c;
    }

    Simulator sim;
    Utility utility;
    PowerHierarchy hierarchy;
    Cluster cluster;
};

TEST(DiurnalLoad, CurvePeaksAndTroughsWhereConfigured)
{
    Fixture f;
    DiurnalLoadDriver::Params p;
    p.minUtil = 0.4;
    p.maxUtil = 1.0;
    p.peakAt = 14 * kHour;
    DiurnalLoadDriver d(f.sim, f.cluster, p);
    EXPECT_NEAR(d.utilizationAt(14 * kHour), 1.0, 1e-9);
    EXPECT_NEAR(d.utilizationAt(2 * kHour), 0.4, 1e-9);
    EXPECT_NEAR(d.utilizationAt(14 * kHour + 24 * kHour), 1.0, 1e-9);
    // Symmetric around the peak.
    EXPECT_NEAR(d.utilizationAt(10 * kHour), d.utilizationAt(18 * kHour),
                1e-9);
}

TEST(DiurnalLoad, CurveStaysInBand)
{
    Fixture f;
    DiurnalLoadDriver d(f.sim, f.cluster, {});
    for (Time t = 0; t < 48 * kHour; t += 13 * kMinute) {
        const double u = d.utilizationAt(t);
        EXPECT_GE(u, 0.4 - 1e-9);
        EXPECT_LE(u, 1.0 + 1e-9);
    }
}

TEST(DiurnalLoad, DrivesClusterPower)
{
    Fixture f;
    DiurnalLoadDriver::Params p;
    p.peakAt = 14 * kHour;
    DiurnalLoadDriver d(f.sim, f.cluster, p);
    d.start();
    f.sim.runUntil(2 * kHour); // trough
    const Watts night = f.cluster.totalPowerW();
    f.sim.runUntil(14 * kHour); // peak
    const Watts day = f.cluster.totalPowerW();
    EXPECT_GT(day, night + 100.0);
    EXPECT_NEAR(day, 4 * 250.0, 1.0);
}

TEST(DiurnalLoad, StopFreezesUtilization)
{
    Fixture f;
    DiurnalLoadDriver d(f.sim, f.cluster, {});
    d.start();
    f.sim.runUntil(2 * kHour);
    d.stop();
    const Watts frozen = f.cluster.totalPowerW();
    f.sim.runUntil(14 * kHour);
    EXPECT_DOUBLE_EQ(f.cluster.totalPowerW(), frozen);
}

TEST(PeakShaving, BatteryCarriesLoadAboveThreshold)
{
    auto cfg = Fixture::plainUps();
    cfg.peakShaveThresholdW = 800.0;
    Fixture f(cfg);
    // Full load 1000 W: 200 W should come from the battery.
    f.sim.runUntil(kMinute);
    EXPECT_NEAR(f.hierarchy.meter().fromBattery().lastValue(), 200.0,
                1e-6);
    EXPECT_NEAR(f.hierarchy.meter().fromUtility().lastValue(), 800.0,
                1e-6);
}

TEST(PeakShaving, BelowThresholdNoShaving)
{
    auto cfg = Fixture::plainUps();
    cfg.peakShaveThresholdW = 800.0;
    Fixture f(cfg);
    for (int i = 0; i < 4; ++i)
        f.cluster.server(i).setUtilization(0.3);
    f.sim.runUntil(kMinute);
    EXPECT_DOUBLE_EQ(f.hierarchy.meter().fromBattery().lastValue(), 0.0);
}

TEST(PeakShaving, ShavingStopsWhenTheStringRunsDry)
{
    auto cfg = Fixture::plainUps();
    cfg.peakShaveThresholdW = 800.0;
    cfg.ups.runtimeAtRatedSec = 120.0; // small string
    Fixture f(cfg);
    // 200 W on a 1 kW/2 min string: f = 0.2 -> lasts 2 * 0.2^-1.29
    // ~ 16 min; afterwards the utility absorbs the peak.
    f.sim.runUntil(kHour);
    EXPECT_DOUBLE_EQ(f.hierarchy.meter().fromBattery().lastValue(), 0.0);
    EXPECT_NEAR(f.hierarchy.meter().fromUtility().lastValue(), 1000.0,
                1e-6);
    EXPECT_EQ(f.hierarchy.powerLossCount(), 0); // nothing crashed
    EXPECT_TRUE(f.hierarchy.ups()->battery().empty());
}

TEST(PeakShaving, OutageAtPeakFindsAPartiallyDrainedString)
{
    // The Section 2 hazard: dual-use batteries mean the outage begins
    // with less than a full charge.
    auto drained_cfg = Fixture::plainUps();
    drained_cfg.peakShaveThresholdW = 800.0;
    Fixture shaving(drained_cfg);
    Fixture reserved; // no shaving

    for (Fixture *f : {&shaving, &reserved}) {
        f->utility.scheduleOutage(30 * kMinute, 10 * kMinute);
        f->sim.runUntil(2 * kHour);
    }
    // The reserved string rides the 10-minute outage (1 kW on a 1 kW /
    // 10 min string); the shaved one has spent ~30 min x 200 W first
    // and dies mid-outage.
    EXPECT_EQ(reserved.hierarchy.powerLossCount(), 0);
    EXPECT_EQ(shaving.hierarchy.powerLossCount(), 1);
}

TEST(PeakShaving, RechargeRestoresShavingHeadroom)
{
    auto cfg = Fixture::plainUps();
    cfg.peakShaveThresholdW = 800.0;
    cfg.ups.rechargeTimeSec = 600.0; // fast charger for the test
    Fixture f(cfg);
    // Drain by shaving at full load...
    f.sim.runUntil(30 * kMinute);
    // ...then drop below the threshold so the string recharges.
    for (int i = 0; i < 4; ++i)
        f.cluster.server(i).setUtilization(0.2);
    f.sim.runUntil(2 * kHour);
    // Load returns: shaving resumes from a recharged string.
    for (int i = 0; i < 4; ++i)
        f.cluster.server(i).setUtilization(1.0);
    f.sim.runUntil(2 * kHour + kMinute);
    EXPECT_NEAR(f.hierarchy.meter().fromBattery().lastValue(), 200.0,
                1e-6);
}

} // namespace
} // namespace bpsim
