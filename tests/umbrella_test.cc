/**
 * @file
 * Compile-level test: the umbrella header includes the whole public
 * API, and a few cross-module types are usable together through it.
 */

#include <gtest/gtest.h>

#include "bpsim.hh"

namespace bpsim
{
namespace
{

TEST(Umbrella, EverythingIsReachable)
{
    Simulator sim;
    Utility utility(sim);
    PowerHierarchy hierarchy(sim, utility,
                             toHierarchyConfig(noDgConfig(), 1000.0));
    Cluster cluster(sim, hierarchy, ServerModel{}, specJbbProfile(), 4);
    cluster.primeSteadyState();
    EXPECT_DOUBLE_EQ(cluster.aggregatePerf(), 1.0);

    const CostModel cost;
    EXPECT_GT(cost.maxPerfCostPerYr(1.0), 0.0);
    const TcoModel tco;
    EXPECT_GT(tco.crossoverMinutesPerYr(), 0.0);
    const OutagePredictor predictor(
        OutageDurationDistribution::figure1());
    EXPECT_GT(predictor.expectedRemaining(0), 0);
    EXPECT_NE(makeTechnique({TechniqueKind::Sleep}), nullptr);
}

} // namespace
} // namespace bpsim
