/**
 * @file
 * Tests for the dirty-page / iterative-copy model.
 */

#include <gtest/gtest.h>

#include "server/dirty_pages.hh"

namespace bpsim
{
namespace
{

DirtyPageModel::Params
params(double total_gb, double hot_gb, double rate_mbps)
{
    DirtyPageModel::Params p;
    p.totalStateBytes = total_gb * 1e9;
    p.hotSetBytes = hot_gb * 1e9;
    p.dirtyRateBytesPerSec = rate_mbps * 1e6;
    return p;
}

TEST(DirtyPageModel, DirtyGrowsLinearlyThenSaturates)
{
    DirtyPageModel m(params(18.0, 2.0, 100.0));
    EXPECT_DOUBLE_EQ(m.dirtyAfter(0), 0.0);
    EXPECT_DOUBLE_EQ(m.dirtyAfter(fromSeconds(10.0)), 1e9);
    // Saturates at the hot set.
    EXPECT_DOUBLE_EQ(m.dirtyAfter(fromSeconds(100.0)), 2e9);
    EXPECT_DOUBLE_EQ(m.dirtyAfter(fromHours(1.0)), 2e9);
}

TEST(DirtyPageModel, ResidualEqualsDirtyAtPeriod)
{
    DirtyPageModel m(params(18.0, 2.0, 100.0));
    EXPECT_DOUBLE_EQ(m.residualAfterPeriodicFlush(fromSeconds(5.0)), 0.5e9);
}

TEST(DirtyPageModel, ReadOnlyWorkloadConvergesInstantly)
{
    // No dirtying at all: one round.
    DirtyPageModel m(params(20.0, 0.0, 0.0));
    const auto plan = m.iterativeCopy(20e9, 100e6);
    EXPECT_EQ(plan.rounds, 1);
    EXPECT_TRUE(plan.converged);
    EXPECT_NEAR(toSeconds(plan.totalTime), 200.0, 1e-6);
    EXPECT_DOUBLE_EQ(plan.bytesMoved, 20e9);
}

TEST(DirtyPageModel, SlowDirtierConvergesGeometrically)
{
    // 10 GB at 100 MB/s; 10 MB/s dirty rate: rounds shrink 10x each.
    DirtyPageModel m(params(10.0, 8.0, 10.0));
    const auto plan = m.iterativeCopy(10e9, 100e6, 1e6);
    EXPECT_TRUE(plan.converged);
    EXPECT_GT(plan.rounds, 2);
    // Total approaches initial / (1 - r) with ratio r = 0.1.
    EXPECT_NEAR(toSeconds(plan.totalTime), 100.0 / 0.9, 1.5);
}

TEST(DirtyPageModel, AggressiveDirtierStopsAndCopies)
{
    // Dirty rate above bandwidth: pre-copy cannot converge; the model
    // stops when rounds stop shrinking and ships the hot set.
    DirtyPageModel m(params(18.0, 14.0, 250.0));
    const auto plan = m.iterativeCopy(18e9, 100e6, 2e9);
    EXPECT_FALSE(plan.converged);
    EXPECT_DOUBLE_EQ(plan.finalRoundBytes, 14e9);
    // 18 GB + 14 GB + 14 GB at 100 MB/s = 460 s: this is what anchors
    // the ~10 min Specjbb migration the paper measures.
    EXPECT_NEAR(toSeconds(plan.totalTime), 460.0, 1.0);
}

TEST(DirtyPageModel, SmallerInitialStateShortensMigration)
{
    DirtyPageModel m(params(18.0, 14.0, 250.0));
    const auto full = m.iterativeCopy(18e9, 100e6, 2e9);
    const auto proactive = m.iterativeCopy(10e9, 100e6, 2e9);
    EXPECT_LT(proactive.totalTime, full.totalTime);
}

TEST(DirtyPageModel, HigherBandwidthShortensMigration)
{
    DirtyPageModel m(params(18.0, 2.0, 50.0));
    const auto slow = m.iterativeCopy(18e9, 100e6);
    const auto fast = m.iterativeCopy(18e9, 1000e6);
    EXPECT_LT(fast.totalTime, slow.totalTime);
}

TEST(DirtyPageModel, MaxRoundsBoundsTheLoop)
{
    DirtyPageModel m(params(10.0, 8.0, 99.0)); // ratio ~0.99
    const auto plan = m.iterativeCopy(10e9, 100e6, 1.0, 3);
    EXPECT_LE(plan.rounds, 4); // 3 + possible stop-and-copy
}

TEST(DirtyPageModel, RejectsInvalidParameters)
{
    EXPECT_DEATH(DirtyPageModel(params(1.0, 2.0, 10.0)), "hot set");
    DirtyPageModel ok(params(2.0, 1.0, 10.0));
    EXPECT_DEATH(ok.iterativeCopy(1e9, 0.0), "bandwidth");
}

TEST(DirtyPageModel, ZeroInitialBytesIsFreeIfNothingDirties)
{
    DirtyPageModel m(params(20.0, 0.0, 0.0));
    const auto plan = m.iterativeCopy(0.0, 100e6);
    EXPECT_EQ(plan.totalTime, 0);
    EXPECT_DOUBLE_EQ(plan.bytesMoved, 0.0);
}

/**
 * Property: while pre-copy converges (dirty rate below the link
 * bandwidth), total migration time is monotone in the dirty rate.
 * Beyond the bandwidth the loop deliberately gives up early, so
 * monotonicity is only claimed below it.
 */
class DirtyRateSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(DirtyRateSweep, MigrationTimeMonotoneInDirtyRate)
{
    const double rate = GetParam();
    DirtyPageModel a(params(16.0, 8.0, rate));
    DirtyPageModel b(params(16.0, 8.0, rate + 15.0));
    EXPECT_LE(a.iterativeCopy(16e9, 100e6).totalTime,
              b.iterativeCopy(16e9, 100e6).totalTime);
}

INSTANTIATE_TEST_SUITE_P(Rates, DirtyRateSweep,
                         ::testing::Values(0.0, 10.0, 25.0, 40.0, 55.0,
                                           70.0));

} // namespace
} // namespace bpsim
