/**
 * @file
 * Tests for the server electrical model against the paper's testbed
 * numbers (80 W idle, 250 W peak, 7 P-states, 8 T-states).
 */

#include <gtest/gtest.h>

#include "server/server_model.hh"

namespace bpsim
{
namespace
{

TEST(ServerModel, DefaultsMatchPaperTestbed)
{
    ServerModel m;
    EXPECT_DOUBLE_EQ(m.params().idlePowerW, 80.0);
    EXPECT_DOUBLE_EQ(m.params().peakPowerW, 250.0);
    EXPECT_EQ(m.params().pStates, 7);
    EXPECT_EQ(m.params().tStates, 8);
    EXPECT_DOUBLE_EQ(m.params().memoryGb, 64.0);
    EXPECT_EQ(m.params().cores, 12);
}

TEST(ServerModel, PeakPowerAtFullSpeedFullLoad)
{
    ServerModel m;
    EXPECT_DOUBLE_EQ(m.activePowerW(0, 0, 1.0), 250.0);
}

TEST(ServerModel, IdlePowerAtZeroUtilization)
{
    ServerModel m;
    EXPECT_DOUBLE_EQ(m.activePowerW(0, 0, 0.0), 80.0);
    EXPECT_DOUBLE_EQ(m.activePowerW(6, 7, 0.0), 80.0);
}

TEST(ServerModel, FrequencyGridSpansNominalToMin)
{
    ServerModel m;
    EXPECT_DOUBLE_EQ(m.freqRatio(0), 1.0);
    EXPECT_NEAR(m.freqRatio(6), 1.6 / 3.4, 1e-12);
    for (int p = 1; p < 7; ++p)
        EXPECT_LT(m.freqRatio(p), m.freqRatio(p - 1));
}

TEST(ServerModel, DutyGridSpansFullToOneEighth)
{
    ServerModel m;
    EXPECT_DOUBLE_EQ(m.dutyRatio(0), 1.0);
    EXPECT_DOUBLE_EQ(m.dutyRatio(7), 1.0 / 8.0);
    for (int t = 1; t < 8; ++t)
        EXPECT_LT(m.dutyRatio(t), m.dutyRatio(t - 1));
}

TEST(ServerModel, PowerMonotoneInPState)
{
    ServerModel m;
    for (int p = 1; p < 7; ++p)
        EXPECT_LT(m.activePowerW(p, 0, 1.0), m.activePowerW(p - 1, 0, 1.0));
}

TEST(ServerModel, PowerMonotoneInTState)
{
    ServerModel m;
    for (int t = 1; t < 8; ++t)
        EXPECT_LT(m.activePowerW(0, t, 1.0), m.activePowerW(0, t - 1, 1.0));
}

TEST(ServerModel, DeepestThrottleNearIdle)
{
    ServerModel m;
    const Watts floor = m.minActivePowerW();
    EXPECT_GT(floor, m.params().idlePowerW);
    EXPECT_LT(floor, m.params().idlePowerW + 10.0);
}

TEST(ServerModel, SleepPowerTinyVersusIdle)
{
    ServerModel m;
    EXPECT_LE(m.params().sleepPowerW, 5.0);
    EXPECT_LT(m.params().sleepPowerW / m.params().idlePowerW, 0.1);
}

TEST(ServerModel, NicEffectiveBandwidth)
{
    ServerModel m;
    // 1 Gbps at 85 % efficiency: ~106 MB/s.
    EXPECT_NEAR(m.nicBytesPerSec(), 106.25e6, 1e4);
}

TEST(ServerModel, DiskBandwidths)
{
    ServerModel m;
    EXPECT_DOUBLE_EQ(m.diskWriteBytesPerSec(), 80e6);
    EXPECT_DOUBLE_EQ(m.diskReadBytesPerSec(), 115e6);
}

TEST(ServerModel, RejectsBadParameters)
{
    ServerModel::Params p;
    p.peakPowerW = 50.0; // below idle
    EXPECT_DEATH(ServerModel{p}, "peak power");
    ServerModel::Params q;
    q.pStates = 0;
    EXPECT_DEATH(ServerModel{q}, "power state");
}

TEST(ServerModel, OutOfRangeStatePanics)
{
    ServerModel m;
    EXPECT_DEATH(m.freqRatio(7), "out of range");
    EXPECT_DEATH(m.dutyRatio(-1), "out of range");
    EXPECT_DEATH(m.activePowerW(0, 0, 1.5), "utilization");
}

/** Property: power is within [idle, peak] across the whole state grid. */
class PowerGrid
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(PowerGrid, PowerWithinPhysicalEnvelope)
{
    ServerModel m;
    const auto [p, t] = GetParam();
    for (double u : {0.0, 0.25, 0.5, 0.75, 1.0}) {
        const Watts w = m.activePowerW(p, t, u);
        EXPECT_GE(w, m.params().idlePowerW);
        EXPECT_LE(w, m.params().peakPowerW);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllStates, PowerGrid,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4, 5, 6),
                       ::testing::Values(0, 1, 3, 5, 7)));

} // namespace
} // namespace bpsim
