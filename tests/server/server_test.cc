/**
 * @file
 * Tests for the Server power-state machine.
 */

#include <gtest/gtest.h>

#include "server/server.hh"

namespace bpsim
{
namespace
{

struct Fixture
{
    Simulator sim;
    ServerModel model;
    Server srv{sim, model, 0};
};

TEST(Server, StartsOffDrawingNothing)
{
    Fixture f;
    EXPECT_EQ(f.srv.state(), ServerState::Off);
    EXPECT_DOUBLE_EQ(f.srv.powerW(), 0.0);
    EXPECT_FALSE(f.srv.holdsVolatileState());
}

TEST(Server, PrimeActiveJumpsToFullSpeed)
{
    Fixture f;
    f.srv.primeActive();
    EXPECT_EQ(f.srv.state(), ServerState::Active);
    EXPECT_DOUBLE_EQ(f.srv.powerW(), 250.0);
    EXPECT_TRUE(f.srv.holdsVolatileState());
}

TEST(Server, BootTakesConfiguredTime)
{
    Fixture f;
    f.srv.boot(fromSeconds(120.0));
    EXPECT_EQ(f.srv.state(), ServerState::Booting);
    EXPECT_DOUBLE_EQ(f.srv.powerW(), 150.0); // boot power
    f.sim.runUntil(fromSeconds(119.0));
    EXPECT_EQ(f.srv.state(), ServerState::Booting);
    f.sim.runUntil(fromSeconds(121.0));
    EXPECT_EQ(f.srv.state(), ServerState::Active);
}

TEST(Server, ThrottlingKnobsChangePower)
{
    Fixture f;
    f.srv.primeActive();
    const Watts full = f.srv.powerW();
    f.srv.setPState(6);
    const Watts dvfs = f.srv.powerW();
    EXPECT_LT(dvfs, full);
    f.srv.setTState(7);
    EXPECT_LT(f.srv.powerW(), dvfs);
    f.srv.setUtilization(0.0);
    EXPECT_DOUBLE_EQ(f.srv.powerW(), 80.0);
}

TEST(Server, SleepCycleTimingsAndPower)
{
    Fixture f;
    f.srv.primeActive();
    f.srv.enterSleep(fromSeconds(6.0));
    EXPECT_EQ(f.srv.state(), ServerState::EnteringSleep);
    EXPECT_TRUE(f.srv.holdsVolatileState());
    f.sim.runUntil(fromSeconds(7.0));
    EXPECT_EQ(f.srv.state(), ServerState::Sleeping);
    EXPECT_DOUBLE_EQ(f.srv.powerW(), 5.0);
    f.srv.wake(fromSeconds(8.0));
    EXPECT_EQ(f.srv.state(), ServerState::Waking);
    f.sim.runUntil(fromSeconds(16.0));
    EXPECT_EQ(f.srv.state(), ServerState::Active);
}

TEST(Server, WakeResumesAtFullSpeed)
{
    Fixture f;
    f.srv.primeActive();
    f.srv.setPState(5); // throttled before sleeping (Sleep-L)
    f.srv.enterSleep(fromSeconds(8.0));
    f.sim.runUntil(fromSeconds(9.0));
    f.srv.wake(fromSeconds(8.0));
    f.sim.runUntil(fromSeconds(20.0));
    EXPECT_EQ(f.srv.pstate(), 0);
    EXPECT_DOUBLE_EQ(f.srv.powerW(), 250.0);
}

TEST(Server, HibernateCyclePowersFullyOff)
{
    Fixture f;
    f.srv.primeActive();
    f.srv.saveToDisk(fromSeconds(230.0));
    EXPECT_EQ(f.srv.state(), ServerState::SavingToDisk);
    EXPECT_GT(f.srv.powerW(), 0.0);
    f.sim.runUntil(fromSeconds(231.0));
    EXPECT_EQ(f.srv.state(), ServerState::Hibernated);
    EXPECT_DOUBLE_EQ(f.srv.powerW(), 0.0);
    EXPECT_FALSE(f.srv.holdsVolatileState());
    f.srv.resumeFromDisk(fromSeconds(157.0));
    EXPECT_EQ(f.srv.state(), ServerState::ResumingFromDisk);
    f.sim.runUntil(fromSeconds(400.0));
    EXPECT_EQ(f.srv.state(), ServerState::Active);
}

TEST(Server, ThrottledSaveDrawsLessThanFullSpeedSave)
{
    Fixture f;
    f.srv.primeActive();
    f.srv.setPState(5);
    f.srv.saveToDisk(fromSeconds(385.0));
    EXPECT_LT(f.srv.powerW(), 130.0); // ~half of peak (Hibernate-L)
}

TEST(Server, CrashLosesVolatileState)
{
    Fixture f;
    f.srv.primeActive();
    f.srv.crash();
    EXPECT_EQ(f.srv.state(), ServerState::Crashed);
    EXPECT_TRUE(f.srv.crashed());
    EXPECT_DOUBLE_EQ(f.srv.powerW(), 0.0);
}

TEST(Server, CrashDuringSleepTransitionAbortsIt)
{
    Fixture f;
    f.srv.primeActive();
    f.srv.enterSleep(fromSeconds(6.0));
    f.srv.crash();
    f.sim.runUntil(fromSeconds(10.0));
    // The pending completion must not resurrect the server.
    EXPECT_EQ(f.srv.state(), ServerState::Crashed);
}

TEST(Server, CrashDuringSleepLosesDramState)
{
    Fixture f;
    f.srv.primeActive();
    f.srv.enterSleep(fromSeconds(6.0));
    f.sim.runUntil(fromSeconds(7.0));
    ASSERT_EQ(f.srv.state(), ServerState::Sleeping);
    f.srv.crash(); // self-refresh lost
    EXPECT_EQ(f.srv.state(), ServerState::Crashed);
}

TEST(Server, HibernatedServerImmuneToCrash)
{
    Fixture f;
    f.srv.primeActive();
    f.srv.saveToDisk(fromSeconds(10.0));
    f.sim.runUntil(fromSeconds(11.0));
    f.srv.crash();
    EXPECT_EQ(f.srv.state(), ServerState::Hibernated);
}

TEST(Server, BootFromCrashRecovers)
{
    Fixture f;
    f.srv.primeActive();
    f.srv.crash();
    f.srv.boot(fromSeconds(120.0));
    f.sim.runUntil(fromSeconds(121.0));
    EXPECT_EQ(f.srv.state(), ServerState::Active);
    EXPECT_FALSE(f.srv.crashed());
}

TEST(Server, ShutdownIsGraceful)
{
    Fixture f;
    f.srv.primeActive();
    f.srv.shutdown();
    EXPECT_EQ(f.srv.state(), ServerState::Off);
    EXPECT_FALSE(f.srv.crashed());
}

TEST(Server, ChangeHookFiresOnTransitions)
{
    Fixture f;
    int changes = 0;
    f.srv.onChange([&] { ++changes; });
    f.srv.primeActive();
    f.srv.setPState(3);
    f.srv.enterSleep(fromSeconds(5.0));
    f.sim.runUntil(fromSeconds(6.0));
    EXPECT_EQ(changes, 4); // prime, pstate, enter-sleep, sleeping
}

TEST(Server, InvalidTransitionsPanic)
{
    Fixture f;
    EXPECT_DEATH(f.srv.shutdown(), "shutdown from");
    EXPECT_DEATH(f.srv.wake(kSecond), "wake from");
    f.srv.primeActive();
    EXPECT_DEATH(f.srv.boot(kSecond), "boot from");
    EXPECT_DEATH(f.srv.resumeFromDisk(kSecond), "disk resume from");
}

TEST(Server, StateNamesAreStable)
{
    EXPECT_STREQ(serverStateName(ServerState::Active), "Active");
    EXPECT_STREQ(serverStateName(ServerState::Hibernated), "Hibernated");
    EXPECT_STREQ(serverStateName(ServerState::Crashed), "Crashed");
}

} // namespace
} // namespace bpsim
