/**
 * @file
 * Tests for DG-aware technique behaviour: once the generator carries
 * the load the energy emergency is over, and the techniques react
 * according to how much generator was provisioned.
 */

#include <gtest/gtest.h>

#include "fixture.hh"
#include "technique/hibernate.hh"
#include "technique/hybrid.hh"
#include "technique/sleep.hh"
#include "technique/throttling.hh"

namespace bpsim
{
namespace
{

PowerHierarchy::Config
withDg(double dg_frac, int n = 4)
{
    PowerHierarchy::Config c;
    c.hasUps = true;
    c.ups.powerCapacityW = n * 250.0;
    c.ups.runtimeAtRatedSec = 600.0;
    c.hasDg = true;
    c.dg.powerCapacityW = dg_frac * n * 250.0;
    return c;
}

TEST(DgAware, ThrottlingUnthrottlesOnFullDg)
{
    TechniqueHarness h(std::make_unique<Throttling>(6, 0),
                       specJbbProfile(), 4, withDg(1.0));
    h.runOutage(kMinute, kHour, 2 * kHour);
    // After the ~2.5 min transition the DG carries everything: full
    // speed for the rest of the outage.
    EXPECT_DOUBLE_EQ(h.cluster.perfTimeline().valueAt(kMinute + kHour / 2),
                     1.0);
    EXPECT_EQ(h.hierarchy.powerLossCount(), 0);
}

TEST(DgAware, ThrottlingFitsASmallDg)
{
    // A half-size DG: the cluster may only run at ~125 W/server.
    TechniqueHarness h(std::make_unique<Throttling>(6, 0),
                       specJbbProfile(), 4, withDg(0.5));
    h.runOutage(kMinute, kHour, 2 * kHour);
    EXPECT_EQ(h.hierarchy.powerLossCount(), 0);
    const double mid =
        h.cluster.perfTimeline().valueAt(kMinute + kHour / 2);
    // Better than the deep p6 throttle, but well short of full.
    EXPECT_GT(mid, 0.55);
    EXPECT_LT(mid, 0.75);
}

TEST(DgAware, SleepWakesOnFullDgOnly)
{
    TechniqueHarness full(std::make_unique<SleepTechnique>(false),
                          specJbbProfile(), 4, withDg(1.0));
    full.runOutage(kMinute, kHour, 2 * kHour);
    // Woken by the DG: serving mid-outage.
    EXPECT_DOUBLE_EQ(
        full.cluster.perfTimeline().valueAt(kMinute + 30 * kMinute),
        1.0);

    TechniqueHarness small(std::make_unique<SleepTechnique>(false),
                           specJbbProfile(), 4, withDg(0.5));
    small.runOutage(kMinute, kHour, 2 * kHour);
    // A half DG cannot carry the woken cluster: stay asleep.
    EXPECT_DOUBLE_EQ(
        small.cluster.perfTimeline().valueAt(kMinute + 30 * kMinute),
        0.0);
    EXPECT_EQ(small.hierarchy.powerLossCount(), 0);
    // And it still wakes cleanly when the utility returns.
    EXPECT_DOUBLE_EQ(
        small.cluster.perfTimeline().valueAt(2 * kHour - kSecond), 1.0);
}

TEST(DgAware, HibernateResumesOnFullDg)
{
    TechniqueHarness h(
        std::make_unique<HibernationTechnique>(false, false),
        specJbbProfile(), 4, withDg(1.0));
    h.runOutage(kMinute, kHour, 3 * kHour);
    // Save (~230 s) + DG resume (~157 s): serving again mid-outage.
    EXPECT_DOUBLE_EQ(
        h.cluster.perfTimeline().valueAt(kMinute + 30 * kMinute), 1.0);
    for (int i = 0; i < h.cluster.size(); ++i)
        EXPECT_EQ(h.cluster.app(i).stateLosses(), 0);
}

TEST(DgAware, HybridCancelsSaveWhenPartialDgArrives)
{
    // Serve window 10 min; the half-size DG is carrying by ~2.5 min,
    // so the save never happens and throttled service continues for
    // the entire outage.
    TechniqueHarness h(std::make_unique<ThrottleThenSave>(
                           5, 0, ThrottleThenSave::SaveMode::Sleep,
                           10 * kMinute),
                       specJbbProfile(), 4, withDg(0.5));
    h.runOutage(kMinute, 2 * kHour, 4 * kHour);
    EXPECT_EQ(h.hierarchy.powerLossCount(), 0);
    const double mid =
        h.cluster.perfTimeline().valueAt(kMinute + kHour);
    EXPECT_GT(mid, 0.5); // still serving, throttled to the DG
    EXPECT_DOUBLE_EQ(h.cluster.perfTimeline().valueAt(4 * kHour - kSecond),
                     1.0);
}

TEST(DgAware, HybridRecoversFullyOnFullDg)
{
    TechniqueHarness h(std::make_unique<ThrottleThenSave>(
                           5, 0, ThrottleThenSave::SaveMode::Sleep,
                           kMinute),
                       specJbbProfile(), 4, withDg(1.0));
    h.runOutage(kMinute, 2 * kHour, 4 * kHour);
    // It slept at +1 min, the DG was ready at ~+2.5 min and woke it:
    // full service for nearly the whole outage.
    const double avg = h.cluster.perfTimeline().average(
        kMinute + 5 * kMinute, kMinute + 2 * kHour);
    EXPECT_GT(avg, 0.99);
}

} // namespace
} // namespace bpsim
