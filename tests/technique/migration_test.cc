/**
 * @file
 * Tests for the Migration (consolidation & shutdown) techniques.
 */

#include <gtest/gtest.h>

#include "fixture.hh"
#include "technique/migration.hh"

namespace bpsim
{
namespace
{

TEST(Migration, PlanMatchesPaperSpecjbbTiming)
{
    TechniqueHarness h(std::make_unique<MigrationTechnique>(
        MigrationTechnique::Options{}));
    auto *mig = static_cast<MigrationTechnique *>(h.technique.get());
    const auto plan = mig->migrationPlan(h.cluster);
    // The paper measures ~10 min for 18 GB Specjbb; the dirty-page
    // model lands at ~8 min with a short forced-convergence blackout.
    EXPECT_GT(toMinutes(plan.precopy + plan.blackout), 6.0);
    EXPECT_LT(toMinutes(plan.precopy + plan.blackout), 12.0);
    EXPECT_LE(toSeconds(plan.blackout), 20.0);
}

TEST(Migration, ProactiveShrinksTheResidual)
{
    MigrationTechnique::Options pro;
    pro.proactive = true;
    TechniqueHarness h(std::make_unique<MigrationTechnique>(pro));
    auto *mig = static_cast<MigrationTechnique *>(h.technique.get());
    const auto plan = mig->migrationPlan(h.cluster);

    TechniqueHarness full(std::make_unique<MigrationTechnique>(
        MigrationTechnique::Options{}));
    auto *mig_full = static_cast<MigrationTechnique *>(full.technique.get());
    const auto plan_full = mig_full->migrationPlan(full.cluster);

    // Paper: 18 GB -> 10 GB residual, 10 min -> ~5 min.
    EXPECT_LT(plan.bytesMoved, plan_full.bytesMoved);
    EXPECT_LT(plan.precopy + plan.blackout,
              plan_full.precopy + plan_full.blackout);
}

TEST(Migration, ConsolidatesOntoHalfTheServers)
{
    TechniqueHarness h(std::make_unique<MigrationTechnique>(
        MigrationTechnique::Options{}));
    h.runOutage(kMinute, kHour, 4 * kHour);
    EXPECT_EQ(h.hierarchy.powerLossCount(), 0);
    // Mid-outage (after the ~8 min migration): sources off, hosts on.
    // Check power: 2 servers at full + 2 off ~ 500 W, well below the
    // 1000 W unconsolidated draw.
    const Watts mid =
        h.hierarchy.meter().fromBattery().valueAt(30 * kMinute);
    EXPECT_NEAR(mid, 2 * 250.0, 25.0);
}

TEST(Migration, ConsolidatedServiceContinues)
{
    TechniqueHarness h(std::make_unique<MigrationTechnique>(
        MigrationTechnique::Options{}));
    h.runOutage(kMinute, kHour, 4 * kHour);
    // During consolidation each pair shares one machine: aggregate
    // normalized perf ~0.5, and the service counts as available.
    const double mid_perf =
        h.cluster.perfTimeline().valueAt(30 * kMinute);
    EXPECT_NEAR(mid_perf, 0.5, 0.05);
    EXPECT_DOUBLE_EQ(
        h.cluster.availabilityTimeline().valueAt(30 * kMinute), 1.0);
}

TEST(Migration, MigratesBackAfterRestore)
{
    TechniqueHarness h(std::make_unique<MigrationTechnique>(
        MigrationTechnique::Options{}));
    h.runOutage(kMinute, kHour, 4 * kHour);
    // Everything home and at full speed by the end.
    EXPECT_DOUBLE_EQ(h.cluster.perfTimeline().valueAt(4 * kHour - kSecond),
                     1.0);
    for (int i = 0; i < h.cluster.size(); ++i) {
        EXPECT_EQ(h.cluster.app(i).host(), h.cluster.app(i).home());
        EXPECT_DOUBLE_EQ(h.cluster.app(i).hostShare(), 1.0);
        EXPECT_EQ(h.cluster.server(i).state(), ServerState::Active);
    }
}

TEST(Migration, NoStateLossAcrossTheCycle)
{
    TechniqueHarness h(std::make_unique<MigrationTechnique>(
        MigrationTechnique::Options{}));
    h.runOutage(kMinute, kHour, 4 * kHour);
    for (int i = 0; i < h.cluster.size(); ++i)
        EXPECT_EQ(h.cluster.app(i).stateLosses(), 0);
}

TEST(Migration, ShortOutageAbortsTheCopy)
{
    // Outage ends mid-pre-copy: the migration is cancelled and
    // everything stays home at full service.
    TechniqueHarness h(std::make_unique<MigrationTechnique>(
        MigrationTechnique::Options{}));
    h.runOutage(kMinute, 2 * kMinute, kHour);
    EXPECT_DOUBLE_EQ(h.cluster.perfTimeline().valueAt(kHour - kSecond),
                     1.0);
    for (int i = 0; i < h.cluster.size(); ++i) {
        EXPECT_EQ(h.cluster.app(i).host(), h.cluster.app(i).home());
        EXPECT_FALSE(h.cluster.app(i).migrating());
    }
}

TEST(Migration, SleepAfterVariantSleepsHosts)
{
    MigrationTechnique::Options o;
    o.sleepAfter = true;
    TechniqueHarness h(std::make_unique<MigrationTechnique>(o));
    h.runOutage(kMinute, 2 * kHour, 6 * kHour);
    EXPECT_EQ(h.hierarchy.powerLossCount(), 0);
    // Well after consolidation + sleep: battery draw is sleep-level.
    const Watts late =
        h.hierarchy.meter().fromBattery().valueAt(kMinute + kHour);
    EXPECT_LT(late, 4 * 6.0);
    // And it all comes back.
    EXPECT_DOUBLE_EQ(h.cluster.perfTimeline().valueAt(6 * kHour - kSecond),
                     1.0);
}

TEST(Migration, ThrottleDuringCopySuppressesSpike)
{
    MigrationTechnique::Options o;
    o.duringPState = 5;
    TechniqueHarness h(std::make_unique<MigrationTechnique>(o));
    h.runOutage(kMinute, kHour, 4 * kHour);
    // Peak battery draw during the copy stays near the throttled level
    // instead of 4 x 250 W.
    const Watts peak = h.hierarchy.meter().fromBattery().maxOver(
        kMinute, kMinute + 10 * kMinute);
    EXPECT_LT(peak, 4 * 135.0);
}

TEST(Migration, SurvivesMidMigrationPowerLoss)
{
    // A tiny UPS dies during the copy; everything crashes, reboots on
    // restore, and recovers at home.
    PowerHierarchy::Config tiny;
    tiny.hasDg = false;
    tiny.hasUps = true;
    tiny.ups.powerCapacityW = 4 * 250.0 * 1.01;
    tiny.ups.runtimeAtRatedSec = 60.0; // dies mid-copy
    TechniqueHarness h(std::make_unique<MigrationTechnique>(
                           MigrationTechnique::Options{}),
                       specJbbProfile(), 4, tiny);
    h.runOutage(kMinute, 30 * kMinute, 4 * kHour);
    EXPECT_GE(h.hierarchy.powerLossCount(), 1);
    EXPECT_DOUBLE_EQ(h.cluster.perfTimeline().valueAt(4 * kHour - kSecond),
                     1.0);
    for (int i = 0; i < h.cluster.size(); ++i)
        EXPECT_EQ(h.cluster.app(i).host(), h.cluster.app(i).home());
}

TEST(Migration, OddClusterLeavesUnpairedServerRunning)
{
    TechniqueHarness h(std::make_unique<MigrationTechnique>(
                           MigrationTechnique::Options{}),
                       specJbbProfile(), 5);
    h.runOutage(kMinute, kHour, 4 * kHour);
    EXPECT_EQ(h.hierarchy.powerLossCount(), 0);
    // Server 4 is unpaired: keeps serving solo.
    EXPECT_EQ(h.cluster.server(4).state(), ServerState::Active);
    EXPECT_DOUBLE_EQ(h.cluster.perfTimeline().valueAt(4 * kHour - kSecond),
                     1.0);
}

TEST(Migration, NamesReflectVariants)
{
    EXPECT_EQ(MigrationTechnique({}).name(), "Migration");
    MigrationTechnique::Options pro;
    pro.proactive = true;
    EXPECT_EQ(MigrationTechnique(pro).name(), "ProactiveMigration");
    MigrationTechnique::Options slp;
    slp.sleepAfter = true;
    EXPECT_EQ(MigrationTechnique(slp).name(), "Migration+Sleep-L");
}

} // namespace
} // namespace bpsim
