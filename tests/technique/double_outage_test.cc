/**
 * @file
 * Edge-case integration tests: a second outage arriving while the
 * cluster is still recovering from (or reacting to) the first —
 * brownout-style sub-second events, outage-during-wake, and
 * outage-during-migrate-back. The paper's footnote 3 folds brownouts
 * and sags into outage events; these tests pin the model's behaviour
 * on exactly those patterns.
 */

#include <gtest/gtest.h>

#include "fixture.hh"
#include "technique/hibernate.hh"
#include "technique/migration.hh"
#include "technique/sleep.hh"
#include "technique/throttling.hh"

namespace bpsim
{
namespace
{

TEST(DoubleOutage, BrownoutIsSeamlessOnBattery)
{
    // A 200 ms sag is an outage event per the paper's footnote; with a
    // UPS it must be completely invisible.
    TechniqueHarness h(std::make_unique<Throttling>(5, 0));
    h.utility.scheduleOutage(kMinute, 200 * kMillisecond);
    h.sim.runUntil(10 * kMinute);
    EXPECT_EQ(h.hierarchy.powerLossCount(), 0);
    EXPECT_DOUBLE_EQ(
        h.cluster.availabilityTimeline().average(0, 10 * kMinute), 1.0);
}

TEST(DoubleOutage, BrownoutWithoutUpsCrashes)
{
    PowerHierarchy::Config bare;
    bare.hasDg = false;
    bare.hasUps = false;
    TechniqueHarness h(std::make_unique<NoTechnique>(), specJbbProfile(),
                       4, bare);
    h.utility.scheduleOutage(kMinute, 200 * kMillisecond);
    h.sim.runUntil(kHour);
    EXPECT_EQ(h.hierarchy.powerLossCount(), 1);
    // Recovery still completes.
    EXPECT_DOUBLE_EQ(h.cluster.perfTimeline().valueAt(kHour - kSecond),
                     1.0);
}

TEST(DoubleOutage, SecondOutageDuringWakeSleepsAgain)
{
    TechniqueHarness h(std::make_unique<SleepTechnique>(false));
    // First outage: 10 min; second begins 4 s after restore, while
    // servers are still waking (8 s resume).
    h.utility.scheduleOutage(kMinute, 10 * kMinute);
    h.utility.scheduleOutage(11 * kMinute + 4 * kSecond, 10 * kMinute);
    h.sim.runUntil(2 * kHour);
    EXPECT_EQ(h.hierarchy.powerLossCount(), 0);
    for (int i = 0; i < h.cluster.size(); ++i)
        EXPECT_EQ(h.cluster.app(i).stateLosses(), 0);
    EXPECT_DOUBLE_EQ(h.cluster.perfTimeline().valueAt(2 * kHour - kSecond),
                     1.0);
}

TEST(DoubleOutage, SecondOutageDuringHibernateResume)
{
    TechniqueHarness h(
        std::make_unique<HibernationTechnique>(false, false));
    // Second outage lands mid-resume (resume takes ~157 s).
    h.utility.scheduleOutage(kMinute, 10 * kMinute);
    h.utility.scheduleOutage(11 * kMinute + kMinute, 10 * kMinute);
    h.sim.runUntil(3 * kHour);
    EXPECT_EQ(h.hierarchy.powerLossCount(), 0);
    EXPECT_DOUBLE_EQ(h.cluster.perfTimeline().valueAt(3 * kHour - kSecond),
                     1.0);
    for (int i = 0; i < h.cluster.size(); ++i)
        EXPECT_EQ(h.cluster.server(i).state(), ServerState::Active);
}

TEST(DoubleOutage, SecondOutageDuringMigrateBack)
{
    TechniqueHarness h(std::make_unique<MigrationTechnique>(
        MigrationTechnique::Options{}));
    // First outage consolidates; second hits during the migrate-back
    // window (~boot 2 min + copy ~8 min after restore).
    h.utility.scheduleOutage(kMinute, kHour);
    h.utility.scheduleOutage(kMinute + kHour + 5 * kMinute, 30 * kMinute);
    h.sim.runUntil(6 * kHour);
    EXPECT_EQ(h.hierarchy.powerLossCount(), 0);
    // Everything eventually comes home at full service.
    EXPECT_DOUBLE_EQ(h.cluster.perfTimeline().valueAt(6 * kHour - kSecond),
                     1.0);
    for (int i = 0; i < h.cluster.size(); ++i) {
        EXPECT_EQ(h.cluster.app(i).host(), h.cluster.app(i).home());
        EXPECT_EQ(h.cluster.app(i).stateLosses(), 0);
    }
}

TEST(DoubleOutage, ThreeBackToBackShortOutages)
{
    TechniqueHarness h(std::make_unique<Throttling>(6, 0));
    for (int k = 0; k < 3; ++k) {
        h.utility.scheduleOutage(kMinute + k * 10 * kMinute,
                                 2 * kMinute);
    }
    h.sim.runUntil(2 * kHour);
    EXPECT_EQ(h.hierarchy.powerLossCount(), 0);
    EXPECT_EQ(h.utility.outagesSeen(), 3);
    EXPECT_DOUBLE_EQ(
        h.cluster.availabilityTimeline().average(0, 2 * kHour), 1.0);
}

} // namespace
} // namespace bpsim
