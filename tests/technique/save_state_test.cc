/**
 * @file
 * Tests for the save-state techniques: Sleep, Hibernation and their
 * low-power / proactive variants, against the Table 8 measurements.
 */

#include <gtest/gtest.h>

#include "fixture.hh"
#include "technique/hibernate.hh"
#include "technique/sleep.hh"

namespace bpsim
{
namespace
{

TEST(Sleep, SaveAndResumeMatchTable8)
{
    TechniqueHarness h(std::make_unique<SleepTechnique>(false));
    auto *sleep = static_cast<SleepTechnique *>(h.technique.get());
    EXPECT_NEAR(toSeconds(sleep->saveTime(h.cluster)), 6.0, 0.5);
    EXPECT_NEAR(toSeconds(sleep->resumeTime(h.cluster)), 8.0, 0.5);
}

TEST(Sleep, LowPowerVariantMatchesTable8)
{
    TechniqueHarness h(std::make_unique<SleepTechnique>(true));
    auto *sleep = static_cast<SleepTechnique *>(h.technique.get());
    // Table 8: Sleep-L saves in 8 s (vs 6 s) at half of peak power.
    EXPECT_NEAR(toSeconds(sleep->saveTime(h.cluster)), 8.0, 1.0);
}

TEST(Sleep, ServersSleepDuringOutageAndWakeAfter)
{
    TechniqueHarness h(std::make_unique<SleepTechnique>(false));
    h.runOutage(kMinute, 30 * kMinute, 2 * kHour);
    // Mid-outage: everything asleep at ~5 W.
    EXPECT_EQ(h.hierarchy.powerLossCount(), 0);
    const Watts mid =
        h.hierarchy.meter().fromBattery().valueAt(15 * kMinute);
    EXPECT_NEAR(mid, 4 * 5.0, 1.0);
    // Afterwards: serving again at full power.
    EXPECT_DOUBLE_EQ(h.cluster.perfTimeline().valueAt(2 * kHour - kSecond),
                     1.0);
}

TEST(Sleep, DowntimeIsOutagePlusResume)
{
    TechniqueHarness h(std::make_unique<SleepTechnique>(false));
    const Time outage = 30 * kMinute;
    h.runOutage(kMinute, outage, 2 * kHour);
    const Time down = h.cluster.availabilityTimeline().timeBelow(
        kMinute, 2 * kHour, 0.5);
    EXPECT_NEAR(toSeconds(down), toSeconds(outage) + 8.0, 2.0);
}

TEST(Sleep, StatePreservedNoLosses)
{
    TechniqueHarness h(std::make_unique<SleepTechnique>(true));
    h.runOutage(kMinute, kHour, 3 * kHour);
    for (int i = 0; i < h.cluster.size(); ++i)
        EXPECT_EQ(h.cluster.app(i).stateLosses(), 0);
}

TEST(Sleep, OutageShorterThanSaveStillWakes)
{
    // A 3 s outage ends while servers are still suspending; they must
    // finish the suspend and wake up rather than hang asleep.
    TechniqueHarness h(std::make_unique<SleepTechnique>(false));
    h.runOutage(kMinute, 3 * kSecond, kHour);
    EXPECT_DOUBLE_EQ(h.cluster.perfTimeline().valueAt(kHour - kSecond),
                     1.0);
    for (int i = 0; i < h.cluster.size(); ++i)
        EXPECT_EQ(h.cluster.server(i).state(), ServerState::Active);
}

TEST(Hibernate, SaveAndResumeMatchTable8)
{
    TechniqueHarness h(
        std::make_unique<HibernationTechnique>(false, false));
    auto *hib = static_cast<HibernationTechnique *>(h.technique.get());
    EXPECT_NEAR(toSeconds(hib->saveTime(h.cluster)), 230.0, 10.0);
    EXPECT_NEAR(toSeconds(hib->resumeTime(h.cluster)), 157.0, 8.0);
}

TEST(Hibernate, LowPowerVariantMatchesTable8)
{
    TechniqueHarness h(std::make_unique<HibernationTechnique>(true, false));
    auto *hib = static_cast<HibernationTechnique *>(h.technique.get());
    // Table 8: Hibernate-L saves in 385 s, resumes in 175 s.
    EXPECT_NEAR(toSeconds(hib->saveTime(h.cluster)), 385.0, 30.0);
    EXPECT_NEAR(toSeconds(hib->resumeTime(h.cluster)), 175.0, 10.0);
}

TEST(Hibernate, ProactiveReducesSaveTime)
{
    TechniqueHarness full(
        std::make_unique<HibernationTechnique>(false, false));
    TechniqueHarness pro(
        std::make_unique<HibernationTechnique>(false, true));
    auto *h_full = static_cast<HibernationTechnique *>(full.technique.get());
    auto *h_pro = static_cast<HibernationTechnique *>(pro.technique.get());
    const double t_full = toSeconds(h_full->saveTime(full.cluster));
    const double t_pro = toSeconds(h_pro->saveTime(pro.cluster));
    // The paper measures a 22 % reduction (230 s -> 179 s).
    EXPECT_LT(t_pro, t_full);
    EXPECT_NEAR(t_pro, 179.0, 15.0);
}

TEST(Hibernate, ServersReachZeroWattsDuringOutage)
{
    TechniqueHarness h(
        std::make_unique<HibernationTechnique>(false, false));
    h.runOutage(kMinute, kHour, 3 * kHour);
    EXPECT_EQ(h.hierarchy.powerLossCount(), 0);
    // After the ~230 s save the battery draw is exactly zero.
    EXPECT_DOUBLE_EQ(
        h.hierarchy.meter().fromBattery().valueAt(30 * kMinute), 0.0);
    EXPECT_DOUBLE_EQ(h.cluster.perfTimeline().valueAt(3 * kHour - kSecond),
                     1.0);
}

TEST(Hibernate, BadIdeaForShortOutages)
{
    // Figure 6, 30 s outage: the save must complete (on restored
    // utility) and resume afterwards, so downtime far exceeds the
    // outage itself.
    TechniqueHarness h(
        std::make_unique<HibernationTechnique>(false, false));
    h.runOutage(kMinute, 30 * kSecond, 2 * kHour);
    const Time down = h.cluster.availabilityTimeline().timeBelow(
        kMinute, 2 * kHour, 0.5);
    EXPECT_GT(toSeconds(down), 350.0);
    EXPECT_LT(toSeconds(down), 450.0);
}

TEST(Hibernate, WebSearchHibernationBeatsStateLoss)
{
    // Section 6.2: for Web-search, Hibernation (~400 s) beats MinCost
    // (~600 s) on a 30 s outage; our availability accounting must
    // reproduce that ordering.
    TechniqueHarness hib(
        std::make_unique<HibernationTechnique>(false, false),
        webSearchProfile());
    hib.runOutage(kMinute, 30 * kSecond, 2 * kHour);
    const Time down_hib = hib.cluster.availabilityTimeline().timeBelow(
        kMinute, 2 * kHour, 0.5);
    EXPECT_NEAR(toSeconds(down_hib), 400.0, 60.0);
}

TEST(Hibernate, MemcachedHibernationWorseThanReload)
{
    TechniqueHarness hib(
        std::make_unique<HibernationTechnique>(false, false),
        memcachedProfile());
    hib.runOutage(kMinute, 30 * kSecond, 2 * kHour);
    const Time down = hib.cluster.availabilityTimeline().timeBelow(
        kMinute, 2 * kHour, 0.5);
    // ~1140 s in the paper.
    EXPECT_NEAR(toSeconds(down), 1140.0, 150.0);
}

TEST(Hibernate, NamesAndFamilies)
{
    EXPECT_EQ(HibernationTechnique(false, false).name(), "Hibernate");
    EXPECT_EQ(HibernationTechnique(true, false).name(), "Hibernate-L");
    EXPECT_EQ(HibernationTechnique(false, true).name(),
              "ProactiveHibernate");
    EXPECT_EQ(SleepTechnique(true).name(), "Sleep-L");
    EXPECT_EQ(SleepTechnique(false).family(), TechniqueFamily::SaveState);
}

TEST(SleepVsHibernate, SleepRecoversFasterForMediumOutages)
{
    TechniqueHarness slp(std::make_unique<SleepTechnique>(false));
    slp.runOutage(kMinute, 30 * kMinute, 2 * kHour);
    TechniqueHarness hib(
        std::make_unique<HibernationTechnique>(false, false));
    hib.runOutage(kMinute, 30 * kMinute, 2 * kHour);

    const Time down_sleep = slp.cluster.availabilityTimeline().timeBelow(
        kMinute, 2 * kHour, 0.5);
    const Time down_hib = hib.cluster.availabilityTimeline().timeBelow(
        kMinute, 2 * kHour, 0.5);
    EXPECT_LT(down_sleep, down_hib);
}

TEST(SleepVsHibernate, HibernateDrawsLessEnergyForVeryLongOutages)
{
    // Self-refresh costs ~20 W continuously; the one-time image write
    // costs ~64 Wh. Past a few hours, hibernation wins on energy.
    TechniqueHarness slp(std::make_unique<SleepTechnique>(false));
    slp.runOutage(kMinute, 6 * kHour, 8 * kHour);
    TechniqueHarness hib(
        std::make_unique<HibernationTechnique>(false, false));
    hib.runOutage(kMinute, 6 * kHour, 8 * kHour);

    const double e_sleep = joulesToKwh(
        slp.hierarchy.meter().batteryEnergyJ(0, 8 * kHour));
    const double e_hib = joulesToKwh(
        hib.hierarchy.meter().batteryEnergyJ(0, 8 * kHour));
    EXPECT_LT(e_hib, e_sleep);
}

} // namespace
} // namespace bpsim
