/**
 * @file
 * Tests for the hybrid throttle-then-save techniques (Table 6).
 */

#include <gtest/gtest.h>

#include "fixture.hh"
#include "technique/hybrid.hh"

namespace bpsim
{
namespace
{

TEST(ThrottleThenSave, ServesThrottledThenSleeps)
{
    TechniqueHarness h(std::make_unique<ThrottleThenSave>(
        6, 0, ThrottleThenSave::SaveMode::Sleep, 20 * kMinute));
    h.runOutage(kMinute, kHour, 3 * kHour);
    const auto &perf = h.cluster.perfTimeline();
    // Serving (throttled) 10 minutes in; dark 40 minutes in.
    EXPECT_GT(perf.valueAt(kMinute + 10 * kMinute), 0.4);
    EXPECT_DOUBLE_EQ(perf.valueAt(kMinute + 40 * kMinute), 0.0);
    // Battery draw in the sleep tail is self-refresh only.
    EXPECT_NEAR(
        h.hierarchy.meter().fromBattery().valueAt(kMinute + 40 * kMinute),
        4 * 5.0, 1.0);
    // Recovered at the end.
    EXPECT_DOUBLE_EQ(perf.valueAt(3 * kHour - kSecond), 1.0);
}

TEST(ThrottleThenSave, ZeroWindowDegeneratesToImmediateSave)
{
    TechniqueHarness h(std::make_unique<ThrottleThenSave>(
        5, 0, ThrottleThenSave::SaveMode::Sleep, 0));
    h.runOutage(kMinute, 30 * kMinute, 2 * kHour);
    // Immediately after the outage begins the cluster suspends.
    EXPECT_DOUBLE_EQ(
        h.cluster.perfTimeline().valueAt(kMinute + kMinute), 0.0);
}

TEST(ThrottleThenSave, HibernateTailReachesZeroWatts)
{
    TechniqueHarness h(std::make_unique<ThrottleThenSave>(
        5, 0, ThrottleThenSave::SaveMode::Hibernate, 10 * kMinute));
    h.runOutage(kMinute, 2 * kHour, 5 * kHour);
    // Long after the throttled save completes: zero draw.
    EXPECT_DOUBLE_EQ(
        h.hierarchy.meter().fromBattery().valueAt(kMinute + kHour), 0.0);
    EXPECT_DOUBLE_EQ(h.cluster.perfTimeline().valueAt(5 * kHour - kSecond),
                     1.0);
}

TEST(ThrottleThenSave, OutageEndingInServeWindowJustUnthrottles)
{
    TechniqueHarness h(std::make_unique<ThrottleThenSave>(
        6, 0, ThrottleThenSave::SaveMode::Sleep, kHour));
    h.runOutage(kMinute, 10 * kMinute, 2 * kHour);
    // The save never engaged; no downtime at all.
    EXPECT_DOUBLE_EQ(
        h.cluster.availabilityTimeline().average(0, 2 * kHour), 1.0);
    EXPECT_DOUBLE_EQ(h.cluster.perfTimeline().valueAt(2 * kHour - kSecond),
                     1.0);
    for (int i = 0; i < h.cluster.size(); ++i)
        EXPECT_EQ(h.cluster.server(i).pstate(), 0);
}

TEST(ThrottleThenSave, SaveTimeStretchesWithThrottle)
{
    TechniqueHarness shallow(std::make_unique<ThrottleThenSave>(
        0, 0, ThrottleThenSave::SaveMode::Hibernate, 0));
    TechniqueHarness deep(std::make_unique<ThrottleThenSave>(
        6, 7, ThrottleThenSave::SaveMode::Hibernate, 0));
    auto *t_shallow =
        static_cast<ThrottleThenSave *>(shallow.technique.get());
    auto *t_deep = static_cast<ThrottleThenSave *>(deep.technique.get());
    EXPECT_GT(t_deep->saveTime(deep.cluster),
              2 * t_shallow->saveTime(shallow.cluster));
}

TEST(ThrottleThenSave, LongerServeWindowUsesMoreEnergy)
{
    double kwh[2];
    int i = 0;
    for (Time serve : {10 * kMinute, 40 * kMinute}) {
        TechniqueHarness h(std::make_unique<ThrottleThenSave>(
            6, 0, ThrottleThenSave::SaveMode::Sleep, serve));
        h.runOutage(kMinute, kHour, 3 * kHour);
        kwh[i++] = joulesToKwh(
            h.hierarchy.meter().batteryEnergyJ(0, 3 * kHour));
    }
    EXPECT_GT(kwh[1], kwh[0]);
}

TEST(ThrottleThenSave, TwoHourOutageSustainedOnTinyBattery)
{
    // The paper's headline: Throttle+Sleep-L handles 2-hour outages at
    // ~20 % of MaxPerf cost. With a 4-server rack, a half-power UPS
    // with modest runtime must survive serve-10-min-then-sleep.
    PowerHierarchy::Config small;
    small.hasDg = false;
    small.hasUps = true;
    small.ups.powerCapacityW = 4 * 130.0;
    small.ups.runtimeAtRatedSec = 14 * 60.0;
    TechniqueHarness h(std::make_unique<ThrottleThenSave>(
                           5, 0, ThrottleThenSave::SaveMode::Sleep,
                           10 * kMinute),
                       specJbbProfile(), 4, small);
    h.runOutage(kMinute, 2 * kHour, 5 * kHour);
    EXPECT_EQ(h.hierarchy.powerLossCount(), 0);
    EXPECT_DOUBLE_EQ(h.cluster.perfTimeline().valueAt(5 * kHour - kSecond),
                     1.0);
}

TEST(ThrottleThenSave, NameEncodesParameters)
{
    ThrottleThenSave t(5, 0, ThrottleThenSave::SaveMode::Sleep,
                       30 * kMinute);
    EXPECT_EQ(t.name(), "Throttle+Sleep-L(p5,t0,serve=30.0min)");
    EXPECT_EQ(t.family(), TechniqueFamily::Hybrid);
}

} // namespace
} // namespace bpsim
