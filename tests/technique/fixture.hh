/**
 * @file
 * Shared harness for technique tests: a cluster behind a configurable
 * UPS, one technique attached, one scheduled outage.
 */

#ifndef BPSIM_TESTS_TECHNIQUE_FIXTURE_HH
#define BPSIM_TESTS_TECHNIQUE_FIXTURE_HH

#include <memory>
#include <optional>

#include "technique/catalog.hh"
#include "workload/cluster.hh"

namespace bpsim
{

struct TechniqueHarness
{
    /** Generous UPS so technique behaviour is observed un-clipped. */
    static PowerHierarchy::Config
    bigUps(int n_servers)
    {
        PowerHierarchy::Config c;
        c.hasDg = false;
        c.hasUps = true;
        c.ups.powerCapacityW = n_servers * 250.0 * 1.01;
        c.ups.runtimeAtRatedSec = 24.0 * 3600.0;
        return c;
    }

    TechniqueHarness(std::unique_ptr<Technique> t,
                     const WorkloadProfile &w = specJbbProfile(),
                     int n_servers = 4,
                     std::optional<PowerHierarchy::Config> cfg = {})
        : utility(sim),
          hierarchy(sim, utility, cfg ? *cfg : bigUps(n_servers)),
          cluster(sim, hierarchy, ServerModel{}, w, n_servers),
          technique(std::move(t))
    {
        technique->attach(sim, cluster, hierarchy);
        cluster.primeSteadyState();
    }

    /** Schedule the outage and run to `until`. */
    void
    runOutage(Time start, Time duration, Time until)
    {
        utility.scheduleOutage(start, duration);
        sim.runUntil(until);
    }

    Simulator sim;
    Utility utility;
    PowerHierarchy hierarchy;
    Cluster cluster;
    std::unique_ptr<Technique> technique;
};

} // namespace bpsim

#endif // BPSIM_TESTS_TECHNIQUE_FIXTURE_HH
