/**
 * @file
 * Tests for the predictor-driven AdaptiveTechnique (Section 7's
 * unknown-duration challenge).
 */

#include <gtest/gtest.h>

#include "fixture.hh"
#include "technique/adaptive.hh"

namespace bpsim
{
namespace
{

std::unique_ptr<AdaptiveTechnique>
adaptive(double risk)
{
    return std::make_unique<AdaptiveTechnique>(
        OutagePredictor(OutageDurationDistribution::figure1()), risk);
}

PowerHierarchy::Config
tenMinuteUps(int n = 4)
{
    PowerHierarchy::Config c;
    c.hasDg = false;
    c.hasUps = true;
    c.ups.powerCapacityW = n * 250.0;
    c.ups.runtimeAtRatedSec = 10.0 * 60.0;
    return c;
}

TEST(Adaptive, NeverCrashesRegardlessOfDuration)
{
    for (double minutes : {0.5, 2.0, 10.0, 45.0, 180.0}) {
        TechniqueHarness h(adaptive(0.4), specJbbProfile(), 4,
                           tenMinuteUps());
        h.runOutage(kMinute, fromMinutes(minutes),
                    fromMinutes(minutes) + 3 * kHour);
        EXPECT_EQ(h.hierarchy.powerLossCount(), 0)
            << minutes << " minutes";
        EXPECT_DOUBLE_EQ(h.cluster.perfTimeline().lastValue(), 1.0)
            << minutes << " minutes";
        for (int i = 0; i < h.cluster.size(); ++i)
            EXPECT_EQ(h.cluster.app(i).stateLosses(), 0);
    }
}

TEST(Adaptive, ServesShortOutagesAtHighPerf)
{
    TechniqueHarness h(adaptive(0.45), specJbbProfile(), 4,
                       tenMinuteUps());
    h.runOutage(kMinute, 30 * kSecond, kHour);
    // The first poll happens at outage start; a 10-minute runway at
    // full power is within a 0.45 risk (42 % of outages outlast
    // 10 min), so it serves at full speed throughout.
    EXPECT_GT(h.cluster.perfTimeline().average(kMinute,
                                               kMinute + 30 * kSecond),
              0.9);
}

TEST(Adaptive, ConservativePolicySleepsEarly)
{
    TechniqueHarness h(adaptive(0.05), specJbbProfile(), 4,
                       tenMinuteUps());
    h.runOutage(kMinute, 30 * kMinute, 2 * kHour);
    auto *tech = static_cast<AdaptiveTechnique *>(h.technique.get());
    EXPECT_TRUE(tech->suspended());
    // Asleep within the first minute of the outage.
    EXPECT_DOUBLE_EQ(
        h.cluster.perfTimeline().valueAt(kMinute + 2 * kMinute), 0.0);
}

TEST(Adaptive, EscalatesAsTheOutageDrags)
{
    TechniqueHarness h(adaptive(0.42), specJbbProfile(), 4,
                       tenMinuteUps());
    h.runOutage(kMinute, kHour, 3 * kHour);
    auto *tech = static_cast<AdaptiveTechnique *>(h.technique.get());
    // Served at some level first, then escalated and finally slept.
    EXPECT_TRUE(tech->suspended());
    const auto &perf = h.cluster.perfTimeline();
    EXPECT_GT(perf.valueAt(kMinute + 10 * kSecond), 0.5);
    EXPECT_DOUBLE_EQ(perf.valueAt(kMinute + 30 * kMinute), 0.0);
}

TEST(Adaptive, BiggerBatteryServesLonger)
{
    auto big = tenMinuteUps();
    big.ups.runtimeAtRatedSec = 60.0 * 60.0;
    TechniqueHarness small(adaptive(0.3), specJbbProfile(), 4,
                           tenMinuteUps());
    TechniqueHarness large(adaptive(0.3), specJbbProfile(), 4, big);
    small.runOutage(kMinute, kHour, 3 * kHour);
    large.runOutage(kMinute, kHour, 3 * kHour);
    const double perf_small = small.cluster.perfTimeline().average(
        kMinute, kMinute + kHour);
    const double perf_large = large.cluster.perfTimeline().average(
        kMinute, kMinute + kHour);
    EXPECT_GT(perf_large, perf_small);
}

TEST(Adaptive, FullDgEndsTheEmergency)
{
    PowerHierarchy::Config cfg = tenMinuteUps();
    cfg.hasDg = true;
    cfg.dg.powerCapacityW = 4 * 250.0;
    TechniqueHarness h(adaptive(0.3), specJbbProfile(), 4, cfg);
    h.runOutage(kMinute, kHour, 3 * kHour);
    EXPECT_EQ(h.hierarchy.powerLossCount(), 0);
    // Once the DG carries (within ~2.5 min), service returns to full
    // speed for the rest of the outage.
    EXPECT_DOUBLE_EQ(h.cluster.perfTimeline().valueAt(kMinute + kHour / 2),
                     1.0);
}

TEST(Adaptive, RecoversFromMidSuspendRestore)
{
    // Utility returns while the cluster is suspending.
    TechniqueHarness h(adaptive(0.01), specJbbProfile(), 4,
                       tenMinuteUps());
    h.runOutage(kMinute, 3 * kSecond, kHour);
    EXPECT_DOUBLE_EQ(h.cluster.perfTimeline().valueAt(kHour - kSecond),
                     1.0);
}

TEST(Adaptive, NameEncodesRisk)
{
    auto t = adaptive(0.25);
    EXPECT_EQ(t->name(), "Adaptive(risk=0.25)");
    EXPECT_EQ(t->family(), TechniqueFamily::Hybrid);
}

TEST(Adaptive, CatalogRoundTrip)
{
    TechniqueSpec spec;
    spec.kind = TechniqueKind::Adaptive;
    spec.risk = 0.5;
    auto t = makeTechnique(spec);
    EXPECT_EQ(t->name(), "Adaptive(risk=0.50)");
    EXPECT_EQ(spec.label(), "Adaptive(risk=0.50)");
}

} // namespace
} // namespace bpsim
