/**
 * @file
 * Tests for the Throttling technique.
 */

#include <gtest/gtest.h>

#include "fixture.hh"
#include "technique/throttling.hh"

namespace bpsim
{
namespace
{

TEST(Throttling, EngagesAtOutageAndReleasesAtRestore)
{
    TechniqueHarness h(std::make_unique<Throttling>(6, 0));
    h.runOutage(kMinute, 10 * kMinute, kHour);
    const auto &perf = h.cluster.perfTimeline();
    // Before: full; during: throttled; after: full again.
    EXPECT_DOUBLE_EQ(perf.valueAt(30 * kSecond), 1.0);
    const double during = perf.valueAt(5 * kMinute);
    const double expected =
        specJbbProfile().throttledPerf(ServerModel{}, 6, 0);
    EXPECT_NEAR(during, expected, 1e-9);
    EXPECT_DOUBLE_EQ(perf.valueAt(30 * kMinute), 1.0);
}

TEST(Throttling, ReducesBackupPowerDraw)
{
    TechniqueHarness h(std::make_unique<Throttling>(6, 0));
    h.runOutage(kMinute, 10 * kMinute, kHour);
    const Watts peak_batt =
        h.hierarchy.meter().fromBattery().maxOver(0, kHour);
    // Four servers at the deepest DVFS state: ~106 W each.
    EXPECT_LT(peak_batt, 4 * 120.0);
    EXPECT_GT(peak_batt, 4 * 90.0);
}

TEST(Throttling, DeeperPStateDrawsLess)
{
    Watts draw[2];
    int idx = 0;
    for (int p : {2, 6}) {
        TechniqueHarness h(std::make_unique<Throttling>(p, 0));
        h.runOutage(kMinute, 10 * kMinute, kHour);
        draw[idx++] = h.hierarchy.meter().fromBattery().maxOver(0, kHour);
    }
    EXPECT_GT(draw[0], draw[1]);
}

TEST(Throttling, TStatesCutFurther)
{
    TechniqueHarness h(std::make_unique<Throttling>(6, 7));
    h.runOutage(kMinute, 10 * kMinute, kHour);
    const Watts peak_batt =
        h.hierarchy.meter().fromBattery().maxOver(kMinute + kSecond,
                                                  11 * kMinute);
    // Deep clock modulation: just above idle (4 x ~83 W).
    EXPECT_LT(peak_batt, 4 * 90.0);
    // But availability is never lost.
    EXPECT_DOUBLE_EQ(
        h.cluster.availabilityTimeline().average(0, kHour), 1.0);
}

TEST(Throttling, NoDowntimeWithSufficientBattery)
{
    TechniqueHarness h(std::make_unique<Throttling>(6, 0));
    h.runOutage(kMinute, 10 * kMinute, kHour);
    EXPECT_EQ(h.hierarchy.powerLossCount(), 0);
    EXPECT_DOUBLE_EQ(
        h.cluster.availabilityTimeline().average(0, kHour), 1.0);
}

TEST(Throttling, TakeEffectIsMicroseconds)
{
    TechniqueHarness h(std::make_unique<Throttling>(6, 0));
    EXPECT_LT(h.technique->takeEffectTime(h.cluster), kMillisecond);
}

TEST(Throttling, ExtendsBatteryLifePeukertStyle)
{
    // With a small UPS (full-load runtime 2 min), throttling must
    // stretch the ride-through far beyond 2 minutes.
    PowerHierarchy::Config small;
    small.hasDg = false;
    small.hasUps = true;
    small.ups.powerCapacityW = 4 * 250.0;
    small.ups.runtimeAtRatedSec = 120.0;

    TechniqueHarness unthrottled(std::make_unique<NoTechnique>(),
                                 specJbbProfile(), 4, small);
    unthrottled.runOutage(kMinute, 10 * kMinute, kHour);
    EXPECT_EQ(unthrottled.hierarchy.powerLossCount(), 1);

    TechniqueHarness throttled(std::make_unique<Throttling>(6, 0),
                               specJbbProfile(), 4, small);
    throttled.runOutage(kMinute, 5 * kMinute, kHour);
    EXPECT_EQ(throttled.hierarchy.powerLossCount(), 0);
}

TEST(Throttling, FamilyAndName)
{
    Throttling t(3, 1);
    EXPECT_EQ(t.family(), TechniqueFamily::SustainExecution);
    EXPECT_EQ(t.name(), "Throttling(p3,t1)");
}

TEST(Throttling, MemcachedKeepsMostPerfUnderThrottle)
{
    // The Section 6.2 contrast: at the deepest P-state Memcached
    // retains most of its throughput, Specjbb does not.
    TechniqueHarness mc(std::make_unique<Throttling>(6, 0),
                        memcachedProfile());
    mc.runOutage(kMinute, 10 * kMinute, kHour);
    TechniqueHarness jbb(std::make_unique<Throttling>(6, 0),
                         specJbbProfile());
    jbb.runOutage(kMinute, 10 * kMinute, kHour);
    const double mc_perf =
        mc.cluster.perfTimeline().valueAt(5 * kMinute);
    const double jbb_perf =
        jbb.cluster.perfTimeline().valueAt(5 * kMinute);
    EXPECT_GT(mc_perf, jbb_perf + 0.2);
}

} // namespace
} // namespace bpsim
