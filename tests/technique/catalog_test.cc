/**
 * @file
 * Tests for the technique catalog: factory round-trips, candidate
 * generation and the Table 5 reproduction.
 */

#include <gtest/gtest.h>

#include "fixture.hh"
#include "technique/catalog.hh"

namespace bpsim
{
namespace
{

const ServerModel kModel{};

TEST(Catalog, FactoryProducesMatchingNames)
{
    EXPECT_EQ(makeTechnique({TechniqueKind::None})->name(), "none");
    EXPECT_EQ(makeTechnique({TechniqueKind::Throttle, 3, 1})->name(),
              "Throttling(p3,t1)");
    TechniqueSpec s;
    s.kind = TechniqueKind::Sleep;
    s.lowPower = true;
    EXPECT_EQ(makeTechnique(s)->name(), "Sleep-L");
    s.kind = TechniqueKind::ProactiveHibernate;
    s.lowPower = false;
    EXPECT_EQ(makeTechnique(s)->name(), "ProactiveHibernate");
    EXPECT_EQ(makeTechnique({TechniqueKind::Migration})->name(),
              "Migration");
    EXPECT_EQ(makeTechnique({TechniqueKind::MigrationSleep})->name(),
              "Migration+Sleep-L");
}

TEST(Catalog, SpecLabelsAreStable)
{
    TechniqueSpec s;
    s.kind = TechniqueKind::ThrottleSleep;
    s.pstate = 5;
    s.serveFor = 30 * kMinute;
    s.lowPower = true;
    EXPECT_EQ(s.label(), "Throttle+Sleep-L(p5,t0,serve=30.0min)");
}

TEST(Catalog, BasicCandidatesCoverTable4)
{
    const auto cands = basicCandidates(kModel);
    int throttles = 0, sleeps = 0, hibernates = 0, migrations = 0;
    for (const auto &c : cands) {
        switch (c.kind) {
          case TechniqueKind::Throttle:
            ++throttles;
            break;
          case TechniqueKind::Sleep:
            ++sleeps;
            break;
          case TechniqueKind::Hibernate:
          case TechniqueKind::ProactiveHibernate:
            ++hibernates;
            break;
          case TechniqueKind::Migration:
          case TechniqueKind::ProactiveMigration:
          case TechniqueKind::MigrationSleep:
            ++migrations;
            break;
          default:
            break;
        }
    }
    EXPECT_GE(throttles, kModel.params().pStates); // full DVFS sweep
    EXPECT_EQ(sleeps, 2);                          // Sleep, Sleep-L
    EXPECT_EQ(hibernates, 4);
    EXPECT_GE(migrations, 4);
}

TEST(Catalog, HybridCandidatesScaleWithDuration)
{
    const auto cands = hybridCandidates(kModel, kHour);
    EXPECT_EQ(cands.size(), 16u); // 2 pstates x 4 fractions x 2 modes
    for (const auto &c : cands) {
        EXPECT_TRUE(c.kind == TechniqueKind::ThrottleSleep ||
                    c.kind == TechniqueKind::ThrottleHibernate);
        EXPECT_GT(c.serveFor, 0);
        EXPECT_LE(c.serveFor, kHour);
    }
}

TEST(Catalog, AllCandidatesIsUnionAndInstantiable)
{
    const auto cands = allCandidates(kModel, 30 * kMinute);
    EXPECT_EQ(cands.size(),
              basicCandidates(kModel).size() +
                  hybridCandidates(kModel, 30 * kMinute).size());
    for (const auto &c : cands) {
        auto t = makeTechnique(c);
        ASSERT_NE(t, nullptr);
        EXPECT_FALSE(t->name().empty());
    }
}

TEST(Catalog, Table5RowsAndOrdering)
{
    TechniqueHarness h(std::make_unique<NoTechnique>());
    const auto rows = table5(h.cluster);
    ASSERT_EQ(rows.size(), 6u);
    EXPECT_EQ(rows[0].technique, "Throttling");
    EXPECT_EQ(rows[5].technique, "Proactive Hibernation");

    // Table 5 magnitudes: throttling in microseconds, migration in
    // minutes, proactive migration faster than migration, sleep ~10 s,
    // hibernation minutes.
    EXPECT_LT(rows[0].timeToTakeEffect, kMillisecond);
    EXPECT_GT(rows[1].timeToTakeEffect, 2 * kMinute);
    EXPECT_LT(rows[2].timeToTakeEffect, rows[1].timeToTakeEffect);
    EXPECT_LE(rows[3].timeToTakeEffect, 10 * kSecond);
    EXPECT_GT(rows[4].timeToTakeEffect, kMinute);
    EXPECT_LT(rows[5].timeToTakeEffect, rows[4].timeToTakeEffect);
}

TEST(Catalog, PstateForPowerFractionHitsHalfPeak)
{
    const int p = pstateForPowerFraction(kModel, 0.5);
    const Watts w = kModel.activePowerW(p, 0, 1.0);
    EXPECT_NEAR(w / kModel.params().peakPowerW, 0.5, 0.06);
}

TEST(Catalog, SaveSlowdownCalibration)
{
    // Table 8 anchors: Sleep-L 6 s -> 8 s; Hibernate-L 230 s -> 385 s,
    // both at the half-power P-state.
    const int p = pstateForPowerFraction(kModel, 0.5);
    const double sleep_slow =
        saveSlowdownAtThrottle(kModel, p, 0, kSleepSaveCpuWeight);
    EXPECT_NEAR(6.0 * sleep_slow, 8.0, 0.6);
    const double hib_slow =
        saveSlowdownAtThrottle(kModel, p, 0, kHibernateSaveCpuWeight);
    EXPECT_NEAR(230.0 * hib_slow, 385.0, 30.0);
}

TEST(Catalog, AttachingTwicePanics)
{
    TechniqueHarness h(std::make_unique<NoTechnique>());
    EXPECT_DEATH(
        h.technique->attach(h.sim, h.cluster, h.hierarchy),
        "attached twice");
}

} // namespace
} // namespace bpsim
