/**
 * @file
 * Tests for the geo-failover technique (Section 7: request redirection
 * to geo-replicated datacenters for very long outages).
 */

#include <gtest/gtest.h>

#include "fixture.hh"
#include "technique/geo_failover.hh"

namespace bpsim
{
namespace
{

GeoFailover::Params
defaults()
{
    return GeoFailover::Params{};
}

TEST(GeoFailover, RedirectsAndShutsDownLocally)
{
    TechniqueHarness h(std::make_unique<GeoFailover>(defaults()));
    h.runOutage(kMinute, 4 * kHour, 8 * kHour);
    EXPECT_EQ(h.hierarchy.powerLossCount(), 0);
    // Mid-outage: remote serving at 0.7, all local machines off.
    EXPECT_NEAR(h.cluster.perfTimeline().valueAt(2 * kHour), 0.7, 1e-9);
    EXPECT_DOUBLE_EQ(
        h.hierarchy.meter().fromBattery().valueAt(2 * kHour), 0.0);
}

TEST(GeoFailover, BatteryOnlyBridgesTheDrainWindow)
{
    TechniqueHarness h(std::make_unique<GeoFailover>(defaults()));
    h.runOutage(kMinute, 4 * kHour, 8 * kHour);
    const double kwh = joulesToKwh(
        h.hierarchy.meter().batteryEnergyJ(0, 8 * kHour));
    // ~60 s at 1 kW = 1/60 kWh: tiny.
    EXPECT_LT(kwh, 0.05);
}

TEST(GeoFailover, TrafficComesHomeAfterRestore)
{
    TechniqueHarness h(std::make_unique<GeoFailover>(defaults()));
    h.runOutage(kMinute, 4 * kHour, 9 * kHour);
    EXPECT_DOUBLE_EQ(h.cluster.perfTimeline().valueAt(9 * kHour - kSecond),
                     1.0);
    for (int i = 0; i < h.cluster.size(); ++i) {
        EXPECT_FALSE(h.cluster.app(i).remoteService());
        EXPECT_EQ(h.cluster.server(i).state(), ServerState::Active);
    }
}

TEST(GeoFailover, NoServiceGapDuringHomecoming)
{
    TechniqueHarness h(std::make_unique<GeoFailover>(defaults()));
    h.runOutage(kMinute, 4 * kHour, 9 * kHour);
    // The remote site keeps serving until the local fleet is warm:
    // perf never drops to zero after the redirect completes.
    const double floor = h.cluster.perfTimeline().minOver(
        kMinute + 2 * kMinute, 9 * kHour);
    EXPECT_GE(floor, 0.69);
}

TEST(GeoFailover, DowntimeOnlyDuringDrainForThroughputMetrics)
{
    TechniqueHarness h(std::make_unique<GeoFailover>(defaults()),
                       memcachedProfile());
    h.runOutage(kMinute, 4 * kHour, 9 * kHour);
    const Time down = h.cluster.availabilityTimeline().timeBelow(
        kMinute, 9 * kHour, 0.5);
    // Remote serving at 0.7 counts as up for a throughput metric;
    // only local restart gaps could register, and the remote covers
    // them. Expect essentially zero.
    EXPECT_LT(toSeconds(down), 5.0);
}

TEST(GeoFailover, SurvivesPowerLossDuringDrain)
{
    // Tiny UPS dies before the 60 s drain finishes: the redirect still
    // happens (crash-stop instead of graceful drain).
    PowerHierarchy::Config tiny;
    tiny.hasDg = false;
    tiny.hasUps = true;
    tiny.ups.powerCapacityW = 4 * 250.0 * 1.01;
    tiny.ups.runtimeAtRatedSec = 20.0;
    TechniqueHarness h(std::make_unique<GeoFailover>(defaults()),
                       specJbbProfile(), 4, tiny);
    h.runOutage(kMinute, 2 * kHour, 6 * kHour);
    EXPECT_GE(h.hierarchy.powerLossCount(), 1);
    EXPECT_NEAR(h.cluster.perfTimeline().valueAt(kHour), 0.7, 1e-9);
    // And everything comes home eventually.
    EXPECT_DOUBLE_EQ(h.cluster.perfTimeline().valueAt(6 * kHour - kSecond),
                     1.0);
}

TEST(GeoFailover, ThrottledDrainReducesPeak)
{
    GeoFailover::Params p;
    p.drainPState = 5;
    TechniqueHarness h(std::make_unique<GeoFailover>(p));
    h.runOutage(kMinute, 2 * kHour, 6 * kHour);
    const Watts peak = h.hierarchy.meter().fromBattery().maxOver(
        kMinute, kMinute + 2 * kMinute);
    EXPECT_LT(peak, 4 * 130.0);
}

TEST(GeoFailover, ShortOutageNeverRedirects)
{
    TechniqueHarness h(std::make_unique<GeoFailover>(defaults()));
    h.runOutage(kMinute, 30 * kSecond, kHour);
    // The outage ended inside the drain window: no redirect happened,
    // no shutdown, full local service.
    EXPECT_DOUBLE_EQ(
        h.cluster.availabilityTimeline().average(0, kHour), 1.0);
    for (int i = 0; i < h.cluster.size(); ++i)
        EXPECT_FALSE(h.cluster.app(i).remoteService());
}

TEST(GeoFailover, NameAndFamily)
{
    GeoFailover g(defaults());
    EXPECT_EQ(g.name(), "GeoFailover(remote=0.70)");
    EXPECT_EQ(g.family(), TechniqueFamily::SustainExecution);
}

} // namespace
} // namespace bpsim
