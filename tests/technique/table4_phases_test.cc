/**
 * @file
 * Table 4 reproduction as tests: the performance/availability
 * behaviour of every technique across the paper's four operational
 * phases — normal operation, start of outage, during the outage, and
 * after restoration.
 */

#include <gtest/gtest.h>

#include "fixture.hh"

namespace bpsim
{
namespace
{

struct PhaseProbe
{
    double normal;   // before the outage
    double start;    // shortly after the outage begins
    double during;   // deep in the outage
    double restored; // well after restoration
};

PhaseProbe
probe(const TechniqueSpec &spec, Time outage = 30 * kMinute)
{
    TechniqueHarness h(makeTechnique(spec));
    const Time t0 = 5 * kMinute;
    h.utility.scheduleOutage(t0, outage);
    h.sim.runUntil(t0 + outage + 2 * kHour);
    const auto &perf = h.cluster.perfTimeline();
    PhaseProbe p;
    p.normal = perf.valueAt(t0 - kMinute);
    p.start = perf.valueAt(t0 + 30 * kSecond);
    p.during = perf.valueAt(t0 + outage / 2);
    p.restored = perf.valueAt(t0 + outage + 2 * kHour - kMinute);
    return p;
}

TEST(Table4, MaxPerfFullServiceEverywhere)
{
    // With no technique and a generous UPS the cluster never blinks.
    const auto p = probe({TechniqueKind::None});
    EXPECT_DOUBLE_EQ(p.normal, 1.0);
    EXPECT_DOUBLE_EQ(p.start, 1.0);
    EXPECT_DOUBLE_EQ(p.during, 1.0);
    EXPECT_DOUBLE_EQ(p.restored, 1.0);
}

TEST(Table4, ThrottlingRow)
{
    // Full service -> throttled perf -> throttled perf -> full again.
    const auto p = probe({TechniqueKind::Throttle, 6, 0, 0, false});
    const double expected =
        specJbbProfile().throttledPerf(ServerModel{}, 6, 0);
    EXPECT_DOUBLE_EQ(p.normal, 1.0);
    EXPECT_NEAR(p.start, expected, 1e-9);
    EXPECT_NEAR(p.during, expected, 1e-9);
    EXPECT_DOUBLE_EQ(p.restored, 1.0);
}

TEST(Table4, MigrationRow)
{
    // Full -> migrate (degraded) -> consolidated service -> full.
    const auto p = probe({TechniqueKind::Migration, 0, 0, 0, false},
                         kHour);
    EXPECT_DOUBLE_EQ(p.normal, 1.0);
    EXPECT_NEAR(p.start, 0.95, 1e-9); // half migrating at 0.9
    EXPECT_NEAR(p.during, 0.5, 0.05); // consolidated
    EXPECT_DOUBLE_EQ(p.restored, 1.0);
}

TEST(Table4, SleepRow)
{
    // Full -> suspending -> no service -> resume from memory.
    const auto p = probe({TechniqueKind::Sleep, 0, 0, 0, false});
    EXPECT_DOUBLE_EQ(p.normal, 1.0);
    EXPECT_DOUBLE_EQ(p.start, 0.0);
    EXPECT_DOUBLE_EQ(p.during, 0.0);
    EXPECT_DOUBLE_EQ(p.restored, 1.0);
}

TEST(Table4, HibernationRow)
{
    // Full -> persisting -> no service -> resume from disk.
    const auto p = probe({TechniqueKind::Hibernate, 0, 0, 0, false});
    EXPECT_DOUBLE_EQ(p.normal, 1.0);
    EXPECT_DOUBLE_EQ(p.start, 0.0); // saving: paused
    EXPECT_DOUBLE_EQ(p.during, 0.0);
    EXPECT_DOUBLE_EQ(p.restored, 1.0);
}

TEST(Table4, ProactiveVariantsBehaveLikeBaseDuringOutage)
{
    // Proactive flushing happens in *normal* operation; the outage
    // phases look like the base technique, only faster.
    const auto ph =
        probe({TechniqueKind::ProactiveHibernate, 0, 0, 0, false});
    EXPECT_DOUBLE_EQ(ph.normal, 1.0);
    EXPECT_DOUBLE_EQ(ph.during, 0.0);
    EXPECT_DOUBLE_EQ(ph.restored, 1.0);

    const auto pm =
        probe({TechniqueKind::ProactiveMigration, 0, 0, 0, false}, kHour);
    EXPECT_DOUBLE_EQ(pm.normal, 1.0);
    EXPECT_NEAR(pm.during, 0.5, 0.05);
    EXPECT_DOUBLE_EQ(pm.restored, 1.0);
}

TEST(Table4, MinCostRow)
{
    // Crash at outage start; restart after restoration.
    PowerHierarchy::Config bare;
    bare.hasDg = false;
    bare.hasUps = false;
    TechniqueHarness h(makeTechnique({TechniqueKind::None}),
                       specJbbProfile(), 4, bare);
    const Time t0 = 5 * kMinute;
    h.utility.scheduleOutage(t0, 30 * kMinute);
    h.sim.runUntil(t0 + 30 * kMinute + 2 * kHour);
    const auto &perf = h.cluster.perfTimeline();
    EXPECT_DOUBLE_EQ(perf.valueAt(t0 - kMinute), 1.0);
    EXPECT_DOUBLE_EQ(perf.valueAt(t0 + kMinute), 0.0);
    EXPECT_DOUBLE_EQ(perf.valueAt(t0 + 15 * kMinute), 0.0);
    EXPECT_DOUBLE_EQ(
        perf.valueAt(t0 + 30 * kMinute + 2 * kHour - kMinute), 1.0);
}

TEST(Table4, HybridRow)
{
    // Throttled service for the serve window, then dark, then full.
    const auto p = probe(
        {TechniqueKind::ThrottleSleep, 5, 0, 10 * kMinute, true});
    const double throttled =
        specJbbProfile().throttledPerf(ServerModel{}, 5, 0);
    EXPECT_NEAR(p.start, throttled, 1e-9);
    EXPECT_DOUBLE_EQ(p.during, 0.0); // past the 10-minute window
    EXPECT_DOUBLE_EQ(p.restored, 1.0);
}

} // namespace
} // namespace bpsim
