/**
 * @file
 * Tests for the cost model against the paper's Tables 1-3.
 */

#include <gtest/gtest.h>

#include "core/cost_model.hh"

namespace bpsim
{
namespace
{

TEST(CostModel, Table1Defaults)
{
    CostModel m;
    EXPECT_DOUBLE_EQ(m.params().dgPowerCostPerKwYr, 83.3);
    EXPECT_DOUBLE_EQ(m.params().upsPowerCostPerKwYr, 50.0);
    EXPECT_DOUBLE_EQ(m.params().upsEnergyCostPerKwhYr, 50.0);
    EXPECT_DOUBLE_EQ(m.params().freeRunTimeSec, 120.0);
}

TEST(CostModel, Table2OneMegawattRow)
{
    // 1 MW, 2-min UPS: DG 0.08 M$, UPS 0.05 M$, total 0.13 M$.
    CostModel m;
    EXPECT_NEAR(m.dgCostPerYr(1000.0), 0.083e6, 0.5e3);
    EXPECT_NEAR(m.upsCostPerYr(1000.0, 120.0), 0.05e6, 1.0);
    BackupCapacity cap{1000.0, 1000.0, 120.0};
    EXPECT_NEAR(m.totalCostPerYr(cap), 0.133e6, 0.5e3);
}

TEST(CostModel, Table2TenMegawattRows)
{
    CostModel m;
    // 10 MW, 2 min: 0.83 + 0.5 = 1.33 M$.
    BackupCapacity base{10000.0, 10000.0, 120.0};
    EXPECT_NEAR(m.totalCostPerYr(base), 1.333e6, 5e3);
    // 10 MW, 42 min: UPS rises to ~0.83 M$, total ~1.66 M$.
    BackupCapacity large{10000.0, 10000.0, 42.0 * 60.0};
    EXPECT_NEAR(m.upsCostPerYr(10000.0, 42.0 * 60.0), 0.833e6, 5e3);
    EXPECT_NEAR(m.totalCostPerYr(large), 1.666e6, 8e3);
}

TEST(CostModel, TwentyFoldEnergyIsOnlyQuarterCost)
{
    // Table 2 observation (ii): a 20x increase in UPS energy (2 min ->
    // ~42 min) raises the total by only ~24 %.
    CostModel m;
    const double base =
        m.totalCostPerYr(BackupCapacity{10000.0, 10000.0, 120.0});
    const double large =
        m.totalCostPerYr(BackupCapacity{10000.0, 10000.0, 2520.0});
    EXPECT_NEAR(large / base, 1.24, 0.02);
}

TEST(CostModel, UpsBeatsDgBelowFortyTwoMinutes)
{
    // Table 2 observation (iii) / the "40 minutes" headline: UPS
    // energy for t minutes costs less than a DG as long as
    // 50 + 50*(t - 2)/60 < 83.3  =>  t < 42 min.
    CostModel m;
    const double dg = m.dgCostPerYr(1.0);
    EXPECT_LT(m.upsCostPerYr(1.0, 40.0 * 60.0), dg);
    EXPECT_LT(m.upsCostPerYr(1.0, 41.9 * 60.0), dg);
    EXPECT_GT(m.upsCostPerYr(1.0, 42.1 * 60.0), dg);
}

TEST(CostModel, FreeRuntimeCostsNothingExtra)
{
    CostModel m;
    EXPECT_DOUBLE_EQ(m.upsCostPerYr(100.0, 0.0),
                     m.upsCostPerYr(100.0, 120.0));
    EXPECT_GT(m.upsCostPerYr(100.0, 121.0), m.upsCostPerYr(100.0, 120.0));
}

TEST(CostModel, ZeroCapacityCostsNothing)
{
    CostModel m;
    EXPECT_DOUBLE_EQ(m.dgCostPerYr(0.0), 0.0);
    EXPECT_DOUBLE_EQ(m.upsCostPerYr(0.0, 3600.0), 0.0);
    EXPECT_DOUBLE_EQ(m.totalCostPerYr(BackupCapacity{}), 0.0);
}

TEST(CostModel, MaxPerfBaseline)
{
    CostModel m;
    // 83.3 + 50 = 133.3 $/kW/yr.
    EXPECT_NEAR(m.maxPerfCostPerYr(1.0), 133.3, 1e-9);
}

TEST(CostModel, NormalizedCostOfMaxPerfIsOne)
{
    CostModel m;
    BackupCapacity cap{500.0, 500.0, 120.0};
    EXPECT_NEAR(m.normalizedCost(cap, 500.0), 1.0, 1e-12);
}

TEST(CostModel, CostMonotoneInEveryCapacity)
{
    CostModel m;
    BackupCapacity cap{100.0, 100.0, 600.0};
    const double base = m.totalCostPerYr(cap);
    BackupCapacity more_dg = cap;
    more_dg.dgKw += 10.0;
    BackupCapacity more_ups = cap;
    more_ups.upsKw += 10.0;
    BackupCapacity more_energy = cap;
    more_energy.upsRuntimeSec += 60.0;
    EXPECT_GT(m.totalCostPerYr(more_dg), base);
    EXPECT_GT(m.totalCostPerYr(more_ups), base);
    EXPECT_GT(m.totalCostPerYr(more_energy), base);
}

TEST(CostModel, EnergyKwhConvention)
{
    BackupCapacity cap{0.0, 10000.0, 42.0 * 60.0};
    // Table 2: 10 MW for 42 min = 7000 kWh.
    EXPECT_NEAR(cap.upsEnergyKwh(), 7000.0, 1e-9);
}

TEST(CostModel, RejectsNegativeInputs)
{
    CostModel m;
    EXPECT_DEATH(m.dgCostPerYr(-1.0), "negative");
    EXPECT_DEATH(m.upsCostPerYr(1.0, -5.0), "negative");
}

} // namespace
} // namespace bpsim
