/**
 * @file
 * Tests for the annual (multi-outage) availability simulator.
 */

#include <gtest/gtest.h>

#include "core/annual.hh"

namespace bpsim
{
namespace
{

constexpr Time kYear = 365LL * 24 * kHour;

std::vector<OutageEvent>
threeOutages()
{
    return {{10 * kHour, 2 * kMinute},
            {100 * 24 * kHour, 10 * kMinute},
            {200 * 24 * kHour, kHour}};
}

TEST(Annual, QuietYearIsPerfect)
{
    AnnualSimulator sim;
    const auto r = sim.runYear(specJbbProfile(), 4, {}, maxPerfConfig(),
                               {});
    EXPECT_EQ(r.outages, 0);
    EXPECT_EQ(r.losses, 0);
    EXPECT_NEAR(r.downtimeMin, 0.0, 1e-6);
    EXPECT_NEAR(r.meanPerf, 1.0, 1e-9);
    EXPECT_DOUBLE_EQ(r.batteryKwh, 0.0);
}

TEST(Annual, MaxPerfRidesThroughEverything)
{
    AnnualSimulator sim;
    const auto r = sim.runYear(specJbbProfile(), 4, {}, maxPerfConfig(),
                               threeOutages());
    EXPECT_EQ(r.outages, 3);
    EXPECT_EQ(r.losses, 0);
    EXPECT_NEAR(r.downtimeMin, 0.0, 1e-3);
    EXPECT_GT(r.batteryKwh, 0.0); // bridged the DG transfers
}

TEST(Annual, MinCostAccumulatesOutageAndRecoveryTime)
{
    AnnualSimulator sim;
    const auto r = sim.runYear(specJbbProfile(), 4, {}, minCostConfig(),
                               threeOutages());
    EXPECT_EQ(r.losses, 3);
    // Sum of outages (72 min) plus ~400 s of recovery per event.
    EXPECT_NEAR(r.downtimeMin, 72.0 + 3.0 * 400.0 / 60.0, 3.0);
    EXPECT_GT(r.worstGapMin, 60.0); // the one-hour outage
}

TEST(Annual, BatteryRechargesBetweenOutages)
{
    // Two full-load outages, each within the battery runtime, half a
    // year apart: both must be ridden through.
    AnnualSimulator sim;
    TechniqueSpec throttle{TechniqueKind::Throttle, 6, 0, 0, false};
    const std::vector<OutageEvent> events{
        {10 * kHour, 5 * kMinute}, {180 * 24 * kHour, 5 * kMinute}};
    const auto r = sim.runYear(specJbbProfile(), 4, throttle,
                               noDgConfig(), events);
    EXPECT_EQ(r.losses, 0);
    EXPECT_NEAR(r.downtimeMin, 0.0, 1e-3);
}

TEST(Annual, SleepDefenseBoundsDowntimeToOutages)
{
    AnnualSimulator sim;
    TechniqueSpec sleep{TechniqueKind::Sleep, 0, 0, 0, true};
    const auto r = sim.runYear(specJbbProfile(), 4, sleep, noDgConfig(),
                               threeOutages());
    EXPECT_EQ(r.losses, 0);
    // Downtime ~= total outage time + one resume per event.
    EXPECT_NEAR(r.downtimeMin, 72.0 + 3.0 * 8.0 / 60.0, 1.0);
}

TEST(Annual, SummaryAggregatesAcrossYears)
{
    AnnualSimulator sim;
    TechniqueSpec sleep{TechniqueKind::Sleep, 0, 0, 0, true};
    const auto s = sim.runYears(specJbbProfile(), 4, sleep,
                                largeEUpsConfig(), 20, 99);
    EXPECT_EQ(s.downtimeMin.count(), 20u);
    EXPECT_GT(s.meanPerf.mean(), 0.99); // outages are rare
    EXPECT_DOUBLE_EQ(s.lossFreeYears, 1.0); // sleep never crashes
    // Battery energy and worst-gap reach the summary too.
    EXPECT_EQ(s.batteryKwh.count(), 20u);
    EXPECT_EQ(s.worstGapMin.count(), 20u);
    EXPECT_GT(s.batteryKwh.max(), 0.0);    // some year saw an outage
    EXPECT_GT(s.worstGapMin.max(), 0.0);   // sleep's downtime gaps
    EXPECT_GE(s.worstGapMin.min(), 0.0);
}

TEST(Annual, DeterministicGivenSeed)
{
    AnnualSimulator sim;
    TechniqueSpec throttle{TechniqueKind::Throttle, 5, 0, 0, false};
    const auto a = sim.runYears(specJbbProfile(), 4, throttle,
                                largeEUpsConfig(), 5, 7);
    const auto b = sim.runYears(specJbbProfile(), 4, throttle,
                                largeEUpsConfig(), 5, 7);
    EXPECT_DOUBLE_EQ(a.downtimeMin.mean(), b.downtimeMin.mean());
    EXPECT_DOUBLE_EQ(a.meanPerf.mean(), b.meanPerf.mean());
}

TEST(Annual, MoreBackupNeverHurtsAvailability)
{
    AnnualSimulator sim;
    TechniqueSpec throttle{TechniqueKind::Throttle, 6, 0, 0, false};
    const auto small = sim.runYears(specJbbProfile(), 4, throttle,
                                    noDgConfig(), 10, 5);
    const auto large = sim.runYears(specJbbProfile(), 4, throttle,
                                    largeEUpsConfig(), 10, 5);
    EXPECT_LE(large.downtimeMin.mean(), small.downtimeMin.mean() + 1e-6);
    EXPECT_GE(large.lossFreeYears, small.lossFreeYears);
}

TEST(Annual, RejectsOutagesBeyondTheYear)
{
    AnnualSimulator sim;
    EXPECT_DEATH(sim.runYear(specJbbProfile(), 4, {}, maxPerfConfig(),
                             {{kYear - kMinute, 2 * kMinute}}),
                 "beyond the year");
}

TEST(Annual, SectionedYearAggregatesByServers)
{
    AnnualSimulator sim;
    SectionSpec protected_section;
    protected_section.name = "protected";
    protected_section.profiles.assign(4, specJbbProfile());
    protected_section.backup = maxPerfConfig();
    protected_section.technique = {};
    SectionSpec bare_section;
    bare_section.name = "bare";
    bare_section.profiles.assign(4, specJbbProfile());
    bare_section.backup = minCostConfig();
    bare_section.technique = {};

    const auto r = sim.runSectionedYear(
        {protected_section, bare_section}, threeOutages());
    EXPECT_EQ(r.outages, 3);
    EXPECT_EQ(r.losses, 3); // only the bare section crashed, 3 times
    // Half the servers see MinCost downtime, half see none.
    EXPECT_NEAR(r.downtimeMin, 0.5 * (72.0 + 3.0 * 400.0 / 60.0), 3.0);
    EXPECT_GT(r.meanPerf, 0.999 * 0.5 + 0.49);
}

TEST(Annual, SectionedQuietYearIsPerfect)
{
    AnnualSimulator sim;
    SectionSpec s;
    s.name = "only";
    s.profiles.assign(2, memcachedProfile());
    s.backup = noDgConfig();
    s.technique = {TechniqueKind::Sleep, 0, 0, 0, true};
    const auto r = sim.runSectionedYear({s}, {});
    EXPECT_EQ(r.losses, 0);
    EXPECT_NEAR(r.downtimeMin, 0.0, 1e-6);
    EXPECT_NEAR(r.meanPerf, 1.0, 1e-9);
}

} // namespace
} // namespace bpsim
