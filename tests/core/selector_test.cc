/**
 * @file
 * Tests for the technique selector.
 */

#include <gtest/gtest.h>

#include "core/selector.hh"

namespace bpsim
{
namespace
{

Scenario
baseScenario(Time outage)
{
    Scenario sc;
    sc.profile = specJbbProfile();
    sc.nServers = 4;
    sc.outageDuration = outage;
    return sc;
}

TEST(Selector, BetterPrefersFeasibility)
{
    TechniqueChoice a, b;
    a.eval.feasible = true;
    a.eval.result.perfDuringOutage = 0.1;
    b.eval.feasible = false;
    b.eval.result.perfDuringOutage = 0.9;
    EXPECT_TRUE(TechniqueSelector::better(a, b));
    EXPECT_FALSE(TechniqueSelector::better(b, a));
}

TEST(Selector, BetterPrefersPerfThenDowntimeThenCost)
{
    TechniqueChoice a, b;
    a.eval.feasible = b.eval.feasible = true;
    a.eval.result.perfDuringOutage = 0.8;
    b.eval.result.perfDuringOutage = 0.6;
    EXPECT_TRUE(TechniqueSelector::better(a, b));

    b.eval.result.perfDuringOutage = 0.8;
    a.eval.result.downtimeSec = 10.0;
    b.eval.result.downtimeSec = 100.0;
    EXPECT_TRUE(TechniqueSelector::better(a, b));

    b.eval.result.downtimeSec = 10.0;
    a.eval.costPerYr = 5.0;
    b.eval.costPerYr = 9.0;
    EXPECT_TRUE(TechniqueSelector::better(a, b));
}

TEST(Selector, ShortOutageOnNoDgPicksShallowThrottle)
{
    TechniqueSelector sel;
    const auto sc = baseScenario(fromMinutes(5.0));
    const auto best = sel.bestForConfig(
        sc, noDgConfig(), allCandidates(ServerModel{}, sc.outageDuration));
    EXPECT_TRUE(best.eval.feasible);
    // The paper's NoDG @ 5 min lands near 60 % performance.
    EXPECT_NEAR(best.eval.result.perfDuringOutage, 0.6, 0.1);
}

TEST(Selector, MediumOutageOnNoDgSavesState)
{
    TechniqueSelector sel;
    const auto sc = baseScenario(fromMinutes(30.0));
    const auto best = sel.bestForConfig(
        sc, noDgConfig(), allCandidates(ServerModel{}, sc.outageDuration));
    // A 2-minute battery cannot sustain any active state for 30 min;
    // the best feasible option preserves state (perf ~ 0) instead of
    // crashing.
    EXPECT_TRUE(best.eval.feasible);
    EXPECT_LT(best.eval.result.perfDuringOutage, 0.2);
    EXPECT_LT(best.eval.result.downtimeSec, 35.0 * 60.0);
}

TEST(Selector, LargeEUpsHoldsFullPerfForThirtyMinutes)
{
    TechniqueSelector sel;
    const auto sc = baseScenario(fromMinutes(30.0));
    const auto best = sel.bestForConfig(
        sc, largeEUpsConfig(),
        allCandidates(ServerModel{}, sc.outageDuration));
    EXPECT_TRUE(best.eval.feasible);
    EXPECT_NEAR(best.eval.result.perfDuringOutage, 1.0, 0.02);
}

TEST(Selector, SizeAllEvaluatesEverything)
{
    TechniqueSelector sel;
    const auto sc = baseScenario(fromMinutes(5.0));
    const auto cands = basicCandidates(ServerModel{});
    const auto all = sel.sizeAll(sc, cands);
    ASSERT_EQ(all.size(), cands.size());
    for (const auto &c : all)
        EXPECT_TRUE(c.eval.feasible) << c.spec.label();
}

TEST(Selector, BudgetRestrictsChoice)
{
    TechniqueSelector sel;
    const auto sc = baseScenario(fromMinutes(30.0));
    const auto cands = allCandidates(ServerModel{}, sc.outageDuration);
    // A generous budget buys throttled serving...
    const auto rich = sel.bestUnderBudget(sc, cands, 0.6);
    ASSERT_TRUE(rich.has_value());
    EXPECT_GT(rich->eval.result.perfDuringOutage, 0.5);
    // ...a shoestring budget forces a save-state technique.
    const auto poor = sel.bestUnderBudget(sc, cands, 0.22);
    ASSERT_TRUE(poor.has_value());
    EXPECT_LT(poor->eval.result.perfDuringOutage,
              rich->eval.result.perfDuringOutage);
    EXPECT_LE(poor->eval.normalizedCost, 0.22);
}

TEST(Selector, ImpossibleBudgetReturnsNothing)
{
    TechniqueSelector sel;
    const auto sc = baseScenario(fromMinutes(30.0));
    const auto none = sel.bestUnderBudget(
        sc, basicCandidates(ServerModel{}), 0.001);
    EXPECT_FALSE(none.has_value());
}

TEST(Selector, EmptyCandidateListPanics)
{
    TechniqueSelector sel;
    const auto sc = baseScenario(fromMinutes(5.0));
    EXPECT_DEATH(sel.bestForConfig(sc, noDgConfig(), {}), "candidate");
}

TEST(Selector, FrontierIsSortedAndUndominated)
{
    TechniqueSelector sel;
    const auto sc = baseScenario(fromMinutes(30.0));
    const auto frontier = sel.costPerfFrontier(
        sc, allCandidates(ServerModel{}, sc.outageDuration));
    ASSERT_GE(frontier.size(), 3u);
    for (std::size_t i = 1; i < frontier.size(); ++i) {
        // Ascending cost AND ascending perf: no point dominates another.
        EXPECT_GE(frontier[i].eval.costPerYr,
                  frontier[i - 1].eval.costPerYr);
        EXPECT_GT(frontier[i].eval.result.perfDuringOutage,
                  frontier[i - 1].eval.result.perfDuringOutage);
    }
    // The frontier spans from save-state-cheap to full-perf-expensive.
    EXPECT_LT(frontier.front().eval.result.perfDuringOutage, 0.2);
    EXPECT_GT(frontier.back().eval.result.perfDuringOutage, 0.9);
}

TEST(Selector, FrontierContainsOnlyFeasibleChoices)
{
    TechniqueSelector sel;
    const auto sc = baseScenario(fromHours(2.0));
    const auto frontier = sel.costPerfFrontier(
        sc, allCandidates(ServerModel{}, sc.outageDuration));
    for (const auto &c : frontier)
        EXPECT_TRUE(c.eval.feasible) << c.spec.label();
}

} // namespace
} // namespace bpsim
