/**
 * @file
 * Integration tests for the paper's headline claims (abstract and
 * Sections 6.1-6.2 "Summary of Insights"). These are the end-to-end
 * checks that the reproduction actually reproduces the *shape* of the
 * published results: who wins, by roughly what factor, and where the
 * crossovers fall.
 */

#include <gtest/gtest.h>

#include "core/selector.hh"
#include "core/tco.hh"
#include "outage/distribution.hh"

namespace bpsim
{
namespace
{

Scenario
scenario(const WorkloadProfile &w, Time outage)
{
    Scenario sc;
    sc.profile = w;
    sc.nServers = 4;
    sc.outageDuration = outage;
    return sc;
}

TEST(PaperClaims, UpsEnergyCheaperThanDgUpToFortyMinutes)
{
    // Abstract: "completely do away with DGs ... and still be able to
    // handle power outages lasting as high as 40 minutes" — because
    // UPS energy for <= ~40 minutes costs less than the DG it
    // replaces.
    CostModel cost;
    const double dg = cost.dgCostPerYr(1.0);
    EXPECT_LT(cost.upsCostPerYr(1.0, 40.0 * 60.0), dg);
}

TEST(PaperClaims, FortyMinuteOutagesCoveredWithoutDgAtFullPerf)
{
    // Size a DG-free UPS that serves a 40-minute outage at full
    // performance; it must cost less than today's MaxPerf.
    Analyzer a;
    auto sc = scenario(specJbbProfile(), fromMinutes(40.0));
    sc.technique = {}; // full speed, no degradation
    const auto sized = a.sizeUpsOnly(sc);
    EXPECT_TRUE(sized.feasible);
    EXPECT_NEAR(sized.result.perfDuringOutage, 1.0, 1e-6);
    EXPECT_LT(sized.normalizedCost, 1.0);
}

TEST(PaperClaims, UpsAloneMatchesMaxPerfCostUpToHundredMinutes)
{
    // §6.1 insight (iii): "UPS can eliminate DG for up to 100 mins of
    // outage duration and offer the same performance as with today's
    // approach at the same cost."
    Analyzer a;
    auto sc = scenario(specJbbProfile(), fromMinutes(100.0));
    sc.technique = {}; // same performance as MaxPerf
    const auto sized = a.sizeUpsOnly(sc);
    EXPECT_TRUE(sized.feasible);
    EXPECT_NEAR(sized.result.perfDuringOutage, 1.0, 1e-6);
    EXPECT_LE(sized.normalizedCost, 1.05);
    // And beyond ~100 minutes it stops being competitive.
    auto sc_long = scenario(specJbbProfile(), fromMinutes(150.0));
    sc_long.technique = {};
    const auto sized_long = a.sizeUpsOnly(sc_long);
    EXPECT_GT(sized_long.normalizedCost, 1.05);
}

TEST(PaperClaims, FortyPercentDegradationBuysFortyPercentSavingsAtOneHour)
{
    // §6.1 insight (iv): 40 % cost savings for 1-hour outages if a
    // 40 % performance hit is acceptable.
    TechniqueSelector sel;
    const auto sc = scenario(specJbbProfile(), fromHours(1.0));
    const auto best = sel.bestUnderBudget(
        sc, allCandidates(ServerModel{}, sc.outageDuration), 0.62);
    ASSERT_TRUE(best.has_value());
    EXPECT_GE(best->eval.result.perfDuringOutage, 0.55);
}

TEST(PaperClaims, LongRuntimeBeatsHighPowerForLongOutages)
{
    // §6.1 insight (v): at equal cost (0.38 of MaxPerf), the
    // small-power / long-runtime UPS outperforms the full-power /
    // 2-minute one for long outages.
    TechniqueSelector sel;
    const auto sc = scenario(specJbbProfile(), fromMinutes(60.0));
    const auto cands = allCandidates(ServerModel{}, sc.outageDuration);
    const auto no_dg = sel.bestForConfig(sc, noDgConfig(), cands);
    const auto small_p =
        sel.bestForConfig(sc, smallPLargeEUpsConfig(), cands);
    EXPECT_GT(small_p.eval.result.perfDuringOutage,
              no_dg.eval.result.perfDuringOutage);
}

TEST(PaperClaims, LargeEUpsFullPerfThirtyMinAtFiftyFivePercentCost)
{
    // §6.1: "LargeEUPS with 30 minutes of UPS battery capacity
    // achieves the same performance as MaxPerf up to 30 mins outage
    // duration ... at only 55 % of the cost."
    TechniqueSelector sel;
    const auto sc = scenario(specJbbProfile(), fromMinutes(30.0));
    const auto best = sel.bestForConfig(
        sc, largeEUpsConfig(),
        allCandidates(ServerModel{}, sc.outageDuration));
    EXPECT_TRUE(best.eval.feasible);
    EXPECT_NEAR(best.eval.result.perfDuringOutage, 1.0, 0.02);
    EXPECT_NEAR(best.eval.normalizedCost, 0.55, 0.01);
}

TEST(PaperClaims, LargeEUpsSustainsSixtyPercentAtOneHour)
{
    // §6.1: "sustains 60 % of (degraded) performance for up to 1 hour
    // outage duration".
    TechniqueSelector sel;
    const auto sc = scenario(specJbbProfile(), fromHours(1.0));
    const auto best = sel.bestForConfig(
        sc, largeEUpsConfig(),
        allCandidates(ServerModel{}, sc.outageDuration));
    EXPECT_TRUE(best.eval.feasible);
    // Degraded but substantial service (the paper reports ~60 %; our
    // selector finds an operating point slightly above it).
    EXPECT_GE(best.eval.result.perfDuringOutage, 0.5);
    EXPECT_LE(best.eval.result.perfDuringOutage, 0.75);
}

TEST(PaperClaims, ThrottlingBestForShortSleepHybridForMedium)
{
    // §6.2 summary: throttling covers short outages cheaply; for
    // medium outages the Throttle+Sleep-L hybrid preserves state
    // within a tiny battery.
    Analyzer a;
    // Short: throttled serving at under 40 % of MaxPerf cost.
    auto sc_short = scenario(specJbbProfile(), fromMinutes(5.0));
    sc_short.technique = {TechniqueKind::Throttle, 5, 0, 0, false};
    const auto throttled = a.sizeUpsOnly(sc_short);
    EXPECT_TRUE(throttled.feasible);
    EXPECT_LT(throttled.normalizedCost, 0.4);
    EXPECT_GT(throttled.result.perfDuringOutage, 0.5);

    // Medium, 30 min: hybrid sustains part of it and sleeps, cheaper
    // than sustaining throttled the whole way.
    auto sc_med = scenario(specJbbProfile(), fromMinutes(30.0));
    sc_med.technique = {TechniqueKind::ThrottleSleep, 5, 0,
                        15 * kMinute, true};
    const auto hybrid = a.sizeUpsOnly(sc_med);
    sc_med.technique = {TechniqueKind::Throttle, 5, 0, 0, false};
    const auto sustain = a.sizeUpsOnly(sc_med);
    EXPECT_TRUE(hybrid.feasible);
    EXPECT_LT(hybrid.costPerYr, sustain.costPerYr);
}

TEST(PaperClaims, ThrottleSleepHandlesTwoHoursAtTwentyPercentCost)
{
    // §6.2: "for long outages (2 hours and beyond) ... Throttle+
    // Sleep-L can sustain at as low as 20 % cost."
    Analyzer a;
    auto sc = scenario(specJbbProfile(), fromHours(2.0));
    sc.technique = {TechniqueKind::ThrottleSleep, 5, 0, 10 * kMinute,
                    true};
    const auto sized = a.sizeUpsOnly(sc);
    EXPECT_TRUE(sized.feasible);
    EXPECT_LE(sized.normalizedCost, 0.22);
}

TEST(PaperClaims, MigrationBeatsThrottlingForLongOutages)
{
    // §6.2 summary (iii): consolidation wins for long outages because
    // today's servers are not energy proportional: at equal backup
    // cost the consolidated cluster offers more performance.
    Analyzer a;
    auto sc = scenario(specJbbProfile(), fromHours(2.0));
    sc.technique = {TechniqueKind::Migration, 5, 0, 0, false};
    const auto mig = a.sizeUpsOnly(sc);
    ASSERT_TRUE(mig.feasible);

    // Find the throttle depth with comparable cost.
    Evaluation thr_at_cost;
    double best_gap = 1e300;
    for (int p = 0; p < 7; ++p) {
        for (int t : {0, 2, 4, 7}) {
            auto sc_t = sc;
            sc_t.technique = {TechniqueKind::Throttle, p, t, 0, false};
            const auto ev = a.sizeUpsOnly(sc_t);
            if (!ev.feasible)
                continue;
            const double gap = std::abs(ev.costPerYr - mig.costPerYr);
            if (gap < best_gap) {
                best_gap = gap;
                thr_at_cost = ev;
            }
        }
    }
    EXPECT_GE(mig.result.perfDuringOutage,
              thr_at_cost.result.perfDuringOutage - 0.05);
}

TEST(PaperClaims, MemcachedPrefersThrottlingOverHibernation)
{
    // §6.2: Memcached's memory stalls make throttling cheap, while
    // hibernating its 20 GB slab heap is pathological.
    Analyzer a;
    auto sc = scenario(memcachedProfile(), fromMinutes(30.0));
    sc.technique = {TechniqueKind::Throttle, 6, 0, 0, false};
    const auto thr = a.sizeUpsOnly(sc);
    sc.technique = {TechniqueKind::Hibernate, 0, 0, 0, false};
    const auto hib = a.sizeUpsOnly(sc);
    EXPECT_GT(thr.result.perfDuringOutage, 0.75);
    EXPECT_GT(hib.result.downtimeSec, thr.result.downtimeSec + 600.0);
}

TEST(PaperClaims, TechniqueChoiceDiffersAcrossWorkloads)
{
    // §6 insight: "different applications react differently to the
    // system mechanisms" — the best technique for a 30 s outage under
    // a tight budget differs between Memcached and Web-search.
    // A 0.25 budget cannot afford a full-power UPS, so serving means
    // throttling — which the workloads tolerate very differently.
    TechniqueSelector sel;
    const auto cands = allCandidates(ServerModel{}, 30 * kSecond);
    const auto mc = sel.bestUnderBudget(
        scenario(memcachedProfile(), 30 * kSecond), cands, 0.25);
    const auto ws = sel.bestUnderBudget(
        scenario(webSearchProfile(), 30 * kSecond), cands, 0.25);
    ASSERT_TRUE(mc.has_value());
    ASSERT_TRUE(ws.has_value());
    EXPECT_GT(mc->eval.result.perfDuringOutage,
              ws->eval.result.perfDuringOutage);
}

TEST(PaperClaims, BulkOfOutagesWithinFortyMinutes)
{
    // The "handle outages lasting as high as 40 minutes (which
    // constitute the bulk of the outages)" framing: Figure 1 puts
    // ~74 % of outages within 40 minutes.
    const auto d = OutageDurationDistribution::figure1();
    EXPECT_GT(d.fractionWithin(fromMinutes(40.0)), 0.7);
}

TEST(PaperClaims, TcoCrossoverAroundFiveHours)
{
    TcoModel tco;
    EXPECT_NEAR(tco.crossoverMinutesPerYr() / 60.0, 5.0, 0.3);
}

} // namespace
} // namespace bpsim
