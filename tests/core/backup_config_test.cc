/**
 * @file
 * Tests for the Table 3 configurations and their normalized costs.
 */

#include <gtest/gtest.h>

#include "core/backup_config.hh"

namespace bpsim
{
namespace
{

const CostModel kCost{};
constexpr double kPeakW = 1e6; // 1 MW reference datacenter

double
normCost(const BackupConfigSpec &spec)
{
    return kCost.normalizedCost(capacityOf(spec, kPeakW), kPeakW / 1000.0);
}

TEST(Table3, NineConfigurationsInPaperOrder)
{
    const auto all = table3Configs();
    ASSERT_EQ(all.size(), 9u);
    EXPECT_EQ(all[0].name, "MaxPerf");
    EXPECT_EQ(all[1].name, "MinCost");
    EXPECT_EQ(all[2].name, "NoDG");
    EXPECT_EQ(all[3].name, "NoUPS");
    EXPECT_EQ(all[4].name, "DG-SmallPUPS");
    EXPECT_EQ(all[5].name, "SmallDG-SmallPUPS");
    EXPECT_EQ(all[6].name, "SmallPUPS");
    EXPECT_EQ(all[7].name, "LargeEUPS");
    EXPECT_EQ(all[8].name, "SmallP-LargeEUPS");
}

TEST(Table3, NormalizedCostsMatchThePaper)
{
    // The cost column of Table 3, to two decimals.
    EXPECT_NEAR(normCost(maxPerfConfig()), 1.00, 0.005);
    EXPECT_NEAR(normCost(minCostConfig()), 0.00, 1e-12);
    EXPECT_NEAR(normCost(noDgConfig()), 0.38, 0.005);
    // 83.3 / 133.3 = 0.6249; the paper prints 0.63.
    EXPECT_NEAR(normCost(noUpsConfig()), 0.63, 0.006);
    EXPECT_NEAR(normCost(dgSmallPUpsConfig()), 0.81, 0.005);
    EXPECT_NEAR(normCost(smallDgSmallPUpsConfig()), 0.50, 0.005);
    EXPECT_NEAR(normCost(smallPUpsConfig()), 0.19, 0.005);
    EXPECT_NEAR(normCost(largeEUpsConfig()), 0.55, 0.005);
    EXPECT_NEAR(normCost(smallPLargeEUpsConfig()), 0.38, 0.005);
}

TEST(Table3, NoDgAndSmallPLargeEUpsCostTheSame)
{
    // The paper highlights that SmallP-LargeEUPS trades peak power for
    // runtime at the NoDG price point (both 0.38).
    EXPECT_NEAR(normCost(noDgConfig()), normCost(smallPLargeEUpsConfig()),
                0.005);
}

TEST(Table3, EliminatingDgSavesSixtyTwoPercent)
{
    EXPECT_NEAR(1.0 - normCost(noDgConfig()), 0.62, 0.01);
}

TEST(Table3, RemovingUpsSavesThirtySevenPercent)
{
    EXPECT_NEAR(1.0 - normCost(noUpsConfig()), 0.37, 0.01);
}

TEST(Table3, LargeEUpsRuntimeIsThirtyMinutes)
{
    const auto spec = largeEUpsConfig();
    EXPECT_DOUBLE_EQ(spec.upsRuntimeSec, 1800.0);
    EXPECT_FALSE(spec.hasDg);
    EXPECT_DOUBLE_EQ(spec.upsPowerFrac, 1.0);
}

TEST(Table3, SmallPLargeEUpsTradesPowerForRuntime)
{
    const auto spec = smallPLargeEUpsConfig();
    EXPECT_DOUBLE_EQ(spec.upsPowerFrac, 0.5);
    EXPECT_DOUBLE_EQ(spec.upsRuntimeSec, 62.0 * 60.0);
}

TEST(ToHierarchyConfig, ScalesCapacitiesByPeak)
{
    const auto cfg = toHierarchyConfig(dgSmallPUpsConfig(), 2000.0);
    ASSERT_TRUE(cfg.hasDg);
    ASSERT_TRUE(cfg.hasUps);
    EXPECT_DOUBLE_EQ(cfg.dg.powerCapacityW, 2000.0);
    EXPECT_DOUBLE_EQ(cfg.ups.powerCapacityW, 1000.0);
    EXPECT_DOUBLE_EQ(cfg.ups.runtimeAtRatedSec, 120.0);
}

TEST(ToHierarchyConfig, MinCostHasNoBackup)
{
    const auto cfg = toHierarchyConfig(minCostConfig(), 2000.0);
    EXPECT_FALSE(cfg.hasDg);
    EXPECT_FALSE(cfg.hasUps);
}

TEST(CapacityOf, MatchesSpecFractions)
{
    const auto cap = capacityOf(smallDgSmallPUpsConfig(), 1e6);
    EXPECT_DOUBLE_EQ(cap.dgKw, 500.0);
    EXPECT_DOUBLE_EQ(cap.upsKw, 500.0);
    EXPECT_DOUBLE_EQ(cap.upsRuntimeSec, 120.0);
}

} // namespace
} // namespace bpsim
