/**
 * @file
 * Tests for the Figure 10 TCO model.
 */

#include <gtest/gtest.h>

#include "core/tco.hh"

namespace bpsim
{
namespace
{

TEST(Tco, GoogleDefaults)
{
    TcoModel m;
    EXPECT_DOUBLE_EQ(m.params().revenuePerKwMin, 0.28);
    EXPECT_DOUBLE_EQ(m.params().serverDepreciationPerKwMin, 0.003);
    EXPECT_DOUBLE_EQ(m.params().dgCostPerKwYr, 83.3);
    EXPECT_NEAR(m.lossPerKwMin(), 0.283, 1e-12);
}

TEST(Tco, CrossoverNearFiveHours)
{
    // Section 7: "the cross-over point ... turns out to be around
    // 5 hours per year".
    TcoModel m;
    const double minutes = m.crossoverMinutesPerYr();
    EXPECT_NEAR(minutes / 60.0, 5.0, 0.25);
}

TEST(Tco, ProfitableBelowCrossoverLossAbove)
{
    TcoModel m;
    const double x = m.crossoverMinutesPerYr();
    EXPECT_TRUE(m.profitableWithoutDg(x * 0.9));
    EXPECT_FALSE(m.profitableWithoutDg(x * 1.1));
}

TEST(Tco, OutageCostIsLinear)
{
    TcoModel m;
    EXPECT_DOUBLE_EQ(m.outageCostPerKwYr(0.0), 0.0);
    EXPECT_NEAR(m.outageCostPerKwYr(100.0), 28.3, 1e-9);
    EXPECT_NEAR(m.outageCostPerKwYr(200.0),
                2.0 * m.outageCostPerKwYr(100.0), 1e-9);
}

TEST(Tco, SavingsEqualDgCost)
{
    TcoModel m;
    EXPECT_DOUBLE_EQ(m.dgSavingsPerKwYr(), 83.3);
}

TEST(Tco, LowerMarginOrganizationsToleratMoreDowntime)
{
    // An organization earning half the revenue density can absorb
    // twice the yearly outage minutes before the DG pays off.
    TcoParams cheap;
    cheap.revenuePerKwMin = 0.14;
    cheap.serverDepreciationPerKwMin = 0.0015;
    TcoModel m(cheap);
    TcoModel google;
    EXPECT_NEAR(m.crossoverMinutesPerYr(),
                2.0 * google.crossoverMinutesPerYr(), 1e-9);
}

} // namespace
} // namespace bpsim
