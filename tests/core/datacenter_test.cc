/**
 * @file
 * Tests for the sectioned Datacenter (Section 7's heterogeneous
 * provisioning structure): independent power fates behind one utility.
 */

#include <gtest/gtest.h>

#include "core/datacenter.hh"
#include "power/utility.hh"

namespace bpsim
{
namespace
{

SectionSpec
interactiveSection()
{
    SectionSpec s;
    s.name = "interactive";
    s.profiles = {specJbbProfile(), specJbbProfile(), specJbbProfile(),
                  specJbbProfile()};
    s.backup = largeEUpsConfig();
    s.technique = {TechniqueKind::Throttle, 5, 0, 0, false};
    return s;
}

SectionSpec
batchSection()
{
    SectionSpec s;
    s.name = "batch";
    s.profiles = {specCpuMcfProfile(), specCpuMcfProfile(),
                  specCpuMcfProfile(), specCpuMcfProfile()};
    s.backup = smallPUpsConfig();
    s.technique = {TechniqueKind::Sleep, 0, 0, 0, true};
    return s;
}

SectionSpec
bareSection()
{
    SectionSpec s;
    s.name = "scavenger";
    s.profiles = {memcachedProfile(), memcachedProfile()};
    s.backup = minCostConfig();
    s.technique = {TechniqueKind::None};
    return s;
}

TEST(Datacenter, BuildsSectionsWithTheirOwnBackups)
{
    Simulator sim;
    Utility utility(sim);
    Datacenter dc(sim, utility, ServerModel{},
                  {interactiveSection(), batchSection()});
    ASSERT_EQ(dc.size(), 2);
    EXPECT_EQ(dc.totalServers(), 8);
    EXPECT_TRUE(dc.section(0).hierarchy().ups() != nullptr);
    EXPECT_DOUBLE_EQ(
        dc.section(0).hierarchy().ups()->params().runtimeAtRatedSec,
        1800.0);
    EXPECT_DOUBLE_EQ(
        dc.section(1).hierarchy().ups()->params().powerCapacityW,
        0.5 * 4 * 250.0);
    EXPECT_DOUBLE_EQ(dc.aggregatePerf(), 1.0);
}

TEST(Datacenter, SectionsDivergeDuringAnOutage)
{
    Simulator sim;
    Utility utility(sim);
    Datacenter dc(sim, utility, ServerModel{},
                  {interactiveSection(), batchSection(), bareSection()});
    utility.scheduleOutage(kMinute, 10 * kMinute);
    sim.runUntil(5 * kMinute);
    // Interactive: throttled serving. Batch: asleep. Scavenger: dark.
    EXPECT_GT(dc.section(0).cluster().aggregatePerf(), 0.5);
    EXPECT_DOUBLE_EQ(dc.section(1).cluster().aggregatePerf(), 0.0);
    EXPECT_DOUBLE_EQ(dc.section(2).cluster().aggregatePerf(), 0.0);
    EXPECT_EQ(dc.section(0).hierarchy().powerLossCount(), 0);
    EXPECT_EQ(dc.section(1).hierarchy().powerLossCount(), 0);
    EXPECT_EQ(dc.section(2).hierarchy().powerLossCount(), 1);
    EXPECT_EQ(dc.totalLosses(), 1);
}

TEST(Datacenter, OneSectionsCrashDoesNotTouchTheOthers)
{
    Simulator sim;
    Utility utility(sim);
    Datacenter dc(sim, utility, ServerModel{},
                  {interactiveSection(), bareSection()});
    utility.scheduleOutage(kMinute, 5 * kMinute);
    sim.runUntil(kHour);
    // Scavenger crashed and lost state; interactive never blinked.
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(dc.section(0).cluster().app(i).stateLosses(), 0);
    for (int i = 0; i < 2; ++i)
        EXPECT_EQ(dc.section(1).cluster().app(i).stateLosses(), 1);
}

TEST(Datacenter, CostsSumAndNormalize)
{
    Simulator sim;
    Utility utility(sim);
    Datacenter dc(sim, utility, ServerModel{},
                  {interactiveSection(), batchSection()});
    const CostModel cost;
    // LargeEUPS on 1 kW + SmallPUPS on 1 kW.
    const double expected =
        cost.totalCostPerYr(capacityOf(largeEUpsConfig(), 1000.0)) +
        cost.totalCostPerYr(capacityOf(smallPUpsConfig(), 1000.0));
    EXPECT_NEAR(dc.totalCostPerYr(cost), expected, 1e-9);
    // Normalized against MaxPerf for the full 2 kW.
    EXPECT_NEAR(dc.normalizedCost(cost),
                expected / cost.maxPerfCostPerYr(2.0), 1e-12);
    // (0.55 + 0.19) / 2 blended.
    EXPECT_NEAR(dc.normalizedCost(cost), 0.37, 0.01);
}

TEST(Datacenter, RunSectionedReducesPerSection)
{
    const auto r = runSectioned(
        {interactiveSection(), batchSection(), bareSection()},
        fromMinutes(5.0), fromMinutes(10.0));
    ASSERT_EQ(r.sections.size(), 3u);
    EXPECT_EQ(r.sections[0].name, "interactive");
    EXPECT_GT(r.sections[0].perfDuringOutage, 0.5);
    EXPECT_LT(r.sections[0].downtimeSec, 1.0);
    EXPECT_NEAR(r.sections[1].downtimeSec, 10.0 * 60.0 + 8.0, 60.0);
    EXPECT_EQ(r.sections[2].losses, 1);
    EXPECT_GT(r.sections[2].downtimeSec, 600.0);
    // Aggregates are server-weighted.
    const double expect_perf = (r.sections[0].perfDuringOutage * 4 +
                                r.sections[1].perfDuringOutage * 4 +
                                r.sections[2].perfDuringOutage * 2) /
                               10.0;
    EXPECT_NEAR(r.perfDuringOutage, expect_perf, 1e-12);
    EXPECT_EQ(r.losses, 1);
}

TEST(Datacenter, SingleSectionMatchesAnalyzer)
{
    // A one-section datacenter must agree with the Analyzer's answer
    // for the same scenario.
    SectionSpec s = interactiveSection();
    const auto dc_result =
        runSectioned({s}, fromMinutes(5.0), fromMinutes(10.0));

    Scenario sc;
    sc.mixedProfiles = s.profiles;
    sc.technique = s.technique;
    sc.outageStart = fromMinutes(5.0);
    sc.outageDuration = fromMinutes(10.0);
    Analyzer a;
    const auto ev = a.evaluateConfig(sc, s.backup);

    EXPECT_NEAR(dc_result.perfDuringOutage,
                ev.result.perfDuringOutage, 1e-9);
    EXPECT_NEAR(dc_result.downtimeSec, ev.result.downtimeSec, 1e-6);
    EXPECT_NEAR(dc_result.normalizedCost, ev.normalizedCost, 1e-12);
}

TEST(Datacenter, RejectsEmptyConfigurations)
{
    Simulator sim;
    Utility utility(sim);
    EXPECT_DEATH(Datacenter(sim, utility, ServerModel{}, {}),
                 "at least one section");
    SectionSpec empty;
    empty.name = "empty";
    EXPECT_DEATH(Datacenter(sim, utility, ServerModel{}, {empty}),
                 "no servers");
}

} // namespace
} // namespace bpsim
