/**
 * @file
 * Tests for the performability analyzer: fixed-config evaluation and
 * minimal UPS sizing.
 */

#include <gtest/gtest.h>

#include "core/analyzer.hh"

namespace bpsim
{
namespace
{

Scenario
baseScenario(Time outage = fromMinutes(5.0))
{
    Scenario sc;
    sc.profile = specJbbProfile();
    sc.nServers = 4;
    sc.outageDuration = outage;
    return sc;
}

TEST(Analyzer, NominalPeakIsClusterPeak)
{
    Analyzer a;
    EXPECT_DOUBLE_EQ(a.nominalPeakW(baseScenario()), 4 * 250.0);
}

TEST(Analyzer, MaxPerfIsSeamless)
{
    Analyzer a;
    auto sc = baseScenario();
    const auto ev = a.evaluateConfig(sc, maxPerfConfig());
    EXPECT_TRUE(ev.feasible);
    EXPECT_NEAR(ev.result.perfDuringOutage, 1.0, 1e-6);
    EXPECT_NEAR(ev.result.downtimeSec, 0.0, 1.0);
    EXPECT_NEAR(ev.normalizedCost, 1.0, 1e-9);
    EXPECT_TRUE(ev.result.recovered);
}

TEST(Analyzer, MinCostCrashesAndRecoversSlowly)
{
    Analyzer a;
    auto sc = baseScenario(30 * kSecond);
    const auto ev = a.evaluateConfig(sc, minCostConfig());
    EXPECT_FALSE(ev.feasible);
    EXPECT_EQ(ev.result.losses, 1);
    // Only the 30 ms ride-through contributes any service.
    EXPECT_NEAR(ev.result.perfDuringOutage, 0.0, 0.01);
    // The paper's ~400 s for a 30 s Specjbb outage (+ the outage).
    EXPECT_NEAR(ev.result.downtimeSec, 430.0, 40.0);
    EXPECT_DOUBLE_EQ(ev.normalizedCost, 0.0);
    EXPECT_TRUE(ev.result.recovered);
}

TEST(Analyzer, NoDgAtFullLoadDiesWhenBatteryEmpties)
{
    Analyzer a;
    auto sc = baseScenario(fromMinutes(10.0));
    sc.technique = {}; // no technique: full power on a 2-min battery
    const auto ev = a.evaluateConfig(sc, noDgConfig());
    EXPECT_FALSE(ev.feasible);
    EXPECT_EQ(ev.result.losses, 1);
    // It served for ~2 minutes of the 10.
    EXPECT_NEAR(ev.result.perfDuringOutage, 0.2, 0.05);
}

TEST(Analyzer, ThrottlingOnNoDgSurvivesFiveMinutes)
{
    Analyzer a;
    auto sc = baseScenario(fromMinutes(5.0));
    sc.technique = {TechniqueKind::Throttle, 5, 0, 0, false};
    const auto ev = a.evaluateConfig(sc, noDgConfig());
    EXPECT_TRUE(ev.feasible);
    EXPECT_NEAR(ev.result.perfDuringOutage, 0.63, 0.03);
    EXPECT_NEAR(ev.result.downtimeSec, 0.0, 1.0);
}

TEST(Analyzer, DgConfigsHandleLongOutages)
{
    Analyzer a;
    auto sc = baseScenario(fromHours(2.0));
    const auto ev = a.evaluateConfig(sc, maxPerfConfig());
    EXPECT_TRUE(ev.feasible);
    EXPECT_NEAR(ev.result.perfDuringOutage, 1.0, 1e-6);
}

TEST(Analyzer, PeakBackupDrawReflectsThrottle)
{
    Analyzer a;
    auto sc = baseScenario();
    sc.technique = {TechniqueKind::Throttle, 6, 0, 0, false};
    const auto ev = a.evaluateConfig(sc, largeEUpsConfig());
    // Four servers at the deepest DVFS point: ~106 W each.
    EXPECT_NEAR(ev.result.peakBatteryDrawW, 4 * 106.0, 4 * 10.0);
}

TEST(Analyzer, SizeUpsOnlyProducesFeasibleMinimalConfig)
{
    Analyzer a;
    auto sc = baseScenario(fromMinutes(30.0));
    sc.technique = {TechniqueKind::Throttle, 6, 0, 0, false};
    const auto sized = a.sizeUpsOnly(sc);
    EXPECT_TRUE(sized.feasible);
    EXPECT_EQ(sized.result.losses, 0);
    EXPECT_GT(sized.capacity.upsKw, 0.0);
    EXPECT_GE(sized.capacity.upsRuntimeSec, 120.0);
    EXPECT_GT(sized.normalizedCost, 0.0);
    EXPECT_LT(sized.normalizedCost, 1.0);
}

TEST(Analyzer, SizedCapacityIsTight)
{
    // Shrinking the sized runtime by 10 % must break the scenario:
    // the sizing is genuinely minimal (up to its small margin).
    Analyzer a;
    auto sc = baseScenario(fromMinutes(30.0));
    sc.technique = {TechniqueKind::Throttle, 6, 0, 0, false};
    const auto sized = a.sizeUpsOnly(sc);

    PowerHierarchy::Config shrunk;
    shrunk.hasDg = false;
    shrunk.hasUps = true;
    shrunk.ups.powerCapacityW = sized.capacity.upsKw * 1000.0 * 1.001;
    shrunk.ups.runtimeAtRatedSec = sized.capacity.upsRuntimeSec * 0.9;
    const auto broken = a.run(sc, shrunk);
    EXPECT_GT(broken.losses, 0);
}

TEST(Analyzer, SleepSizesTinyBackup)
{
    Analyzer a;
    auto sc = baseScenario(fromHours(1.0));
    sc.technique.kind = TechniqueKind::Sleep;
    sc.technique.lowPower = true;
    const auto sized = a.sizeUpsOnly(sc);
    EXPECT_TRUE(sized.feasible);
    // Sleep-L: the paper reports ~20 % of MaxPerf cost.
    EXPECT_LT(sized.normalizedCost, 0.25);
}

TEST(Analyzer, LongerOutagesCostMoreToSustain)
{
    Analyzer a;
    double prev = 0.0;
    for (double minutes : {5.0, 30.0, 60.0, 120.0}) {
        auto sc = baseScenario(fromMinutes(minutes));
        sc.technique = {TechniqueKind::Throttle, 6, 0, 0, false};
        const auto sized = a.sizeUpsOnly(sc);
        EXPECT_GE(sized.normalizedCost, prev);
        prev = sized.normalizedCost;
    }
}

TEST(Analyzer, PeukertRuntimeConsistentWithConstantLoad)
{
    // For a constant-draw technique the Peukert integral equals the
    // outage duration (draw == rated power of the sizing).
    Analyzer a;
    auto sc = baseScenario(fromMinutes(10.0));
    sc.technique = {}; // full constant load
    const auto sized = a.sizeUpsOnly(sc);
    EXPECT_NEAR(sized.result.peukertRuntimeSec, 600.0, 10.0);
}

TEST(Analyzer, BatteryEnergyAccounting)
{
    Analyzer a;
    auto sc = baseScenario(fromMinutes(10.0));
    const auto sized = a.sizeUpsOnly(sc);
    // 1 kW for 10 minutes = 1/6 kWh.
    EXPECT_NEAR(sized.result.batteryEnergyKwh, 1000.0 * 600.0 / 3.6e6,
                0.01);
}

TEST(Analyzer, RecomputeFractionFlowsThrough)
{
    Analyzer a;
    Scenario sc = baseScenario(fromMinutes(2.0));
    sc.profile = specCpuMcfProfile();
    sc.recomputeFraction = 1.0;
    const auto worst = a.evaluateConfig(sc, minCostConfig());
    sc.recomputeFraction = 0.0;
    const auto best = a.evaluateConfig(sc, minCostConfig());
    EXPECT_GT(worst.result.downtimeSec,
              best.result.downtimeSec +
                  0.9 * (specCpuMcfProfile().recomputeMaxSec -
                         specCpuMcfProfile().recomputeMinSec));
}

TEST(Analyzer, DeterministicAcrossRuns)
{
    Analyzer a;
    auto sc = baseScenario(fromMinutes(7.0));
    sc.technique = {TechniqueKind::Throttle, 4, 0, 0, false};
    const auto e1 = a.evaluateConfig(sc, largeEUpsConfig());
    const auto e2 = a.evaluateConfig(sc, largeEUpsConfig());
    EXPECT_DOUBLE_EQ(e1.result.perfDuringOutage,
                     e2.result.perfDuringOutage);
    EXPECT_DOUBLE_EQ(e1.result.downtimeSec, e2.result.downtimeSec);
    EXPECT_DOUBLE_EQ(e1.result.batteryEnergyKwh,
                     e2.result.batteryEnergyKwh);
}

/**
 * Property sweep: for every basic technique, the sized configuration
 * must be verified feasible, and performance/availability must be in
 * [0, 1].
 */
class SizingSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(SizingSweep, SizedConfigIsFeasibleAndSane)
{
    Analyzer a;
    auto sc = baseScenario(fromMinutes(30.0));
    const auto cands = basicCandidates(ServerModel{});
    sc.technique = cands[static_cast<std::size_t>(GetParam())];
    const auto sized = a.sizeUpsOnly(sc);
    EXPECT_TRUE(sized.feasible) << sc.technique.label();
    EXPECT_GE(sized.result.perfDuringOutage, 0.0);
    EXPECT_LE(sized.result.perfDuringOutage, 1.0 + 1e-9);
    EXPECT_GE(sized.result.availabilityDuringOutage, 0.0);
    EXPECT_LE(sized.result.availabilityDuringOutage, 1.0 + 1e-9);
    EXPECT_GE(sized.result.downtimeSec, 0.0);
    EXPECT_TRUE(sized.result.recovered) << sc.technique.label();
}

INSTANTIATE_TEST_SUITE_P(AllBasicTechniques, SizingSweep,
                         ::testing::Range(0, 25));

} // namespace
} // namespace bpsim
