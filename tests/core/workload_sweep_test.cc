/**
 * @file
 * Cross-product property sweep: every paper workload × representative
 * techniques × outage durations. Invariants checked per cell: sized
 * backups are feasible, results land in physical ranges, downtime
 * accounting is consistent with availability, and save-state defenses
 * never lose state.
 */

#include <gtest/gtest.h>

#include "core/analyzer.hh"

namespace bpsim
{
namespace
{

struct Cell
{
    int workload; // index into allPaperWorkloads()
    int technique;
    double outageMin;
};

std::vector<TechniqueSpec>
sweepTechniques()
{
    return {
        {TechniqueKind::Throttle, 6, 0, 0, false},
        {TechniqueKind::Sleep, 0, 0, 0, true},
        {TechniqueKind::Hibernate, 0, 0, 0, false},
        {TechniqueKind::ProactiveHibernate, 0, 0, 0, false},
        {TechniqueKind::Migration, 0, 0, 0, false},
        {TechniqueKind::ThrottleSleep, 5, 0, 5 * kMinute, true},
    };
}

class WorkloadSweep
    : public ::testing::TestWithParam<std::tuple<int, int, double>>
{
};

TEST_P(WorkloadSweep, SizedBackupIsFeasibleAndPhysical)
{
    const auto [w_idx, t_idx, minutes] = GetParam();
    Scenario sc;
    sc.profile = allPaperWorkloads()[static_cast<std::size_t>(w_idx)];
    sc.nServers = 4;
    sc.outageDuration = fromMinutes(minutes);
    sc.settleAfter = fromHours(3.0);
    sc.technique =
        sweepTechniques()[static_cast<std::size_t>(t_idx)];

    Analyzer a;
    const auto ev = a.sizeUpsOnly(sc);

    EXPECT_TRUE(ev.feasible)
        << sc.profile.name << " / " << sc.technique.label();
    EXPECT_TRUE(ev.result.recovered)
        << sc.profile.name << " / " << sc.technique.label();

    // Physical ranges.
    EXPECT_GE(ev.result.perfDuringOutage, 0.0);
    EXPECT_LE(ev.result.perfDuringOutage, 1.0 + 1e-9);
    EXPECT_GE(ev.result.availabilityDuringOutage, 0.0);
    EXPECT_LE(ev.result.availabilityDuringOutage, 1.0 + 1e-9);
    EXPECT_GE(ev.result.downtimeSec, -1e-9);
    EXPECT_GE(ev.capacity.upsKw, 0.0);
    EXPECT_LE(ev.capacity.upsKw, 4 * 0.25 * 1.001);
    EXPECT_GE(ev.capacity.upsRuntimeSec, 120.0); // free-runtime floor
    EXPECT_GT(ev.costPerYr, 0.0);

    // Downtime can never exceed the observed window plus recompute.
    const double window_sec =
        toSeconds(sc.outageDuration + sc.settleAfter);
    EXPECT_LE(ev.result.downtimeSec,
              window_sec + sc.profile.recomputeMaxSec + 1.0);

    // Energy bookkeeping: delivered battery energy is positive and
    // bounded by capacity at rated draw... loosely: the Peukert charge
    // consumed never exceeds the sized runtime.
    EXPECT_LE(ev.result.peukertRuntimeSec,
              ev.capacity.upsRuntimeSec + 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllCells, WorkloadSweep,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(0, 1, 2, 3, 4, 5),
                       ::testing::Values(0.5, 30.0, 120.0)));

/** Save-state defenses never lose state, for every workload. */
class SaveStateSweep
    : public ::testing::TestWithParam<std::tuple<int, double>>
{
};

TEST_P(SaveStateSweep, NoStateLossUnderSleep)
{
    const auto [w_idx, minutes] = GetParam();
    Scenario sc;
    sc.profile = allPaperWorkloads()[static_cast<std::size_t>(w_idx)];
    sc.nServers = 4;
    sc.outageDuration = fromMinutes(minutes);
    sc.technique = {TechniqueKind::Sleep, 0, 0, 0, true};
    Analyzer a;
    const auto ev = a.sizeUpsOnly(sc);
    EXPECT_TRUE(ev.feasible);
    EXPECT_EQ(ev.result.losses, 0);
    // Downtime ~ outage + resume (+ hibernation-free: no preload).
    EXPECT_NEAR(ev.result.downtimeSec,
                minutes * 60.0 + sc.profile.sleepResumeSec, 25.0)
        << sc.profile.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, SaveStateSweep,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(1.0, 15.0, 60.0, 240.0)));

/** Sized cost is monotone in outage duration for sustain techniques. */
class DurationMonotoneSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(DurationMonotoneSweep, CostGrowsWithDuration)
{
    Scenario sc;
    sc.profile =
        allPaperWorkloads()[static_cast<std::size_t>(GetParam())];
    sc.nServers = 4;
    sc.technique = {TechniqueKind::Throttle, 5, 0, 0, false};
    Analyzer a;
    double prev = 0.0;
    for (double minutes : {2.0, 10.0, 30.0, 90.0}) {
        sc.outageDuration = fromMinutes(minutes);
        const auto ev = a.sizeUpsOnly(sc);
        EXPECT_GE(ev.costPerYr, prev - 1e-9) << sc.profile.name;
        prev = ev.costPerYr;
    }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, DurationMonotoneSweep,
                         ::testing::Values(0, 1, 2, 3));

} // namespace
} // namespace bpsim
