/**
 * @file
 * Tests for the battery-technology variants (Section 7): Li-ion cost
 * structure and flatter rate capability, and their effect on technique
 * economics.
 */

#include <gtest/gtest.h>

#include "core/analyzer.hh"
#include "power/battery.hh"

namespace bpsim
{
namespace
{

TEST(BatteryTech, LeadAcidParamsAreTable1)
{
    const auto p = leadAcidCostParams();
    EXPECT_DOUBLE_EQ(p.dgPowerCostPerKwYr, 83.3);
    EXPECT_DOUBLE_EQ(p.upsPowerCostPerKwYr, 50.0);
    EXPECT_DOUBLE_EQ(p.upsEnergyCostPerKwhYr, 50.0);
}

TEST(BatteryTech, LiIonEnergyDearerPowerCheaper)
{
    const auto li = liIonCostParams();
    const auto pb = leadAcidCostParams();
    EXPECT_LT(li.upsPowerCostPerKwYr, pb.upsPowerCostPerKwYr);
    EXPECT_GT(li.upsEnergyCostPerKwhYr, pb.upsEnergyCostPerKwhYr);
}

TEST(BatteryTech, LiIonRuntimeNearlyInverseInLoad)
{
    PeukertBattery::Params p;
    p.ratedPowerW = 4000.0;
    p.runtimeAtRatedSec = 600.0;
    p.peukertExponent = kLiIonPeukertExponent;
    const PeukertBattery li(p);
    // At quarter load a lead-acid string stretches 6.0x; Li-ion only
    // ~4.3x (close to the ideal 4x of a perfect energy reservoir).
    const double stretch =
        toSeconds(li.runtimeAtLoad(1000.0)) / 600.0;
    EXPECT_GT(stretch, 4.0);
    EXPECT_LT(stretch, 4.6);
}

TEST(BatteryTech, LiIonShrinksTheDgFreeCoverageWindow)
{
    // Lead-acid UPS energy beats the DG below ~42 min; dearer Li-ion
    // energy moves that crossover earlier.
    const CostModel pb{leadAcidCostParams()};
    const CostModel li{liIonCostParams()};
    auto crossover = [](const CostModel &m) {
        for (double t = 1.0; t < 120.0; t += 0.25) {
            if (m.upsCostPerYr(1.0, t * 60.0) >= m.dgCostPerYr(1.0))
                return t;
        }
        return 120.0;
    };
    const double pb_min = crossover(pb);
    const double li_min = crossover(li);
    EXPECT_NEAR(pb_min, 42.0, 1.0);
    EXPECT_LT(li_min, pb_min);
}

TEST(BatteryTech, LiIonFavorsEnergyFrugalTechniques)
{
    // Section 7: "higher energy cost may prefer more energy saving
    // techniques such as proactive hibernation ... compared to peak
    // reduction techniques such as Throttling." Compare the two
    // techniques' backup costs for a 30-minute Specjbb outage under
    // both economics: throttling loses more ground under Li-ion.
    Scenario sc;
    sc.profile = specJbbProfile();
    sc.nServers = 8;
    sc.outageDuration = fromMinutes(30.0);

    auto ratio = [&sc](const CostParams &params, double k) {
        Analyzer a{CostModel{params}};
        Scenario s = sc;
        s.upsPeukertExponent = k;
        s.technique = {TechniqueKind::Throttle, 6, 0, 0, false};
        const double throttle = a.sizeUpsOnly(s).costPerYr;
        s.technique = {TechniqueKind::ProactiveHibernate, 0, 0, 0, true};
        const double hibernate = a.sizeUpsOnly(s).costPerYr;
        return throttle / hibernate;
    };

    const double pb_ratio = ratio(leadAcidCostParams(), 0.0);
    const double li_ratio =
        ratio(liIonCostParams(), kLiIonPeukertExponent);
    EXPECT_GT(li_ratio, pb_ratio);
}

TEST(BatteryTech, PeukertExponentFlowsThroughScenario)
{
    // A flatter exponent means a sustained sub-rated load consumes
    // *more* of the rated runtime, so the sized runtime grows.
    Scenario sc;
    sc.profile = specJbbProfile();
    sc.nServers = 8;
    sc.outageDuration = fromMinutes(30.0);
    sc.technique = {TechniqueKind::ThrottleSleep, 5, 0, 10 * kMinute,
                    true};
    Analyzer a;
    Scenario pb = sc;
    const auto sized_pb = a.sizeUpsOnly(pb);
    Scenario li = sc;
    li.upsPeukertExponent = kLiIonPeukertExponent;
    const auto sized_li = a.sizeUpsOnly(li);
    EXPECT_TRUE(sized_pb.feasible);
    EXPECT_TRUE(sized_li.feasible);
    EXPECT_GT(sized_li.capacity.upsRuntimeSec,
              sized_pb.capacity.upsRuntimeSec);
}

} // namespace
} // namespace bpsim
