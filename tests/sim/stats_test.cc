/**
 * @file
 * Tests for SummaryStats, Histogram and TimeWeightedMean.
 */

#include <gtest/gtest.h>

#include "sim/stats.hh"

namespace bpsim
{
namespace
{

// Pins the documented empty-state contract: EVERY accessor of an
// empty collector returns exactly 0 (not NaN, not a sentinel), so
// zero-trial shards and empty analyzer windows serialize cleanly.
TEST(SummaryStats, EmptyIsAllZero)
{
    SummaryStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 0.0);
    EXPECT_DOUBLE_EQ(s.max(), 0.0);
    EXPECT_DOUBLE_EQ(s.sum(), 0.0);
}

TEST(SummaryStats, SingleSample)
{
    SummaryStats s;
    s.add(4.0);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 4.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 4.0);
    EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(SummaryStats, KnownMoments)
{
    SummaryStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 4.0); // classic textbook example
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(SummaryStats, NegativeValues)
{
    SummaryStats s;
    s.add(-3.0);
    s.add(3.0);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), -3.0);
    EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(Histogram, BinsAndEdges)
{
    Histogram h(0.0, 10.0, 5);
    EXPECT_EQ(h.bins(), 5u);
    EXPECT_DOUBLE_EQ(h.binLo(0), 0.0);
    EXPECT_DOUBLE_EQ(h.binHi(0), 2.0);
    EXPECT_DOUBLE_EQ(h.binLo(4), 8.0);
    EXPECT_DOUBLE_EQ(h.binHi(4), 10.0);
}

TEST(Histogram, SamplesLandInCorrectBins)
{
    Histogram h(0.0, 10.0, 5);
    h.add(0.0);
    h.add(1.99);
    h.add(2.0);
    h.add(9.99);
    EXPECT_EQ(h.binCount(0), 2u);
    EXPECT_EQ(h.binCount(1), 1u);
    EXPECT_EQ(h.binCount(4), 1u);
    EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, OutOfRangeGoesToOverUnderflow)
{
    Histogram h(0.0, 1.0, 2);
    h.add(-0.1);
    h.add(1.0); // hi edge is exclusive
    h.add(5.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, BinFractionNormalizesInRangeOnly)
{
    Histogram h(0.0, 4.0, 2);
    h.add(1.0);
    h.add(1.0);
    h.add(3.0);
    h.add(99.0); // overflow, excluded from fractions
    EXPECT_DOUBLE_EQ(h.binFraction(0), 2.0 / 3.0);
    EXPECT_DOUBLE_EQ(h.binFraction(1), 1.0 / 3.0);
}

TEST(Histogram, RejectsDegenerateConstruction)
{
    EXPECT_DEATH(Histogram(1.0, 1.0, 4), "empty");
    EXPECT_DEATH(Histogram(0.0, 1.0, 0), "at least one bin");
}

TEST(TimeWeightedMean, WeighsByDuration)
{
    TimeWeightedMean m;
    m.add(10 * kSecond, 1.0);
    m.add(30 * kSecond, 0.0);
    EXPECT_DOUBLE_EQ(m.mean(), 0.25);
    EXPECT_EQ(m.duration(), 40 * kSecond);
}

TEST(TimeWeightedMean, EmptyIsZero)
{
    TimeWeightedMean m;
    EXPECT_DOUBLE_EQ(m.mean(), 0.0);
}

TEST(TimeWeightedMean, ZeroDurationContributesNothing)
{
    TimeWeightedMean m;
    m.add(0, 100.0);
    m.add(kSecond, 2.0);
    EXPECT_DOUBLE_EQ(m.mean(), 2.0);
}

} // namespace
} // namespace bpsim
