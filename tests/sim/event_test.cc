/**
 * @file
 * Unit tests for Event / EventHandle / EventQueue ordering semantics.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event.hh"

namespace bpsim
{
namespace
{

TEST(EventQueue, EmptyInitially)
{
    EventQueue q;
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.nextTime(), kTimeNever);
}

TEST(EventQueue, PopsInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.push(30 * kSecond, EventPriority::Normal,
           [&] { order.push_back(3); }, "c");
    q.push(10 * kSecond, EventPriority::Normal,
           [&] { order.push_back(1); }, "a");
    q.push(20 * kSecond, EventPriority::Normal,
           [&] { order.push_back(2); }, "b");
    while (!q.empty())
        q.pop()->execute();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, PriorityBreaksTimestampTies)
{
    EventQueue q;
    std::vector<int> order;
    q.push(kSecond, EventPriority::Stats, [&] { order.push_back(3); }, "s");
    q.push(kSecond, EventPriority::Power, [&] { order.push_back(1); }, "p");
    q.push(kSecond, EventPriority::Normal, [&] { order.push_back(2); },
           "n");
    while (!q.empty())
        q.pop()->execute();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, InsertionOrderBreaksFullTies)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i) {
        q.push(kSecond, EventPriority::Normal,
               [&order, i] { order.push_back(i); }, "e");
    }
    while (!q.empty())
        q.pop()->execute();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CancelledEventIsSkipped)
{
    EventQueue q;
    bool ran = false;
    auto h = q.push(kSecond, EventPriority::Normal, [&] { ran = true; },
                    "victim");
    EXPECT_TRUE(h.pending());
    h.cancel();
    EXPECT_FALSE(h.pending());
    EXPECT_TRUE(q.empty());
    EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelOneOfManyLeavesOthers)
{
    EventQueue q;
    int ran = 0;
    auto h1 = q.push(kSecond, EventPriority::Normal, [&] { ++ran; }, "a");
    q.push(2 * kSecond, EventPriority::Normal, [&] { ++ran; }, "b");
    h1.cancel();
    EXPECT_EQ(q.nextTime(), 2 * kSecond);
    while (!q.empty())
        q.pop()->execute();
    EXPECT_EQ(ran, 1);
}

TEST(EventHandle, DefaultHandleIsInert)
{
    EventHandle h;
    EXPECT_FALSE(h.pending());
    EXPECT_EQ(h.when(), kTimeNever);
    h.cancel(); // must not crash
}

TEST(EventHandle, WhenReportsScheduledTime)
{
    EventQueue q;
    auto h = q.push(42 * kSecond, EventPriority::Normal, [] {}, "x");
    EXPECT_EQ(h.when(), 42 * kSecond);
    q.pop()->execute();
    EXPECT_EQ(h.when(), kTimeNever);
}

TEST(Event, ExecuteRunsOnlyOnce)
{
    int runs = 0;
    Event ev(0, EventPriority::Normal, 0, [&] { ++runs; }, "once");
    ev.execute();
    ev.execute();
    EXPECT_EQ(runs, 1);
}

TEST(Event, CancelledEventNeverRuns)
{
    int runs = 0;
    Event ev(0, EventPriority::Normal, 0, [&] { ++runs; }, "never");
    ev.cancel();
    ev.execute();
    EXPECT_EQ(runs, 0);
}

} // namespace
} // namespace bpsim
