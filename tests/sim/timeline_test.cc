/**
 * @file
 * Unit and property tests for the piecewise-constant Timeline.
 */

#include <gtest/gtest.h>

#include "sim/random.hh"
#include "sim/timeline.hh"

namespace bpsim
{
namespace
{

TEST(Timeline, InitialValueHoldsBeforeAnySample)
{
    Timeline tl(3.5);
    EXPECT_DOUBLE_EQ(tl.valueAt(0), 3.5);
    EXPECT_DOUBLE_EQ(tl.valueAt(kHour), 3.5);
    EXPECT_DOUBLE_EQ(tl.lastValue(), 3.5);
}

TEST(Timeline, StepChangeTakesEffectAtItsTimestamp)
{
    Timeline tl(0.0);
    tl.record(10 * kSecond, 2.0);
    EXPECT_DOUBLE_EQ(tl.valueAt(10 * kSecond - 1), 0.0);
    EXPECT_DOUBLE_EQ(tl.valueAt(10 * kSecond), 2.0);
    EXPECT_DOUBLE_EQ(tl.valueAt(kHour), 2.0);
}

TEST(Timeline, ReRecordingAtSameTimestampOverwrites)
{
    Timeline tl(0.0);
    tl.record(kSecond, 1.0);
    tl.record(kSecond, 7.0);
    EXPECT_DOUBLE_EQ(tl.valueAt(kSecond), 7.0);
    EXPECT_EQ(tl.size(), 1u);
}

TEST(Timeline, RecordingUnchangedValueIsElided)
{
    Timeline tl(5.0);
    tl.record(kSecond, 5.0);
    EXPECT_EQ(tl.size(), 0u);
    tl.record(2 * kSecond, 6.0);
    tl.record(3 * kSecond, 6.0);
    EXPECT_EQ(tl.size(), 1u);
}

TEST(Timeline, IntegrateConstantSegment)
{
    Timeline tl(2.0);
    // 2.0 for 10 s -> 20 value-seconds.
    EXPECT_DOUBLE_EQ(tl.integrate(0, 10 * kSecond), 20.0);
}

TEST(Timeline, IntegrateAcrossSteps)
{
    Timeline tl(1.0);
    tl.record(10 * kSecond, 3.0);
    tl.record(20 * kSecond, 0.0);
    // 1*10 + 3*10 + 0*10 = 40.
    EXPECT_DOUBLE_EQ(tl.integrate(0, 30 * kSecond), 40.0);
}

TEST(Timeline, IntegrateWindowClipsPartialSegments)
{
    Timeline tl(0.0);
    tl.record(10 * kSecond, 4.0);
    tl.record(20 * kSecond, 0.0);
    // Window [15 s, 25 s): 4 * 5 + 0 * 5 = 20.
    EXPECT_DOUBLE_EQ(tl.integrate(15 * kSecond, 25 * kSecond), 20.0);
}

TEST(Timeline, AverageOfEmptyWindowIsPointValue)
{
    Timeline tl(0.0);
    tl.record(kSecond, 9.0);
    EXPECT_DOUBLE_EQ(tl.average(2 * kSecond, 2 * kSecond), 9.0);
}

TEST(Timeline, AverageWeighsByDuration)
{
    Timeline tl(1.0);
    tl.record(30 * kSecond, 0.0);
    // [0, 60): 1.0 for half the time.
    EXPECT_DOUBLE_EQ(tl.average(0, 60 * kSecond), 0.5);
}

TEST(Timeline, MinMaxOverWindow)
{
    Timeline tl(5.0);
    tl.record(10 * kSecond, 1.0);
    tl.record(20 * kSecond, 8.0);
    EXPECT_DOUBLE_EQ(tl.minOver(0, 30 * kSecond), 1.0);
    EXPECT_DOUBLE_EQ(tl.maxOver(0, 30 * kSecond), 8.0);
    // A window that sees only the middle segment.
    EXPECT_DOUBLE_EQ(tl.maxOver(12 * kSecond, 18 * kSecond), 1.0);
}

TEST(Timeline, TimeBelowThreshold)
{
    Timeline tl(1.0);
    tl.record(10 * kSecond, 0.2);
    tl.record(40 * kSecond, 1.0);
    EXPECT_EQ(tl.timeBelow(0, 60 * kSecond, 0.5), 30 * kSecond);
    EXPECT_EQ(tl.timeBelow(0, 60 * kSecond, 0.1), 0);
    // Threshold is strict: a value exactly at it does not count.
    EXPECT_EQ(tl.timeBelow(0, 60 * kSecond, 0.2), 0);
}

TEST(Timeline, RejectsOutOfOrderSamples)
{
    Timeline tl(0.0);
    tl.record(10 * kSecond, 1.0);
    EXPECT_DEATH(tl.record(5 * kSecond, 2.0), "precedes");
}

TEST(Timeline, RejectsInvertedQueryWindow)
{
    Timeline tl(0.0);
    EXPECT_DEATH(tl.integrate(kSecond, 0), "inverted");
}

/**
 * Property: for random step sequences, integral over [a, c) equals
 * integral over [a, b) plus [b, c), and the average lies within
 * [min, max] of the window.
 */
TEST(TimelineProperty, IntegralIsAdditiveAndAverageBounded)
{
    Rng rng(1234);
    for (int trial = 0; trial < 50; ++trial) {
        Timeline tl(rng.uniform(0.0, 2.0));
        Time t = 0;
        for (int i = 0; i < 20; ++i) {
            t += fromSeconds(rng.uniform(0.1, 100.0));
            tl.record(t, rng.uniform(0.0, 10.0));
        }
        const Time a = fromSeconds(rng.uniform(0.0, 500.0));
        const Time c = a + fromSeconds(rng.uniform(1.0, 1000.0));
        const Time b = a + (c - a) / 2;
        const double whole = tl.integrate(a, c);
        const double parts = tl.integrate(a, b) + tl.integrate(b, c);
        EXPECT_NEAR(whole, parts, 1e-6 * (1.0 + std::abs(whole)));

        const double avg = tl.average(a, c);
        EXPECT_GE(avg, tl.minOver(a, c) - 1e-9);
        EXPECT_LE(avg, tl.maxOver(a, c) + 1e-9);
    }
}

/** Property: timeBelow is monotone in the threshold. */
TEST(TimelineProperty, TimeBelowMonotoneInThreshold)
{
    Rng rng(99);
    Timeline tl(0.5);
    Time t = 0;
    for (int i = 0; i < 30; ++i) {
        t += fromSeconds(rng.uniform(0.5, 50.0));
        tl.record(t, rng.uniform(0.0, 1.0));
    }
    Time prev = 0;
    for (double thr : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0, 1.2}) {
        const Time below = tl.timeBelow(0, t + kSecond, thr);
        EXPECT_GE(below, prev);
        prev = below;
    }
}

} // namespace
} // namespace bpsim
