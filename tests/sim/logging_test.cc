/**
 * @file
 * Tests for the logging/error helpers.
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"

namespace bpsim
{
namespace
{

TEST(Logging, FormatStringBasics)
{
    EXPECT_EQ(formatString("plain"), "plain");
    EXPECT_EQ(formatString("%d-%s", 42, "x"), "42-x");
    EXPECT_EQ(formatString("%.2f", 3.14159), "3.14");
}

TEST(Logging, FormatStringLongOutput)
{
    // Exercise the two-pass vsnprintf sizing path.
    std::string big(5000, 'a');
    const std::string out = formatString("<%s>", big.c_str());
    EXPECT_EQ(out.size(), big.size() + 2);
    EXPECT_EQ(out.front(), '<');
    EXPECT_EQ(out.back(), '>');
}

TEST(Logging, PanicAborts)
{
    EXPECT_DEATH(panic("boom %d", 7), "panic: boom 7");
}

TEST(Logging, FatalExitsWithOne)
{
    EXPECT_EXIT(fatal("bad config %s", "x"),
                ::testing::ExitedWithCode(1), "fatal: bad config x");
}

TEST(Logging, AssertMacroCarriesContext)
{
    const int value = 3;
    EXPECT_DEATH(BPSIM_ASSERT(value == 4, "value was %d", value),
                 "assertion 'value == 4' failed.*value was 3");
}

TEST(Logging, AssertPassesSilently)
{
    BPSIM_ASSERT(1 + 1 == 2, "unreachable");
    SUCCEED();
}

} // namespace
} // namespace bpsim
