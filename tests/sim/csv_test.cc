/**
 * @file
 * Tests for the CSV timeline exporter.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/csv.hh"

namespace bpsim
{
namespace
{

std::vector<std::string>
lines(const std::string &s)
{
    std::vector<std::string> out;
    std::istringstream is(s);
    std::string line;
    while (std::getline(is, line))
        out.push_back(line);
    return out;
}

TEST(Csv, StepExportEmitsOneRowPerChange)
{
    Timeline a(0.0), b(1.0);
    a.record(10 * kSecond, 5.0);
    b.record(20 * kSecond, 2.0);
    std::ostringstream os;
    writeTimelinesCsv(os, {{"a", &a}, {"b", &b}}, 0, 30 * kSecond);
    const auto rows = lines(os.str());
    ASSERT_EQ(rows.size(), 5u); // header + 0,10,20,30
    EXPECT_EQ(rows[0], "time_s,a,b");
    EXPECT_EQ(rows[1], "0,0,1");
    EXPECT_EQ(rows[2], "10,5,1");
    EXPECT_EQ(rows[3], "20,5,2");
    EXPECT_EQ(rows[4], "30,5,2");
}

TEST(Csv, StepExportClipsToWindow)
{
    Timeline a(0.0);
    a.record(kSecond, 1.0);
    a.record(kMinute, 2.0);
    a.record(kHour, 3.0);
    std::ostringstream os;
    writeTimelinesCsv(os, {{"a", &a}}, 30 * kSecond, 2 * kMinute);
    const auto rows = lines(os.str());
    // header + window start (value 1), the 60 s step, window end.
    ASSERT_EQ(rows.size(), 4u);
    EXPECT_EQ(rows[1], "30,1");
    EXPECT_EQ(rows[2], "60,2");
    EXPECT_EQ(rows[3], "120,2");
}

TEST(Csv, SampledExportHasFixedPeriod)
{
    Timeline a(0.0);
    a.record(15 * kSecond, 7.0);
    std::ostringstream os;
    writeSampledCsv(os, {{"a", &a}}, 0, kMinute, 10 * kSecond);
    const auto rows = lines(os.str());
    ASSERT_EQ(rows.size(), 8u); // header + 0..50 step 10 + 60
    EXPECT_EQ(rows[1], "0,0");
    EXPECT_EQ(rows[3], "20,7");
    EXPECT_EQ(rows[7], "60,7");
}

TEST(Csv, CoincidentChangesShareARow)
{
    Timeline a(0.0), b(0.0);
    a.record(kSecond, 1.0);
    b.record(kSecond, 2.0);
    std::ostringstream os;
    writeTimelinesCsv(os, {{"a", &a}, {"b", &b}}, 0, 2 * kSecond);
    const auto rows = lines(os.str());
    ASSERT_EQ(rows.size(), 4u);
    EXPECT_EQ(rows[2], "1,1,2");
}

TEST(Csv, RejectsBadInput)
{
    Timeline a(0.0);
    std::ostringstream os;
    EXPECT_DEATH(writeTimelinesCsv(os, {}, 0, kSecond), "no series");
    EXPECT_DEATH(writeTimelinesCsv(os, {{"a", nullptr}}, 0, kSecond),
                 "null timeline");
    EXPECT_DEATH(writeSampledCsv(os, {{"a", &a}}, 0, kSecond, 0),
                 "period");
}

} // namespace
} // namespace bpsim
