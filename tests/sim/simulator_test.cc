/**
 * @file
 * Unit tests for the Simulator kernel: clock advance, scheduling,
 * runUntil semantics, stop(), and error conditions.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hh"

namespace bpsim
{
namespace
{

TEST(Simulator, StartsAtTimeZero)
{
    Simulator sim;
    EXPECT_EQ(sim.now(), 0);
}

TEST(Simulator, ClockAdvancesToEventTimes)
{
    Simulator sim;
    std::vector<Time> seen;
    sim.schedule(5 * kSecond, [&] { seen.push_back(sim.now()); });
    sim.schedule(kMinute, [&] { seen.push_back(sim.now()); });
    sim.run();
    EXPECT_EQ(seen, (std::vector<Time>{5 * kSecond, kMinute}));
    EXPECT_EQ(sim.now(), kMinute);
}

TEST(Simulator, EventsCanScheduleMoreEvents)
{
    Simulator sim;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 5)
            sim.schedule(kSecond, chain);
    };
    sim.schedule(kSecond, chain);
    sim.run();
    EXPECT_EQ(depth, 5);
    EXPECT_EQ(sim.now(), 5 * kSecond);
}

TEST(Simulator, RunUntilStopsAtLimitAndAdvancesClock)
{
    Simulator sim;
    bool late_ran = false;
    sim.schedule(kHour, [&] { late_ran = true; });
    sim.runUntil(kMinute);
    EXPECT_FALSE(late_ran);
    EXPECT_EQ(sim.now(), kMinute);
    // Continuing past the limit executes the event.
    sim.runUntil(2 * kHour);
    EXPECT_TRUE(late_ran);
}

TEST(Simulator, RunUntilWithEmptyQueueAdvancesToLimit)
{
    Simulator sim;
    sim.runUntil(10 * kMinute);
    EXPECT_EQ(sim.now(), 10 * kMinute);
}

TEST(Simulator, EventExactlyAtLimitRuns)
{
    Simulator sim;
    bool ran = false;
    sim.schedule(kMinute, [&] { ran = true; });
    sim.runUntil(kMinute);
    EXPECT_TRUE(ran);
}

TEST(Simulator, StopHaltsTheLoop)
{
    Simulator sim;
    int ran = 0;
    sim.schedule(kSecond, [&] {
        ++ran;
        sim.stop();
    });
    sim.schedule(2 * kSecond, [&] { ++ran; });
    sim.run();
    EXPECT_EQ(ran, 1);
    EXPECT_EQ(sim.now(), kSecond);
}

TEST(Simulator, CancelledEventDoesNotRun)
{
    Simulator sim;
    bool ran = false;
    auto h = sim.schedule(kSecond, [&] { ran = true; });
    h.cancel();
    sim.run();
    EXPECT_FALSE(ran);
}

TEST(Simulator, AbsoluteSchedulingWithAt)
{
    Simulator sim;
    Time seen = -1;
    sim.schedule(kSecond, [&] {
        sim.at(10 * kSecond, [&] { seen = sim.now(); });
    });
    sim.run();
    EXPECT_EQ(seen, 10 * kSecond);
}

TEST(Simulator, ExecutedEventsCounter)
{
    Simulator sim;
    for (int i = 0; i < 7; ++i)
        sim.schedule(i * kSecond, [] {});
    sim.run();
    EXPECT_EQ(sim.executedEvents(), 7u);
}

TEST(Simulator, NegativeDelayPanics)
{
    Simulator sim;
    EXPECT_DEATH(sim.schedule(-1, [] {}), "negative delay");
}

TEST(Simulator, SchedulingInThePastPanics)
{
    Simulator sim;
    sim.schedule(kMinute, [&] {
        EXPECT_DEATH(sim.at(kSecond, [] {}), "in the past");
    });
    sim.run();
}

TEST(Simulator, SameTimeEventsRunInScheduleOrder)
{
    Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 4; ++i)
        sim.schedule(kSecond, [&order, i] { order.push_back(i); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

} // namespace
} // namespace bpsim
