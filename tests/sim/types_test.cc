/**
 * @file
 * Tests for the fundamental time/energy unit helpers.
 */

#include <gtest/gtest.h>

#include "sim/types.hh"

namespace bpsim
{
namespace
{

TEST(Types, TimeConstantsCompose)
{
    EXPECT_EQ(kSecond, 1000 * kMillisecond);
    EXPECT_EQ(kMinute, 60 * kSecond);
    EXPECT_EQ(kHour, 60 * kMinute);
    EXPECT_EQ(kMillisecond, 1000 * kMicrosecond);
}

TEST(Types, RoundTripSeconds)
{
    for (double s : {0.0, 0.001, 1.0, 59.9, 3600.0, 86400.0}) {
        EXPECT_NEAR(toSeconds(fromSeconds(s)), s, 1e-6);
    }
}

TEST(Types, MinutesAndHours)
{
    EXPECT_EQ(fromMinutes(2.0), 2 * kMinute);
    EXPECT_EQ(fromHours(1.5), 90 * kMinute);
    EXPECT_DOUBLE_EQ(toMinutes(90 * kSecond), 1.5);
    EXPECT_DOUBLE_EQ(toHours(45 * kMinute), 0.75);
}

TEST(Types, SubSecondResolution)
{
    // Microsecond resolution survives the round trip.
    const Time t = fromSeconds(0.000123);
    EXPECT_EQ(t, 123);
}

TEST(Types, EnergyConversions)
{
    EXPECT_DOUBLE_EQ(joulesToKwh(3.6e6), 1.0);
    EXPECT_DOUBLE_EQ(kwhToJoules(2.0), 7.2e6);
    EXPECT_DOUBLE_EQ(joulesToKwh(kwhToJoules(0.123)), 0.123);
}

TEST(Types, EnergyOverInterval)
{
    // 100 W for one hour = 0.1 kWh.
    EXPECT_DOUBLE_EQ(joulesToKwh(energyOver(100.0, kHour)), 0.1);
    EXPECT_DOUBLE_EQ(energyOver(250.0, 0), 0.0);
}

TEST(Types, NeverIsHuge)
{
    EXPECT_GT(kTimeNever, 1000LL * 365 * 24 * kHour);
}

} // namespace
} // namespace bpsim
