/**
 * @file
 * Tests for the deterministic RNG and its distributions.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "sim/random.hh"

namespace bpsim
{
namespace
{

TEST(Rng, SameSeedSameStream)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.nextU64(), b.nextU64());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.nextU64() == b.nextU64())
            ++same;
    }
    EXPECT_EQ(same, 0);
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double x = rng.nextDouble();
        ASSERT_GE(x, 0.0);
        ASSERT_LT(x, 1.0);
    }
}

TEST(Rng, NextBoundedStaysInRange)
{
    Rng rng(7);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 5000; ++i) {
        const auto v = rng.nextBounded(13);
        ASSERT_LT(v, 13u);
        seen.insert(v);
    }
    // All 13 residues should appear in 5000 draws.
    EXPECT_EQ(seen.size(), 13u);
}

TEST(Rng, UniformRespectsBounds)
{
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.uniform(-2.5, 4.5);
        ASSERT_GE(x, -2.5);
        ASSERT_LT(x, 4.5);
    }
}

TEST(Rng, ExponentialMeanConverges)
{
    Rng rng(11);
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(5.0);
    EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, GaussianMomentsConverge)
{
    Rng rng(13);
    double sum = 0.0, sq = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.gaussian(2.0, 3.0);
        sum += x;
        sq += x * x;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 2.0, 0.05);
    EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(Rng, DiscreteMatchesWeights)
{
    Rng rng(17);
    const std::vector<double> w{1.0, 3.0, 6.0};
    std::vector<int> counts(3, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.discrete(w)];
    EXPECT_NEAR(counts[0] / double(n), 0.1, 0.01);
    EXPECT_NEAR(counts[1] / double(n), 0.3, 0.01);
    EXPECT_NEAR(counts[2] / double(n), 0.6, 0.01);
}

TEST(Rng, DiscreteSkipsZeroWeightBuckets)
{
    Rng rng(19);
    const std::vector<double> w{0.0, 1.0, 0.0};
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(rng.discrete(w), 1u);
}

TEST(Rng, DiscreteRejectsAllZeroWeights)
{
    Rng rng(23);
    EXPECT_DEATH(rng.discrete({0.0, 0.0}), "positive total weight");
}

TEST(Rng, ForkedStreamsAreDecorrelated)
{
    Rng parent(29);
    Rng a = parent.fork(0);
    Rng b = parent.fork(1);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.nextU64() == b.nextU64())
            ++same;
    }
    EXPECT_EQ(same, 0);
}

TEST(Rng, ForkChildrenPassBasicDecorrelation)
{
    // Children of one parent: distinct first outputs across a large
    // family, and child draws look uniform (mean near 1/2) with no
    // correlation between adjacent-id children.
    Rng parent(123);
    std::set<std::uint64_t> firsts;
    double mean = 0.0;
    double corr = 0.0;
    constexpr int kids = 1000;
    double prev = 0.0;
    for (int i = 0; i < kids; ++i) {
        Rng child = parent.fork(static_cast<std::uint64_t>(i));
        firsts.insert(child.nextU64());
        const double x = child.nextDouble();
        mean += x;
        if (i > 0)
            corr += (x - 0.5) * (prev - 0.5);
        prev = x;
    }
    EXPECT_EQ(firsts.size(), static_cast<std::size_t>(kids));
    EXPECT_NEAR(mean / kids, 0.5, 0.03);
    // Sample covariance of U(0,1) pairs has stddev ~1/(12 sqrt(n)).
    EXPECT_NEAR(corr / (kids - 1), 0.0, 0.01);
}

TEST(Rng, StreamIsOrderFree)
{
    // Rng::stream(seed, id) depends only on (seed, id): deriving the
    // streams in any order, or deriving only one of them, yields the
    // same generator state.
    Rng a = Rng::stream(42, 7);
    Rng ignored = Rng::stream(42, 3); // unrelated derivation in between
    (void)ignored.nextU64();
    Rng b = Rng::stream(42, 7);
    for (int i = 0; i < 100; ++i)
        ASSERT_EQ(a.nextU64(), b.nextU64());
}

TEST(Rng, StreamMatchesFreshFork)
{
    Rng root(9);
    Rng via_fork = root.fork(5);
    Rng via_stream = Rng::stream(9, 5);
    for (int i = 0; i < 100; ++i)
        ASSERT_EQ(via_fork.nextU64(), via_stream.nextU64());
}

TEST(Rng, StreamSiblingsAreDecorrelated)
{
    std::set<std::uint64_t> firsts;
    double mean = 0.0;
    constexpr int n = 1000;
    for (int i = 0; i < n; ++i) {
        Rng s = Rng::stream(77, static_cast<std::uint64_t>(i));
        firsts.insert(s.nextU64());
        mean += s.nextDouble();
    }
    EXPECT_EQ(firsts.size(), static_cast<std::size_t>(n));
    EXPECT_NEAR(mean / n, 0.5, 0.03);
}

TEST(SplitMix64, KnownFirstOutputs)
{
    // Reference values from the SplitMix64 reference implementation
    // with seed 1234567.
    SplitMix64 sm(1234567);
    EXPECT_EQ(sm.next(), 6457827717110365317ull);
    EXPECT_EQ(sm.next(), 3203168211198807973ull);
}

} // namespace
} // namespace bpsim
