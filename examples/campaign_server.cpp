/**
 * @file
 * The resident what-if server: campaign_sweep turned into a
 * long-running service. Start it, then ask availability questions
 * over HTTP — repeated questions are answered from the
 * content-addressed result cache without re-simulating, and the
 * alert rule book watches every run's live signals.
 *
 *     ./build/examples/campaign_server --port 8080 &
 *     curl -XPOST localhost:8080/v1/whatif \
 *         -d '{"config":"LargeEUPS","trials":200,"seed":2014}'
 *     curl localhost:8080/v1/alerts
 *     curl localhost:8080/metrics
 *     curl -XPOST localhost:8080/v1/shutdown
 *
 * See docs/SERVICE.md for the endpoint and schema contract.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <chrono>
#include <fstream>
#include <string>
#include <thread>

#include "service/service.hh"
#include "sim/logging.hh"

using namespace bpsim;

namespace
{

/** Set by SIGINT/SIGTERM; polled by the wait loop below. */
volatile std::sig_atomic_t g_signalled = 0;

void
onSignal(int)
{
    g_signalled = 1;
}

int
usage(std::FILE *to)
{
    std::fprintf(
        to,
        "usage: campaign_server [--port N] [--bind ADDR]\n"
        "                       [--port-file FILE] [--cache-entries N]\n"
        "                       [--cache-dir DIR] [--coalesce on|off]\n"
        "                       [--ckpt-max-bytes N]\n"
        "                       [--max-trials N] [--sample-seconds S]\n"
        "                       [--access-log FILE] [--slow-ms N]\n"
        "                       [--request-trace FILE]\n"
        "                       [--request-obs on|off]\n"
        "                       [--history on|off]\n"
        "                       [--history-cadence S]\n"
        "                       [--history-retention S]\n"
        "                       [--no-alerts] [--help]\n"
        "\n"
        "Resident what-if query server (see docs/SERVICE.md):\n"
        "  POST /v1/whatif    scenario JSON -> campaign summary JSON\n"
        "  GET  /v1/alerts    alert-rule states\n"
        "  GET  /metrics      OpenMetrics exposition\n"
        "  GET  /healthz      liveness probe\n"
        "  GET  /v1/status    uptime, in-flight requests, cache sizes\n"
        "  GET  /v1/series    tiered metrics history\n"
        "  GET  /v1/alerts/history\n"
        "                     retained alert transitions\n"
        "  GET  /dashboard    self-contained live dashboard\n"
        "  POST /v1/shutdown  graceful stop\n"
        "\n"
        "  --port N           listen port (default 0 = ephemeral)\n"
        "  --bind ADDR        bind address (default 127.0.0.1)\n"
        "  --port-file FILE   write the bound port to FILE once "
        "listening\n"
        "  --cache-entries N  result-cache bound (default 256)\n"
        "  --cache-dir DIR    spill results/checkpoints to DIR and\n"
        "                     reload them after a restart (default "
        "off)\n"
        "  --coalesce on|off  share one execution across identical\n"
        "                     concurrent what-ifs (default on)\n"
        "  --ckpt-max-bytes N do not store checkpoints larger than N\n"
        "                     serialized bytes (default 1048576)\n"
        "  --max-trials N     per-query trial budget cap (default "
        "100000)\n"
        "  --sample-seconds S alert-signal sample cadence (default "
        "3600)\n"
        "  --access-log FILE  append one JSON line per request to "
        "FILE\n"
        "  --slow-ms N        requests taking >= N ms also log their\n"
        "                     full phase spans (default 1000; 0 marks\n"
        "                     every request slow)\n"
        "  --request-trace FILE\n"
        "                     write recent request timelines as a\n"
        "                     Chrome trace on shutdown\n"
        "  --request-obs on|off\n"
        "                     request span timing, latency histograms\n"
        "                     and the access log (default on)\n"
        "  --history on|off   background metrics sampler, /v1/series\n"
        "                     and /v1/alerts/history (default on)\n"
        "  --history-cadence S\n"
        "                     sampler tick period in seconds, > 0\n"
        "                     (default 1)\n"
        "  --history-retention S\n"
        "                     raw-tier history span in seconds, > 0;\n"
        "                     rollup tiers keep 10x/60x this\n"
        "                     (default 600)\n"
        "  --no-alerts        disable the alert-rule engine\n");
    return to == stdout ? 0 : 2;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuietLogging(true);

    service::ServiceOptions opts;
    std::string port_file;
    std::string request_trace;
    double sample_seconds = 0.0;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const char *val = i + 1 < argc ? argv[i + 1] : nullptr;
        if (arg == "--help" || arg == "-h") {
            return usage(stdout);
        } else if (arg == "--port" && val) {
            opts.http.port =
                static_cast<std::uint16_t>(std::atoi(val));
            ++i;
        } else if (arg == "--bind" && val) {
            opts.http.bindAddress = val;
            ++i;
        } else if (arg == "--port-file" && val) {
            port_file = val;
            ++i;
        } else if (arg == "--cache-entries" && val) {
            opts.cacheEntries =
                static_cast<std::size_t>(std::strtoull(val, nullptr, 10));
            ++i;
        } else if (arg == "--cache-dir" && val) {
            opts.cacheDir = val;
            ++i;
        } else if (arg == "--coalesce" && val) {
            const std::string v = val;
            if (v == "on") {
                opts.coalesce = true;
            } else if (v == "off") {
                opts.coalesce = false;
            } else {
                std::fprintf(stderr, "campaign_server: --coalesce "
                                     "takes \"on\" or \"off\", got "
                                     "\"%s\"\n",
                             v.c_str());
                return usage(stderr);
            }
            ++i;
        } else if (arg == "--ckpt-max-bytes" && val) {
            opts.checkpointMaxBytes =
                static_cast<std::size_t>(std::strtoull(val, nullptr, 10));
            ++i;
        } else if (arg == "--max-trials" && val) {
            opts.limits.maxTrials = std::strtoull(val, nullptr, 10);
            ++i;
        } else if (arg == "--sample-seconds" && val) {
            sample_seconds = std::atof(val);
            ++i;
        } else if (arg == "--access-log" && val) {
            opts.reqobs.accessLogPath = val;
            ++i;
        } else if (arg == "--slow-ms" && val) {
            char *end = nullptr;
            const unsigned long long v = std::strtoull(val, &end, 10);
            if (*val == '\0' || *val == '-' || end == val ||
                *end != '\0') {
                std::fprintf(stderr,
                             "campaign_server: --slow-ms needs a "
                             "non-negative integer, got \"%s\"\n",
                             val);
                return usage(stderr);
            }
            opts.reqobs.slowMs = v;
            ++i;
        } else if (arg == "--request-trace" && val) {
            request_trace = val;
            ++i;
        } else if (arg == "--request-obs" && val) {
            const std::string v = val;
            if (v == "on") {
                opts.reqobs.enabled = true;
            } else if (v == "off") {
                opts.reqobs.enabled = false;
            } else {
                std::fprintf(stderr, "campaign_server: --request-obs "
                                     "takes \"on\" or \"off\", got "
                                     "\"%s\"\n",
                             v.c_str());
                return usage(stderr);
            }
            ++i;
        } else if (arg == "--history" && val) {
            const std::string v = val;
            if (v == "on") {
                opts.history.enabled = true;
            } else if (v == "off") {
                opts.history.enabled = false;
            } else {
                std::fprintf(stderr, "campaign_server: --history "
                                     "takes \"on\" or \"off\", got "
                                     "\"%s\"\n",
                             v.c_str());
                return usage(stderr);
            }
            ++i;
        } else if (arg == "--history-cadence" && val) {
            char *end = nullptr;
            const double v = std::strtod(val, &end);
            if (*val == '\0' || end == val || *end != '\0' ||
                !(v > 0.0)) {
                std::fprintf(stderr,
                             "campaign_server: --history-cadence "
                             "needs a positive number of seconds, "
                             "got \"%s\"\n",
                             val);
                return usage(stderr);
            }
            opts.history.cadenceNs =
                static_cast<std::uint64_t>(v * 1e9);
            ++i;
        } else if (arg == "--history-retention" && val) {
            char *end = nullptr;
            const double v = std::strtod(val, &end);
            if (*val == '\0' || end == val || *end != '\0' ||
                !(v > 0.0)) {
                std::fprintf(stderr,
                             "campaign_server: --history-retention "
                             "needs a positive number of seconds, "
                             "got \"%s\"\n",
                             val);
                return usage(stderr);
            }
            opts.history.retentionNs =
                static_cast<std::uint64_t>(v * 1e9);
            ++i;
        } else if (arg == "--no-alerts") {
            opts.evaluateAlerts = false;
        } else {
            std::fprintf(stderr, "campaign_server: unknown argument "
                                 "\"%s\"\n",
                         arg.c_str());
            return usage(stderr);
        }
    }
    if (sample_seconds > 0.0)
        obs::setSampleCadence(fromSeconds(sample_seconds));

    // Fail fast on an unwritable access-log path: a long-lived server
    // silently dropping its audit trail is worse than not starting.
    if (!opts.reqobs.accessLogPath.empty()) {
        std::ofstream probe(opts.reqobs.accessLogPath,
                            std::ios::out | std::ios::app);
        if (!probe.good()) {
            std::fprintf(stderr,
                         "campaign_server: cannot open access log "
                         "\"%s\" for append\n",
                         opts.reqobs.accessLogPath.c_str());
            return 1;
        }
    }

    service::CampaignService server(opts);
    std::string err;
    if (!server.start(&err)) {
        std::fprintf(stderr, "campaign_server: %s\n", err.c_str());
        return 1;
    }
    std::printf("campaign_server listening on %s:%u (build %s, %d "
                "worker threads)\n",
                opts.http.bindAddress.c_str(), server.port(), buildId(),
                WorkStealingPool::hardwareThreads());
    std::fflush(stdout);
    if (!port_file.empty()) {
        std::ofstream os(port_file);
        os << server.port() << '\n';
    }

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    // Wait for either a POST /v1/shutdown (running() flips) or a
    // signal; both end with a drain of in-flight connections.
    while (server.running() && g_signalled == 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    server.stop();
    if (!request_trace.empty()) {
        std::ofstream os(request_trace, std::ios::out | std::ios::trunc);
        if (os.good())
            server.requestObserver().writeTrace(os);
        else
            std::fprintf(stderr,
                         "campaign_server: cannot write request trace "
                         "\"%s\"\n",
                         request_trace.c_str());
    }
    std::printf("campaign_server: stopped\n");
    return 0;
}
