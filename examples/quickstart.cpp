/**
 * @file
 * Quickstart: simulate one rack of Specjbb servers through a 5-minute
 * utility outage under a few backup configurations and techniques, and
 * print the cost / performance / downtime each one achieves.
 *
 * Build and run:
 *     cmake -B build -G Ninja && cmake --build build
 *     ./build/examples/quickstart
 */

#include <cstdio>

#include "core/analyzer.hh"
#include "core/selector.hh"
#include "sim/logging.hh"

using namespace bpsim;

int
main()
{
    setQuietLogging(true);

    Scenario sc;
    sc.profile = specJbbProfile();
    sc.nServers = 8;
    sc.outageDuration = fromMinutes(5);

    Analyzer analyzer;

    std::printf("Quickstart: 8-server Specjbb rack, 5-minute outage\n");
    std::printf("(cost normalized to today's MaxPerf provisioning)\n\n");
    std::printf("%-22s %-26s %8s %8s %10s %6s\n", "configuration",
                "technique", "cost", "perf", "downtime", "ok");

    // A few Table 3 configurations, each with the technique a datacenter
    // operator would pick for it.
    struct Row
    {
        BackupConfigSpec config;
        TechniqueSpec technique;
    };
    const ServerModel model{ServerModel::Params{}};
    const int p_deep = model.params().pStates - 1;
    const Row rows[] = {
        {maxPerfConfig(), {TechniqueKind::None}},
        {minCostConfig(), {TechniqueKind::None}},
        {noDgConfig(), {TechniqueKind::Throttle, p_deep, 0, 0, false}},
        {largeEUpsConfig(), {TechniqueKind::None}},
        {smallPLargeEUpsConfig(),
         {TechniqueKind::Throttle, pstateForPowerFraction(model, 0.5), 0, 0,
          false}},
        {noDgConfig(), {TechniqueKind::Sleep, 0, 0, 0, true}},
    };

    for (const auto &row : rows) {
        Scenario s = sc;
        s.technique = row.technique;
        const Evaluation ev = analyzer.evaluateConfig(s, row.config);
        std::printf("%-22s %-26s %8.2f %8.2f %9.1fs %6s\n",
                    row.config.name.c_str(),
                    row.technique.label().c_str(), ev.normalizedCost,
                    ev.result.perfDuringOutage, ev.result.downtimeSec,
                    ev.feasible ? "yes" : "NO");
    }

    // Let the selector do the choosing for one configuration.
    std::printf("\nSelector: best technique for NoDG across candidates\n");
    TechniqueSelector selector(analyzer);
    const auto best = selector.bestForConfig(
        sc, noDgConfig(), allCandidates(model, sc.outageDuration));
    std::printf("  -> %s: perf %.2f, downtime %.1fs, feasible=%s\n",
                best.spec.label().c_str(),
                best.eval.result.perfDuringOutage,
                best.eval.result.downtimeSec,
                best.eval.feasible ? "yes" : "no");

    // And trace the cost/performance Pareto frontier for this outage:
    // the whole spectrum of sensible operating points.
    std::printf("\nCost/perf frontier (minimally sized UPS-only "
                "backups):\n");
    const auto frontier = selector.costPerfFrontier(
        sc, allCandidates(model, sc.outageDuration));
    for (const auto &pt : frontier) {
        std::printf("  cost %.2f  perf %.2f  %s\n",
                    pt.eval.normalizedCost,
                    pt.eval.result.perfDuringOutage,
                    pt.spec.label().c_str());
    }
    return 0;
}
