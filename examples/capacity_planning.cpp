/**
 * @file
 * Capacity planning: pick the cheapest backup provisioning for a
 * datacenter that must meet availability and performance targets
 * against the empirical outage distribution (Figure 1).
 *
 * For each candidate configuration, every outage-duration bucket is
 * simulated with the best technique; expected yearly downtime and
 * performance are computed by weighting with the bucket probabilities;
 * the cheapest configuration meeting the SLO wins.
 */

#include <cstdio>
#include <optional>

#include "core/selector.hh"
#include "outage/distribution.hh"
#include "sim/logging.hh"

using namespace bpsim;

namespace
{

struct PlanResult
{
    BackupConfigSpec config;
    double normalizedCost = 0.0;
    double expectedDownMinPerYr = 0.0;
    double worstCaseBucketPerf = 1.0;
};

} // namespace

int
main()
{
    setQuietLogging(true);

    // Planning inputs.
    const auto profile = webSearchProfile();
    const int n_servers = 8;
    const double slo_down_min_per_yr = 30.0; // "three nines"-ish
    const double slo_min_perf = 0.25; // tolerable degradation

    std::printf("Capacity planning for %d x %s\n", n_servers,
                profile.name.c_str());
    std::printf("SLO: expected downtime <= %.0f min/year, "
                "perf during outages >= %.2f\n\n",
                slo_down_min_per_yr, slo_min_perf);

    const auto dur = OutageDurationDistribution::figure1();
    const auto freq = OutageFrequencyDistribution::figure1();
    const double outages_per_yr = freq.mean();

    Analyzer analyzer;
    TechniqueSelector selector(analyzer);

    std::printf("%-20s %7s %16s %12s  %s\n", "configuration", "cost",
                "E[down]/yr", "bucket perf", "verdict");

    std::optional<PlanResult> best;
    for (const auto &config : table3Configs()) {
        PlanResult plan;
        plan.config = config;
        for (const auto &bucket : dur.buckets()) {
            // Represent the bucket by its midpoint.
            const Time d =
                fromMinutes(0.5 * (bucket.lo + bucket.hi));
            Scenario sc;
            sc.profile = profile;
            sc.nServers = n_servers;
            sc.outageDuration = d;
            const auto cands =
                allCandidates(ServerModel{sc.serverParams}, d);
            const auto choice =
                selector.bestForConfig(sc, config, cands);
            plan.normalizedCost = choice.eval.normalizedCost;
            plan.expectedDownMinPerYr +=
                bucket.prob * outages_per_yr *
                choice.eval.result.downtimeSec / 60.0;
            plan.worstCaseBucketPerf =
                std::min(plan.worstCaseBucketPerf,
                         choice.eval.result.perfDuringOutage);
        }
        const bool meets = plan.expectedDownMinPerYr <=
                               slo_down_min_per_yr &&
                           plan.worstCaseBucketPerf >= slo_min_perf;
        std::printf("%-20s %7.2f %12.1f min %12.2f  %s\n",
                    config.name.c_str(), plan.normalizedCost,
                    plan.expectedDownMinPerYr, plan.worstCaseBucketPerf,
                    meets ? "meets SLO" : "-");
        if (meets && (!best || plan.normalizedCost <
                                   best->normalizedCost)) {
            best = plan;
        }
    }

    if (best) {
        std::printf("\nRecommendation: %s at %.0f%% of today's backup "
                    "spend\n",
                    best->config.name.c_str(),
                    best->normalizedCost * 100.0);
        std::printf("  expected downtime %.1f min/year, worst bucket "
                    "perf %.2f\n",
                    best->expectedDownMinPerYr,
                    best->worstCaseBucketPerf);
    } else {
        std::printf("\nNo configuration meets the SLO; relax it or "
                    "provision beyond Table 3.\n");
    }
    return 0;
}
