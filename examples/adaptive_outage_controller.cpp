/**
 * @file
 * Online adaptive outage handling (the Section 7 challenge: "how do we
 * deal with unknown outage duration?").
 *
 * The library's AdaptiveTechnique polls the battery during an outage
 * and uses the Markov-chain duration predictor to pick, at every step,
 * the highest-performance operating level whose remaining battery
 * runway will — with bounded risk — cover the rest of the outage plus
 * a state-save reserve; when nothing is safe it suspends the cluster.
 * This example sweeps outages of different (undisclosed) durations and
 * contrasts two risk settings, plus a static strategy for reference.
 */

#include <cstdio>

#include "power/utility.hh"
#include "sim/logging.hh"
#include "technique/adaptive.hh"
#include "technique/catalog.hh"

using namespace bpsim;

namespace
{

struct Outcome
{
    double perf;    // mean normalized perf during the outage
    double downMin; // downtime minutes (outage start .. +2 h settle)
    bool crashed;
    bool suspended;
};

Outcome
runPolicy(Time duration, std::unique_ptr<Technique> technique)
{
    Simulator sim;
    Utility utility(sim);
    PowerHierarchy::Config cfg;
    cfg.hasDg = false;
    cfg.hasUps = true;
    cfg.ups.powerCapacityW = 8 * 250.0;
    cfg.ups.runtimeAtRatedSec = 10.0 * 60.0; // 10-minute battery
    PowerHierarchy hierarchy(sim, utility, cfg);
    Cluster cluster(sim, hierarchy, ServerModel{}, specJbbProfile(), 8);
    auto *adaptive = dynamic_cast<AdaptiveTechnique *>(technique.get());
    technique->attach(sim, cluster, hierarchy);
    cluster.primeSteadyState();

    const Time start = fromMinutes(2.0);
    utility.scheduleOutage(start, duration);
    const Time horizon = start + duration + fromHours(2.0);
    sim.runUntil(horizon);

    Outcome out;
    out.perf = cluster.perfTimeline().average(start, start + duration);
    out.downMin =
        (1.0 - cluster.availabilityTimeline().average(start, horizon)) *
        toMinutes(horizon - start);
    out.crashed = hierarchy.powerLossCount() > 0;
    out.suspended = adaptive != nullptr && adaptive->suspended();
    return out;
}

std::unique_ptr<Technique>
adaptive(double risk)
{
    return std::make_unique<AdaptiveTechnique>(
        OutagePredictor(OutageDurationDistribution::figure1()), risk);
}

} // namespace

int
main()
{
    setQuietLogging(true);
    std::printf("Adaptive outage controller on an 8-server Specjbb "
                "rack\n");
    std::printf("(UPS: full power, 10-minute battery; the controller "
                "never knows the duration)\n\n");

    std::printf("%-12s | %-22s | %-22s | %-22s\n", "", "adaptive, risk 0.4",
                "adaptive, risk 0.1", "static full speed");
    std::printf("%-12s | %6s %8s %5s | %6s %8s %5s | %6s %8s %5s\n",
                "outage", "perf", "down(m)", "susp", "perf", "down(m)",
                "susp", "perf", "down(m)", "CRASH");
    for (double minutes : {0.5, 2.0, 5.0, 10.0, 20.0, 45.0, 120.0}) {
        const Time d = fromMinutes(minutes);
        const auto bold = runPolicy(d, adaptive(0.4));
        const auto shy = runPolicy(d, adaptive(0.1));
        const auto naive =
            runPolicy(d, makeTechnique({TechniqueKind::None}));
        std::printf("%9.1f min | %6.2f %8.1f %5s | %6.2f %8.1f %5s | "
                    "%6.2f %8.1f %5s\n",
                    minutes, bold.perf, bold.downMin,
                    bold.suspended ? "yes" : "no", shy.perf, shy.downMin,
                    shy.suspended ? "yes" : "no", naive.perf,
                    naive.downMin, naive.crashed ? "YES" : "no");
    }

    std::printf("\nReading: the bold controller (risk 0.4) serves short "
                "outages at full speed\n"
                "and suspends only when the predictor says the outage "
                "will likely outlast the\n"
                "battery; the conservative one surrenders performance "
                "early. Both always\n"
                "protect the save reserve, so neither ever loses state "
                "— unlike the static\n"
                "full-speed strategy, which crashes on every outage "
                "longer than its battery.\n");
    return 0;
}
