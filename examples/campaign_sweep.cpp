/**
 * @file
 * Campaign sweep: size every Table 3 backup configuration against a
 * standing defense by running year-scale Monte Carlo campaigns on the
 * parallel campaign engine — with a confidence-interval early stop,
 * live progress, and machine-readable JSON/CSV exports.
 *
 * Demonstrates the full campaign surface:
 *   - runAnnualCampaign() fanning trials across every core, with
 *     aggregates that are bit-identical to a serial run;
 *   - the CI early-stop rule (stop once E[downtime] is pinned down to
 *     +-10% or +-1 min/yr, whichever is looser);
 *   - progress callbacks, streamed as trials complete in order;
 *   - writeCampaignJson() / writeCampaignCsv() exports per scenario;
 *   - per-scenario observability deltas (counters + histograms
 *     snapshot/subtracted around each campaign, so one scenario's
 *     metrics never bleed into the next) and, with --sample, signal
 *     time series rendered as Perfetto counter tracks.
 *
 * Build and run:
 *     cmake -B build -G Ninja && cmake --build build
 *     ./build/examples/campaign_sweep
 */

#include <cstdio>
#include <cstdlib>

#include <algorithm>
#include <fstream>
#include <string>
#include <vector>

#include "campaign/annual_campaign.hh"
#include "campaign/json.hh"
#include "obs/obs.hh"
#include "obs/report.hh"
#include "sim/logging.hh"

using namespace bpsim;

namespace
{

/** The defense each configuration is paired with in this sweep. */
TechniqueSpec
standingDefense(const BackupConfigSpec &config)
{
    if (!config.hasUps)
        return {}; // nothing to ride an outage on
    if (config.hasDg)
        return {TechniqueKind::ThrottleSleep, 5, 0, fromMinutes(4.0), true};
    // UPS-only: serve throttled for half the rated runtime, then sleep.
    return {TechniqueKind::ThrottleSleep, 5, 0,
            fromSeconds(std::max(180.0, config.upsRuntimeSec * 0.5)), true};
}

/** LTTB budget per (trial, signal) channel kept in memory. */
constexpr std::size_t kSamplePointsPerChannel = 512;

/**
 * Trials per scenario whose signal lanes reach the trace. The sweep
 * runs hundreds of trials per scenario; exporting a counter lane for
 * every (trial, signal) pair would produce a multi-gigabyte trace no
 * viewer can load, and a handful of representative years is what a
 * human actually inspects.
 */
constexpr std::uint64_t kSampledTrialsPerConfig = 4;

/**
 * Write one scenario's observability delta — the counters and
 * histogram buckets accumulated by THIS campaign only, obtained by
 * snapshotting the process-wide registry around the run and
 * subtracting. Without the subtraction, scenario N's file would
 * contain the running totals of scenarios 0..N (the cross-config
 * bleed this example used to have).
 */
void
writeScenarioMetrics(const std::string &path, const std::string &config,
                     const std::map<std::string, std::uint64_t> &counters,
                     const std::map<std::string, obs::HistogramSnapshot>
                         &histograms)
{
    std::ofstream os(path);
    JsonWriter w(os);
    w.beginObject();
    w.field("build", buildId());
    w.field("seed", "2014");
    w.field("config", config);
    w.key("counters").beginObject();
    for (const auto &[name, v] : counters)
        w.field(name, v);
    w.endObject();
    w.key("histograms").beginObject();
    for (const auto &[name, h] : histograms) {
        w.key(name).beginObject();
        w.field("count", h.count());
        w.field("sum", h.sum());
        w.field("p50", h.quantile(0.50));
        w.field("p99", h.quantile(0.99));
        w.endObject();
    }
    w.endObject();
    w.endObject();
    os << '\n';
}

/**
 * Drain the sample sink, keeping only the first
 * kSampledTrialsPerConfig trials. The filter bounds sweep memory: a
 * year at hourly cadence is ~8760 samples per signal per trial, and
 * the sweep runs hundreds of trials.
 */
std::vector<obs::SignalSample>
drainScenarioSamples()
{
    auto rows = obs::TimeSeriesSink::instance().drain();
    rows.erase(std::remove_if(rows.begin(), rows.end(),
                              [](const obs::SignalSample &r) {
                                  return r.trial >=
                                         kSampledTrialsPerConfig;
                              }),
               rows.end());
    return rows;
}

/**
 * Shift this scenario's sampled trial ids by @p trial_base (so the
 * combined trace keeps one lane set per simulated year across
 * scenarios) and append a per-channel LTTB-downsampled copy to
 * @p out. The downsample bounds trace size.
 */
void
collectSamples(const obs::TimeSeriesStore &store,
               std::uint64_t trial_base,
               std::vector<obs::SignalSample> &out)
{
    for (const auto &ch : store.channels()) {
        std::vector<obs::SeriesPoint> pts;
        pts.reserve(ch.end - ch.begin);
        for (std::size_t i = ch.begin; i < ch.end; ++i)
            pts.push_back({store.times()[i], store.values()[i]});
        for (const auto &p : obs::lttb(pts, kSamplePointsPerChannel))
            out.push_back({ch.trial + trial_base, p.t, ch.signal,
                           p.value});
    }
}

int
usage(std::FILE *to)
{
    std::fprintf(to,
                 "usage: campaign_sweep [--trace FILE.json] "
                 "[--metrics FILE.json] [--sample SECONDS] "
                 "[--report FILE.html] [--batch N] [--deterministic] "
                 "[--help]\n"
                 "\n"
                 "Runs every Table 3 backup configuration against the "
                 "standing defense and\n"
                 "exports campaign_<config>.json/.csv per scenario.\n"
                 "  --batch N        run trials through the batched SoA "
                 "kernel, N lanes per\n"
                 "                   batch (N >= 1); results are "
                 "bit-identical to the default\n"
                 "                   scalar path, only faster\n"
                 "  --deterministic  omit wall-clock fields from the "
                 "JSON exports, so the\n"
                 "                   files are a pure function of "
                 "(config, seed, buildId) and\n"
                 "                   byte-identical to the what-if "
                 "server's responses\n");
    return to == stdout ? 0 : 2;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuietLogging(true);

    std::string trace_path, metrics_path, report_path;
    double sample_seconds = 0.0;
    bool deterministic = false;
    std::uint64_t batch = 0;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const char *val = i + 1 < argc ? argv[i + 1] : nullptr;
        if (arg == "--help" || arg == "-h") {
            return usage(stdout);
        } else if (arg == "--trace" && val) {
            trace_path = val;
            ++i;
        } else if (arg == "--metrics" && val) {
            metrics_path = val;
            ++i;
        } else if (arg == "--sample" && val) {
            sample_seconds = std::atof(val);
            ++i;
        } else if (arg == "--report" && val) {
            report_path = val;
            ++i;
        } else if (arg == "--batch" && val) {
            char *end = nullptr;
            // strtoull accepts (and wraps) negative input; reject it.
            const unsigned long long n =
                val[0] == '-' ? 0 : std::strtoull(val, &end, 10);
            if (end == val || end == nullptr || *end != '\0' || n == 0) {
                std::fprintf(stderr,
                             "campaign_sweep: --batch needs a positive "
                             "integer, got \"%s\"\n",
                             val);
                return usage(stderr);
            }
            batch = n;
            ++i;
        } else if (arg == "--deterministic") {
            deterministic = true;
        } else {
            std::fprintf(stderr,
                         "campaign_sweep: unknown argument \"%s\"\n",
                         arg.c_str());
            return usage(stderr);
        }
    }
    // The report's signal lanes come from the sampler; default it to
    // hourly cadence when a report was asked for without --sample.
    if (!report_path.empty() && sample_seconds <= 0.0)
        sample_seconds = 3600.0;
    // Arm event recording only when an export was requested; the
    // instrumentation costs nothing while disabled.
    if (!trace_path.empty() || !metrics_path.empty() ||
        !report_path.empty() || sample_seconds > 0.0)
        obs::setEnabled(true);
    if (sample_seconds > 0.0)
        obs::setSampleCadence(fromSeconds(sample_seconds));
    std::vector<obs::TraceEvent> all_events;
    std::vector<obs::SignalSample> all_samples;
    std::uint64_t trial_base = 0;
    obs::CampaignReport report;
    report.provenance = {{"build", buildId()},
                         {"seed", "2014"},
                         {"defense", "ThrottleSleep"},
                         {"servers", "8 x specjbb"}};

    std::printf("Campaign sweep: Table 3 configurations x standing "
                "defense, up to 400\n"
                "simulated years each (early stop: E[downtime] CI "
                "half-width <= max(10%%, 1 min))\n"
                "on %d thread(s).\n\n",
                WorkStealingPool::hardwareThreads());

    std::printf("%-20s %7s %16s %10s %18s %8s\n", "configuration",
                "years", "E[down] min/yr", "P99 down", "p(loss-free) [CI]",
                "yrs/sec");

    for (const auto &config : table3Configs()) {
        AnnualCampaignSpec spec;
        spec.profile = specJbbProfile();
        spec.nServers = 8;
        spec.technique = standingDefense(config);
        spec.config = config;

        AnnualCampaignOptions opts;
        opts.maxTrials = 400;
        opts.seed = 2014;
        opts.minTrials = 64;
        opts.ciRelTol = 0.10;   // +-10% of the mean...
        opts.ciAbsTolMin = 1.0; // ...or +-1 min/yr, whichever is looser
        opts.batch = batch;
        opts.progressEvery = 100;
        opts.progress = [&](const CampaignProgress &p) {
            std::fprintf(stderr, "  [%s] %llu/%llu years%s\r",
                         config.name.c_str(),
                         static_cast<unsigned long long>(p.consumed),
                         static_cast<unsigned long long>(p.total),
                         p.stopped ? " (early stop)" : "");
        };

        // Registry snapshots bracketing the run: the difference is
        // exactly this scenario's contribution.
        const auto counters_before =
            obs::Registry::global().counterSnapshot();
        const auto histograms_before =
            obs::Registry::global().histogramSnapshot();

        const auto s = runAnnualCampaign(spec, opts);
        std::fprintf(stderr, "%*s\r", 60, ""); // clear the progress line
        std::printf("%-20s %6llu%s %16.1f %10.1f %8.0f%% [%2.0f,%3.0f] "
                    "%8.0f\n",
                    config.name.c_str(),
                    static_cast<unsigned long long>(s.trials),
                    s.stoppedEarly ? "*" : " ",
                    s.downtimeMin.summary().mean(), s.downtimeMin.p99(),
                    s.lossFree.fraction * 100.0, s.lossFree.lo * 100.0,
                    s.lossFree.hi * 100.0, s.trialsPerSec);

        // Per-scenario machine-readable exports.
        const std::string stem = "campaign_" + config.name;
        CampaignJsonOptions jopts;
        jopts.includeTiming = !deterministic;
        std::ofstream js(stem + ".json");
        writeCampaignJson(js, s, jopts);
        std::ofstream csv(stem + ".csv");
        writeCampaignCsv(csv, s);

        if (obs::enabled()) {
            writeScenarioMetrics(
                stem + "_metrics.json", config.name,
                obs::subtractCounters(
                    obs::Registry::global().counterSnapshot(),
                    counters_before),
                obs::subtractHistograms(
                    obs::Registry::global().histogramSnapshot(),
                    histograms_before));

            auto events = obs::TraceSink::instance().drain();
            const auto store = obs::TimeSeriesStore::fromSamples(
                drainScenarioSamples());

            // Forensics run on the raw events (trial id == simulated
            // year), before the combined-trace id shift below.
            if (!report_path.empty()) {
                obs::ReportScenario rs;
                rs.name = config.name;
                rs.trials = s.trials;
                rs.stoppedEarly = s.stoppedEarly;
                rs.meanDowntimeMin = s.downtimeMin.summary().mean();
                rs.p99DowntimeMin = s.downtimeMin.p99();
                rs.lossFreeFraction = s.lossFree.fraction;
                rs.lossFreeLo = s.lossFree.lo;
                rs.lossFreeHi = s.lossFree.hi;
                rs.forensics = obs::buildIncidentReport(events);
                rs.health =
                    obs::checkHealth(events, &store, &rs.forensics);
                for (const auto &ch : store.channels()) {
                    obs::ReportLane lane;
                    lane.trial = ch.trial;
                    lane.signal = ch.signal;
                    std::vector<obs::SeriesPoint> pts;
                    pts.reserve(ch.end - ch.begin);
                    for (std::size_t i = ch.begin; i < ch.end; ++i)
                        pts.push_back(
                            {store.times()[i], store.values()[i]});
                    lane.points =
                        obs::lttb(pts, kSamplePointsPerChannel);
                    rs.lanes.push_back(std::move(lane));
                }
                report.scenarios.push_back(std::move(rs));
            }

            // Offset this scenario's trial ids past every earlier
            // scenario's range so the combined trace keeps one track
            // per simulated year.
            for (auto &ev : events)
                ev.trial += trial_base;
            all_events.insert(all_events.end(), events.begin(),
                              events.end());
            collectSamples(store, trial_base, all_samples);
            trial_base += opts.maxTrials;
        }
    }

    if (!trace_path.empty()) {
        obs::TraceExportOptions topts;
        topts.metadata = {{"build", buildId()}, {"seed", "2014"}};
        std::ofstream os(trace_path);
        const auto series =
            obs::TimeSeriesStore::fromSamples(std::move(all_samples));
        if (series.empty())
            writeChromeTrace(os, all_events, topts);
        else
            writeChromeTrace(os, all_events, series, topts);
        std::printf("\n[wrote %zu trace events and %zu counter samples "
                    "to %s — load it in chrome://tracing or "
                    "ui.perfetto.dev]\n",
                    all_events.size(), series.rows(), trace_path.c_str());
    }
    if (!metrics_path.empty()) {
        std::ofstream os(metrics_path);
        writeMetricsJson(os, obs::Registry::global(),
                         {{"build", buildId()}, {"seed", "2014"}});
        std::printf("[wrote whole-sweep metrics snapshot to %s; "
                    "per-scenario deltas are in "
                    "campaign_<config>_metrics.json]\n",
                    metrics_path.c_str());
    }
    if (!report_path.empty()) {
        std::ofstream os(report_path);
        obs::writeHtmlReport(os, report);
        std::printf("[wrote self-contained HTML campaign report "
                    "(%zu scenarios) to %s — open it in any browser, "
                    "no assets needed]\n",
                    report.scenarios.size(), report_path.c_str());
    }

    std::printf("\n(*) stopped early by the CI rule. Per-scenario "
                "results exported to\n"
                "campaign_<config>.json / .csv; re-running with the "
                "same seed reproduces them\n"
                "bit-for-bit on any machine and any thread count.\n");
    return 0;
}
