/**
 * @file
 * Campaign sweep: size every Table 3 backup configuration against a
 * standing defense by running year-scale Monte Carlo campaigns on the
 * parallel campaign engine — with a confidence-interval early stop,
 * live progress, and machine-readable JSON/CSV exports.
 *
 * Demonstrates the full campaign surface:
 *   - runAnnualCampaign() fanning trials across every core, with
 *     aggregates that are bit-identical to a serial run;
 *   - the CI early-stop rule (stop once E[downtime] is pinned down to
 *     +-10% or +-1 min/yr, whichever is looser);
 *   - progress callbacks, streamed as trials complete in order;
 *   - writeCampaignJson() / writeCampaignCsv() exports per scenario.
 *
 * Build and run:
 *     cmake -B build -G Ninja && cmake --build build
 *     ./build/examples/campaign_sweep
 */

#include <cstdio>

#include <algorithm>
#include <fstream>
#include <string>

#include "campaign/annual_campaign.hh"
#include "sim/logging.hh"

using namespace bpsim;

namespace
{

/** The defense each configuration is paired with in this sweep. */
TechniqueSpec
standingDefense(const BackupConfigSpec &config)
{
    if (!config.hasUps)
        return {}; // nothing to ride an outage on
    if (config.hasDg)
        return {TechniqueKind::ThrottleSleep, 5, 0, fromMinutes(4.0), true};
    // UPS-only: serve throttled for half the rated runtime, then sleep.
    return {TechniqueKind::ThrottleSleep, 5, 0,
            fromSeconds(std::max(180.0, config.upsRuntimeSec * 0.5)), true};
}

} // namespace

int
main()
{
    setQuietLogging(true);

    std::printf("Campaign sweep: Table 3 configurations x standing "
                "defense, up to 400\n"
                "simulated years each (early stop: E[downtime] CI "
                "half-width <= max(10%%, 1 min))\n"
                "on %d thread(s).\n\n",
                WorkStealingPool::hardwareThreads());

    std::printf("%-20s %7s %16s %10s %18s %8s\n", "configuration",
                "years", "E[down] min/yr", "P99 down", "p(loss-free) [CI]",
                "yrs/sec");

    for (const auto &config : table3Configs()) {
        AnnualCampaignSpec spec;
        spec.profile = specJbbProfile();
        spec.nServers = 8;
        spec.technique = standingDefense(config);
        spec.config = config;

        AnnualCampaignOptions opts;
        opts.maxTrials = 400;
        opts.seed = 2014;
        opts.minTrials = 64;
        opts.ciRelTol = 0.10;   // +-10% of the mean...
        opts.ciAbsTolMin = 1.0; // ...or +-1 min/yr, whichever is looser
        opts.progressEvery = 100;
        opts.progress = [&](const CampaignProgress &p) {
            std::fprintf(stderr, "  [%s] %llu/%llu years%s\r",
                         config.name.c_str(),
                         static_cast<unsigned long long>(p.consumed),
                         static_cast<unsigned long long>(p.total),
                         p.stopped ? " (early stop)" : "");
        };

        const auto s = runAnnualCampaign(spec, opts);
        std::fprintf(stderr, "%*s\r", 60, ""); // clear the progress line
        std::printf("%-20s %6llu%s %16.1f %10.1f %8.0f%% [%2.0f,%3.0f] "
                    "%8.0f\n",
                    config.name.c_str(),
                    static_cast<unsigned long long>(s.trials),
                    s.stoppedEarly ? "*" : " ",
                    s.downtimeMin.summary().mean(), s.downtimeMin.p99(),
                    s.lossFree.fraction * 100.0, s.lossFree.lo * 100.0,
                    s.lossFree.hi * 100.0, s.trialsPerSec);

        // Per-scenario machine-readable exports.
        const std::string stem = "campaign_" + config.name;
        std::ofstream js(stem + ".json");
        writeCampaignJson(js, s);
        std::ofstream csv(stem + ".csv");
        writeCampaignCsv(csv, s);
    }

    std::printf("\n(*) stopped early by the CI rule. Per-scenario "
                "results exported to\n"
                "campaign_<config>.json / .csv; re-running with the "
                "same seed reproduces them\n"
                "bit-for-bit on any machine and any thread count.\n");
    return 0;
}
