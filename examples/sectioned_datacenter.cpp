/**
 * @file
 * Sectioned datacenter: assign each workload class to a section whose
 * backup matches its needs (the Section 7 operating model), then watch
 * one utility outage hit all sections simultaneously and play out
 * differently in each.
 */

#include <cstdio>

#include "core/datacenter.hh"
#include "sim/logging.hh"

using namespace bpsim;

int
main()
{
    setQuietLogging(true);

    // Three sections, three philosophies:
    //  - interactive: 30-minute battery, throttle through outages;
    //  - batch: small cheap UPS, suspend immediately (state is all
    //    that matters, recompute is the enemy);
    //  - scavenger cache: no backup at all, it just reloads.
    SectionSpec interactive;
    interactive.name = "interactive (specjbb)";
    interactive.profiles.assign(8, specJbbProfile());
    interactive.backup = largeEUpsConfig();
    interactive.technique = {TechniqueKind::Throttle, 4, 0, 0, false};

    SectionSpec batch;
    batch.name = "batch (mcf x8)";
    batch.profiles.assign(8, specCpuMcfProfile());
    batch.backup = smallPUpsConfig();
    batch.technique = {TechniqueKind::Sleep, 0, 0, 0, true};

    SectionSpec scavenger;
    scavenger.name = "scavenger (memcached)";
    scavenger.profiles.assign(4, memcachedProfile());
    scavenger.backup = minCostConfig();
    scavenger.technique = {TechniqueKind::None};

    const std::vector<SectionSpec> specs{interactive, batch, scavenger};

    const CostModel cost;
    std::printf("Sectioned datacenter (20 servers):\n");
    std::printf("%-24s %8s %10s %-26s\n", "section", "servers",
                "backup", "defense");
    for (const auto &s : specs) {
        std::printf("%-24s %8zu %10s %-26s\n", s.name.c_str(),
                    s.profiles.size(), s.backup.name.c_str(),
                    s.technique.label().c_str());
    }

    std::printf("\nOutage sweep (blended cost normalized to MaxPerf "
                "for the whole floor):\n");
    std::printf("%-10s | %-24s %8s %12s %7s\n", "outage", "section",
                "perf", "downtime", "losses");
    for (double minutes : {2.0, 15.0, 45.0, 120.0}) {
        const auto r = runSectioned(specs, fromMinutes(5.0),
                                    fromMinutes(minutes));
        bool first = true;
        for (const auto &s : r.sections) {
            std::printf("%-10s | %-24s %8.2f %9.1f min %7d\n",
                        first ? formatString("%.0f min", minutes).c_str()
                              : "",
                        s.name.c_str(), s.perfDuringOutage,
                        s.downtimeSec / 60.0, s.losses);
            first = false;
        }
        std::printf("%-10s | %-24s %8.2f %9.1f min %7d   (cost %.2f)\n",
                    "", "== blended ==", r.perfDuringOutage,
                    r.downtimeSec / 60.0, r.losses, r.normalizedCost);
    }

    std::printf("\nReading: one utility event, three outcomes — the "
                "interactive section throttles\n"
                "through, the batch section hibernates its state for "
                "pennies, and the scavenger\n"
                "cache simply reloads afterwards. The blended backup "
                "bill is a fraction of\n"
                "provisioning MaxPerf for everyone.\n");
    return 0;
}
