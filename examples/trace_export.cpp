/**
 * @file
 * Trace export: run one outage scenario and dump the power-supply mix
 * and service timelines as CSV files for external plotting (gnuplot,
 * matplotlib, ...). Reproduces the kind of time-series view the
 * paper's testbed instrumentation (the Yokogawa meter) provided.
 *
 * Usage: trace_export [output-directory]   (default: current dir)
 */

#include <cstdio>
#include <fstream>
#include <string>

#include "power/utility.hh"
#include "sim/csv.hh"
#include "sim/logging.hh"
#include "technique/catalog.hh"

using namespace bpsim;

namespace
{

void
exportScenario(const std::string &dir, const std::string &name,
               const TechniqueSpec &spec, Time outage)
{
    Simulator sim;
    Utility utility(sim);
    PowerHierarchy::Config cfg;
    cfg.hasDg = false;
    cfg.hasUps = true;
    cfg.ups.powerCapacityW = 8 * 250.0;
    cfg.ups.runtimeAtRatedSec = 20.0 * 60.0;
    PowerHierarchy hierarchy(sim, utility, cfg);
    Cluster cluster(sim, hierarchy, ServerModel{}, specJbbProfile(), 8);
    auto technique = makeTechnique(spec);
    technique->attach(sim, cluster, hierarchy);
    cluster.primeSteadyState();

    const Time start = 2 * kMinute;
    utility.scheduleOutage(start, outage);
    const Time horizon = start + outage + kHour;
    sim.runUntil(horizon);

    const auto &meter = hierarchy.meter();
    const std::string path = dir + "/" + name + ".csv";
    std::ofstream os(path);
    if (!os) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return;
    }
    writeTimelinesCsv(
        os,
        {{"load_w", &meter.load()},
         {"from_utility_w", &meter.fromUtility()},
         {"from_battery_w", &meter.fromBattery()},
         {"from_dg_w", &meter.fromDg()},
         {"perf", &cluster.perfTimeline()},
         {"availability", &cluster.availabilityTimeline()}},
        0, horizon);
    std::printf("  wrote %-28s (%zu change points)\n", path.c_str(),
                meter.load().size());
}

} // namespace

int
main(int argc, char **argv)
{
    setQuietLogging(true);
    const std::string dir = argc > 1 ? argv[1] : ".";

    std::printf("Exporting outage traces for an 8-server Specjbb rack "
                "(30-minute outage,\nfull-power UPS with a 20-minute "
                "battery):\n");
    exportScenario(dir, "trace_throttle",
                   {TechniqueKind::Throttle, 6, 0, 0, false},
                   30 * kMinute);
    exportScenario(dir, "trace_sleep_l",
                   {TechniqueKind::Sleep, 0, 0, 0, true}, 30 * kMinute);
    exportScenario(dir, "trace_hybrid",
                   {TechniqueKind::ThrottleSleep, 5, 0, 15 * kMinute,
                    true},
                   30 * kMinute);
    exportScenario(dir, "trace_migration",
                   {TechniqueKind::Migration, 0, 0, 0, false},
                   30 * kMinute);

    std::printf("\nColumns: time_s, load_w, from_utility_w, "
                "from_battery_w, from_dg_w, perf, availability.\n"
                "Plot e.g. with gnuplot:\n"
                "  plot 'trace_hybrid.csv' using 1:4 with steps title "
                "'battery draw (W)'\n");
    return 0;
}
