/**
 * @file
 * Distributed campaign driver: run one shard of an annual campaign on
 * this machine and export its aggregate file, or merge shard files
 * produced anywhere into whole-campaign statistics.
 *
 *   # run shard i of n (any subset of machines, any order)
 *   campaign_merge run --shard 3/16 --trials 400 --seed 2014 \
 *       --checkpoint-every 1 --out shard3.json
 *
 *   # recombine (count/mean/CI bit-identical for any shard count;
 *   # quantiles rank-accurate via merged t-digests)
 *   campaign_merge merge --stop-rel 0.10 --stop-abs 1.0 shard*.json
 *
 * The shard scenario is the claims-headline campaign (DG-free
 * LargeEUPS datacenter behind a Throttle+Sleep defense); the point of
 * the example is the sharding surface, not the scenario. See
 * docs/CAMPAIGN.md "Sharding".
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "campaign/json.hh"
#include "campaign/shard.hh"
#include "core/selector.hh"
#include "obs/obs.hh"
#include "sim/logging.hh"

using namespace bpsim;

namespace
{

int
usage(std::FILE *to = stderr)
{
    std::fprintf(
        to,
        "usage:\n"
        "  campaign_merge run --shard I/N [--trials T] [--seed S]\n"
        "                 [--checkpoint-every K] [--threads T]"
        " [--out FILE]\n"
        "                 [--trace FILE] [--metrics FILE]\n"
        "  campaign_merge merge [--stop-min T] [--stop-rel R]\n"
        "                 [--stop-abs A] FILE...\n");
    return to == stdout ? 0 : 2;
}

/** The standing claims-headline scenario every shard simulates. */
AnnualCampaignSpec
headlineSpec()
{
    AnnualCampaignSpec spec;
    spec.profile = specJbbProfile();
    spec.nServers = 8;
    spec.technique = {TechniqueKind::ThrottleSleep, 5, 0,
                      fromMinutes(10.0), true};
    spec.config = largeEUpsConfig();
    return spec;
}

int
runShard(int argc, char **argv)
{
    std::uint64_t index = 0, count = 0, trials = 200, seed = 2011;
    ShardOptions opts;
    std::string out_path, trace_path, metrics_path;
    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        const char *val = i + 1 < argc ? argv[i + 1] : nullptr;
        if (arg == "--shard" && val) {
            if (std::sscanf(val, "%llu/%llu",
                            reinterpret_cast<unsigned long long *>(
                                &index),
                            reinterpret_cast<unsigned long long *>(
                                &count)) != 2)
                return usage();
            ++i;
        } else if (arg == "--trials" && val) {
            trials = std::strtoull(val, nullptr, 10);
            ++i;
        } else if (arg == "--seed" && val) {
            seed = std::strtoull(val, nullptr, 10);
            ++i;
        } else if (arg == "--checkpoint-every" && val) {
            opts.checkpointEvery = std::strtoull(val, nullptr, 10);
            ++i;
        } else if (arg == "--threads" && val) {
            opts.threads = std::atoi(val);
            ++i;
        } else if (arg == "--out" && val) {
            out_path = val;
            ++i;
        } else if (arg == "--trace" && val) {
            trace_path = val;
            ++i;
        } else if (arg == "--metrics" && val) {
            metrics_path = val;
            ++i;
        } else {
            return usage();
        }
    }
    if (count == 0 || index >= count || trials == 0)
        return usage();
    if (!trace_path.empty() || !metrics_path.empty())
        obs::setEnabled(true);

    const ShardSpec spec = shardOf(seed, trials, index, count);
    std::fprintf(stderr,
                 "shard %llu/%llu: trials [%llu, %llu) of %llu, "
                 "seed %llu\n",
                 static_cast<unsigned long long>(index),
                 static_cast<unsigned long long>(count),
                 static_cast<unsigned long long>(spec.lo),
                 static_cast<unsigned long long>(spec.hi),
                 static_cast<unsigned long long>(trials),
                 static_cast<unsigned long long>(seed));
    const ShardResult result = runAnnualShard(headlineSpec(), spec, opts);
    std::fprintf(stderr,
                 "  %llu trials in %.2f s: E[down] %.1f min/yr, "
                 "loss-free %llu\n",
                 static_cast<unsigned long long>(result.trials),
                 result.wallSeconds, result.downtimeMin.mean(),
                 static_cast<unsigned long long>(result.lossFreeTrials));

    if (!trace_path.empty()) {
        // Shard traces already carry GLOBAL trial ids, so traces from
        // different shards interleave cleanly in one Perfetto view.
        obs::TraceExportOptions topts;
        topts.metadata = {{"build", buildId()},
                          {"seed", std::to_string(seed)},
                          {"shard", std::to_string(index) + "/" +
                                        std::to_string(count)}};
        std::ofstream os(trace_path);
        writeChromeTrace(os, obs::TraceSink::instance().drain(), topts);
        std::fprintf(stderr, "[wrote trace to %s]\n", trace_path.c_str());
    }
    if (!metrics_path.empty()) {
        std::ofstream os(metrics_path);
        writeMetricsJson(os, obs::Registry::global(),
                         {{"build", buildId()},
                          {"seed", std::to_string(seed)}});
        std::fprintf(stderr, "[wrote metrics to %s]\n",
                     metrics_path.c_str());
    }

    if (out_path.empty()) {
        writeShardJson(std::cout, result);
        return 0;
    }
    std::ofstream os(out_path);
    if (!os) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
    }
    writeShardJson(os, result);
    std::fprintf(stderr, "[wrote %s]\n", out_path.c_str());
    return 0;
}

int
mergeFiles(int argc, char **argv)
{
    EarlyStopRule rule;
    std::vector<std::string> paths;
    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        const char *val = i + 1 < argc ? argv[i + 1] : nullptr;
        if (arg == "--stop-min" && val) {
            rule.minTrials = std::strtoull(val, nullptr, 10);
            ++i;
        } else if (arg == "--stop-rel" && val) {
            rule.ciRelTol = std::atof(val);
            ++i;
        } else if (arg == "--stop-abs" && val) {
            rule.ciAbsTolMin = std::atof(val);
            ++i;
        } else if (arg.rfind("--", 0) == 0) {
            return usage();
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.empty())
        return usage();

    std::vector<ShardResult> shards;
    for (const auto &path : paths) {
        std::string err;
        auto shard = readShardFile(path, &err);
        if (!shard) {
            std::fprintf(stderr, "error: %s\n", err.c_str());
            return 1;
        }
        shards.push_back(std::move(*shard));
    }

    std::string err;
    const auto merged =
        mergeShards(std::move(shards),
                    rule.enabled() ? &rule : nullptr, &err);
    if (!merged) {
        std::fprintf(stderr, "error: %s\n", err.c_str());
        return 1;
    }
    writeMergedJson(std::cout, *merged);
    std::fprintf(
        stderr,
        "merged %llu shard(s), %llu trials: E[down] %.2f min/yr "
        "(P99 %.1f), loss-free %.1f%% [%.1f, %.1f]\n",
        static_cast<unsigned long long>(merged->shardCount),
        static_cast<unsigned long long>(merged->trials),
        merged->downtimeMin.mean(), merged->downtimeMin.p99(),
        merged->lossFree.fraction * 100.0, merged->lossFree.lo * 100.0,
        merged->lossFree.hi * 100.0);
    if (rule.enabled()) {
        if (merged->earlyStop.fired)
            std::fprintf(stderr,
                         "early stop: a coordinator would have "
                         "stopped after trial %llu (half-width %.3f)\n",
                         static_cast<unsigned long long>(
                             merged->earlyStop.stopTrial),
                         merged->earlyStop.halfWidth);
        else
            std::fprintf(stderr,
                         "early stop: rule never fired on the merged "
                         "prefix\n");
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuietLogging(true);
    if (argc < 2)
        return usage();
    const std::string mode = argv[1];
    if (mode == "--help" || mode == "-h")
        return usage(stdout);
    if (mode == "run")
        return runShard(argc - 2, argv + 2);
    if (mode == "merge")
        return mergeFiles(argc - 2, argv + 2);
    return usage();
}
