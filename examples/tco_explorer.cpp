/**
 * @file
 * Organization-level TCO what-if analysis (Figure 10 generalized):
 * given revenue density, server economics and local utility
 * reliability, should this organization provision diesel generators,
 * provision extra UPS energy instead, or neither?
 */

#include <algorithm>
#include <cstdio>

#include "core/cost_model.hh"
#include "core/tco.hh"
#include "outage/distribution.hh"
#include "outage/trace.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"

using namespace bpsim;

namespace
{

void
analyzeOrganization(const char *name, double revenue_per_kw_min,
                    double outage_min_per_yr)
{
    TcoParams p;
    p.revenuePerKwMin = revenue_per_kw_min;
    const TcoModel tco(p);
    const CostModel cost;

    std::printf("--- %s ---\n", name);
    std::printf("  revenue density: $%.3f/KW/min, yearly outage "
                "exposure: %.0f min\n",
                revenue_per_kw_min, outage_min_per_yr);
    std::printf("  crossover: %.0f min/year (%.1f h)\n",
                tco.crossoverMinutesPerYr(),
                tco.crossoverMinutesPerYr() / 60.0);

    const double loss = tco.outageCostPerKwYr(outage_min_per_yr);
    const double dg = tco.dgSavingsPerKwYr();
    std::printf("  expected outage loss without any backup: "
                "$%.1f/KW/yr vs DG $%.1f/KW/yr\n",
                loss, dg);

    // Third option: no DG, but enough extra UPS battery to ride out
    // the 95th-percentile outage.
    const auto dur = OutageDurationDistribution::figure1();
    double p95_min = 0.0;
    for (double m = 0.0; m < 480.0; m += 1.0) {
        if (dur.survival(fromMinutes(m)) <= 0.05) {
            p95_min = m;
            break;
        }
    }
    const double ups_extra =
        cost.upsCostPerYr(1.0, p95_min * 60.0) - cost.upsCostPerYr(1.0, 120.0);
    const double residual_loss =
        loss * dur.survival(fromMinutes(p95_min));
    std::printf("  extra UPS to cover p95 outages (%.0f min): "
                "$%.1f/KW/yr + residual loss $%.1f/KW/yr\n",
                p95_min, ups_extra, residual_loss);

    const double best =
        std::min({loss, dg, ups_extra + residual_loss});
    const char *verdict =
        best == loss ? "no backup at all"
        : best == dg ? "keep the diesel generators"
                     : "drop the DGs, buy UPS energy";
    std::printf("  -> cheapest: %s\n\n", verdict);
}

} // namespace

int
main()
{
    setQuietLogging(true);
    std::printf("=== TCO explorer: who should drop their diesel "
                "generators? ===\n\n");

    // Expected outage exposure for an average US business site.
    const auto dur = OutageDurationDistribution::figure1();
    const auto freq = OutageFrequencyDistribution::figure1();
    const double typical = toMinutes(dur.mean()) * freq.mean();

    analyzeOrganization("Hyperscale search/ads (Google 2011)", 0.28,
                        typical);
    analyzeOrganization("Mid-margin SaaS", 0.05, typical);
    analyzeOrganization("Batch analytics farm", 0.01, typical);
    analyzeOrganization("Hyperscaler on a flaky grid", 0.28,
                        typical * 4.0);

    std::printf("Monte-Carlo check (10k synthetic years, Figure 1 "
                "statistics):\n");
    auto gen = OutageTraceGenerator::figure1();
    Rng rng(2026);
    SummaryStats per_year;
    for (int year = 0; year < 10000; ++year) {
        double minutes = 0.0;
        for (const auto &ev : gen.generate(rng, 365LL * 24 * kHour))
            minutes += toMinutes(ev.duration);
        per_year.add(minutes);
    }
    std::printf("  outage minutes/year: mean %.0f, max %.0f "
                "(analytic mean %.0f)\n",
                per_year.mean(), per_year.max(), typical);
    const TcoModel google;
    std::printf("  years where skipping the DG was profitable for "
                "Google-like economics: ");
    // Re-run the same stream to count (deterministic RNG).
    Rng rng2(2026);
    int profitable = 0;
    for (int year = 0; year < 10000; ++year) {
        double minutes = 0.0;
        for (const auto &ev : gen.generate(rng2, 365LL * 24 * kHour))
            minutes += toMinutes(ev.duration);
        if (google.profitableWithoutDg(minutes))
            ++profitable;
    }
    std::printf("%.1f%%\n", profitable / 100.0);
    return 0;
}
